"""The SemTree facade: triples in, semantic k-NN / range retrieval out.

:class:`SemTreeIndex` wires together the full pipeline of Section III:

1. triples (optionally grouped into documents) are collected;
2. the semantic distance of Eq. (1) compares them;
3. FastMap maps them into a k-dimensional vector space;
4. a distributed bucket KD-tree indexes the resulting points;
5. k-nearest and range queries accept a *query triple*, project it into the
   same space and return the stored triples closest to it.

The facade has two phases: an accumulation phase (:meth:`add_triple` /
:meth:`add_document`) and, after :meth:`build`, a query phase.  Incremental
insertion after the build is supported (:meth:`insert_triple`): new triples
are projected with the already-fitted FastMap pivots and inserted into the
distributed tree dynamically, which is exactly the paper's dynamic-insertion
regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster.cluster import SimulatedCluster
from repro.core.config import SemTreeConfig
from repro.core.cost import SearchCost
from repro.core.distributed import DistributedSemTree
from repro.core.knn import Neighbour
from repro.core.point import LabeledPoint
from repro.embedding.triple_embedder import TripleEmbedder
from repro.errors import IndexError_, QueryError
from repro.rdf.document import Document, DocumentCollection
from repro.rdf.triple import Triple
from repro.semantics.triple_distance import TripleDistance

__all__ = ["SemTreeIndex", "SemanticMatch", "SearchOutcome"]


class SemanticMatch:
    """One query result: a stored triple, its distance and its source documents."""

    __slots__ = ("triple", "distance", "documents")

    def __init__(self, triple: Triple, distance: float, documents: Tuple[str, ...] = ()):
        self.triple = triple
        self.distance = distance
        self.documents = documents

    def __repr__(self) -> str:
        return (
            f"SemanticMatch(triple={self.triple}, distance={self.distance:.4f}, "
            f"documents={list(self.documents)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SemanticMatch):
            return NotImplemented
        return (self.triple, self.distance, self.documents) == (
            other.triple, other.distance, other.documents
        )

    def __hash__(self) -> int:
        return hash((self.triple, self.distance, self.documents))


@dataclass(frozen=True, slots=True)
class SearchOutcome:
    """The result of one index search, dressed for the serving layer.

    ``generation`` is the index generation the matches were computed at; the
    serving layer keys its result cache on it and the live-ingestion overlay
    (:meth:`repro.ingest.ingesting.IngestingIndex.overlay_matches`) uses it
    to detect a compaction racing with the read.  ``cost`` carries the
    search's fine-grained work counters
    (:class:`~repro.core.cost.SearchCost`); for a scatter-gather search it is
    the cluster-wide sum over every shard scanned.

    ``degraded`` is ``None`` for a complete (exact) answer.  A sharded
    search running in ``allow_partial`` mode sets it to a structured marker
    ``{"answered": [partition_id, ...], "missed": {partition_id: reason}}``
    when some partitions failed to answer — the matches then cover only the
    answering partitions and must never be cached as the exact result.
    """

    matches: Tuple[SemanticMatch, ...]
    visited_partitions: Tuple[str, ...]
    nodes_visited: int
    points_examined: int
    generation: int
    cost: SearchCost = field(default_factory=SearchCost)
    degraded: Optional[Dict[str, object]] = None


class SemTreeIndex:
    """The end-to-end semantic index over triples.

    Parameters
    ----------
    distance:
        The semantic triple distance (Eq. (1)); wire the domain vocabularies
        into its term distance before building the index.
    config:
        Index configuration (FastMap dimensionality is taken from
        ``config.dimensions``).
    cluster:
        Optional simulated cluster; when omitted one is created with
        ``config.max_partitions`` compute nodes.
    """

    def __init__(self, distance: TripleDistance, config: SemTreeConfig | None = None,
                 cluster: SimulatedCluster | None = None):
        self.config = config or SemTreeConfig()
        self.distance = distance
        self.embedder = TripleEmbedder(distance, dimensions=self.config.dimensions)
        self.cluster = cluster or SimulatedCluster(node_count=max(self.config.max_partitions, 1))
        self._tree: Optional[DistributedSemTree] = None
        self._pending: List[Triple] = []
        self._documents_of: Dict[Triple, List[str]] = {}
        self._generation = 0

    # -- accumulation phase --------------------------------------------------------------

    def add_triple(self, triple: Triple, *, document_id: str | None = None) -> None:
        """Register a triple to be indexed by the next :meth:`build`."""
        self._pending.append(triple)
        if document_id is not None:
            self.register_provenance(triple, document_id)

    def register_provenance(self, triple: Triple, document_id: str) -> None:
        """Remember that ``triple`` came from ``document_id`` (match dressing)."""
        self._documents_of.setdefault(triple, []).append(document_id)

    def documents_of(self, triple: Triple) -> Tuple[str, ...]:
        """The document identifiers registered for ``triple`` (may be empty)."""
        return tuple(self._documents_of.get(triple, ()))

    def add_triples(self, triples: Iterable[Triple], *, document_id: str | None = None) -> None:
        """Register many triples."""
        for triple in triples:
            self.add_triple(triple, document_id=document_id)

    def add_document(self, document: Document) -> None:
        """Register every triple of a document, remembering its provenance."""
        self.add_triples(document.triples, document_id=document.document_id)

    def add_collection(self, collection: DocumentCollection) -> None:
        """Register every document of a collection."""
        for document in collection:
            self.add_document(document)

    @property
    def pending_triples(self) -> int:
        """Number of triples registered but not indexed yet."""
        return len(self._pending)

    # -- build phase -----------------------------------------------------------------------

    def build(self) -> "SemTreeIndex":
        """Fit the FastMap space on the registered triples and index them.

        Returns ``self`` so the call can be chained.

        Raises
        ------
        IndexError_
            If fewer than two distinct triples have been registered.
        """
        distinct = list(dict.fromkeys(self._pending))
        if len(distinct) < 2:
            raise IndexError_("SemTree needs at least two distinct triples to build")
        self.embedder.fit(distinct)
        dimensions = self.embedder.output_dimensions
        tree_config = self.config.with_updates(dimensions=dimensions)
        self._tree = DistributedSemTree(tree_config, cluster=self.cluster)
        for triple in distinct:
            self._tree.insert(self._point_for(triple))
        self._pending = []
        self._generation += 1
        return self

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._tree is not None

    @property
    def tree(self) -> DistributedSemTree:
        """The underlying distributed KD-tree.

        Raises
        ------
        IndexError_
            If the index has not been built yet.
        """
        if self._tree is None:
            raise IndexError_("the index has not been built yet; call build() first")
        return self._tree

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every mutation of the built index.

        Result caches (see :mod:`repro.service.cache`) tag entries with the
        generation they were computed at and drop them when it moves on, so
        stale answers are never served after incremental inserts.
        """
        return self._generation

    def _point_for(self, triple: Triple) -> LabeledPoint:
        coordinates = self.embedder.transform(triple)
        return LabeledPoint.of(coordinates, label=triple)

    def embed_query(self, triple: Triple) -> LabeledPoint:
        """Project a query triple into the index's vector space.

        The serving layer embeds each distinct query exactly once on the
        planning thread (the projection touches the semantic-distance memo
        caches), then runs :meth:`tree.k_nearest_state <repro.core.distributed.DistributedSemTree.k_nearest_state>`
        / ``range_query_state`` searches with the resulting point from
        worker threads and dresses the neighbours via :meth:`to_match`.
        """
        if self._tree is None:
            raise IndexError_("the index has not been built yet; call build() first")
        return self._point_for(triple)

    # -- incremental insertion ----------------------------------------------------------------

    def insert_triple(self, triple: Triple, *, document_id: str | None = None) -> None:
        """Insert a triple into an already-built index (dynamic insertion).

        The triple is projected with the existing FastMap pivots; the vector
        space is *not* refitted, matching the paper's incremental regime.
        """
        if document_id is not None:
            self.register_provenance(triple, document_id)
        self.tree.insert(self._point_for(triple))
        self._generation += 1

    def insert_triples(self, triples: Iterable[Triple]) -> None:
        """Insert many triples into an already-built index."""
        for triple in triples:
            self.insert_triple(triple)

    def absorb_points(self, points: Iterable[LabeledPoint]) -> int:
        """Fold already-projected points into the tree, bumping the generation once.

        This is the compaction write path of :mod:`repro.ingest`: the delta
        segment's points were projected at insert time, so folding them is a
        pure tree operation.  Unlike :meth:`insert_triples` the generation
        moves a single step however many points are folded — the result cache
        invalidates at compaction granularity, not per insert.
        """
        count = 0
        for point in points:
            self.tree.insert(point)
            count += 1
        if count:
            self._generation += 1
        return count

    def __len__(self) -> int:
        return len(self._tree) if self._tree is not None else 0

    # -- query phase ------------------------------------------------------------------------------

    def k_nearest(self, query: Triple, k: int) -> List[SemanticMatch]:
        """The ``k`` indexed triples semantically closest to the query triple."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        return list(self.search_k_nearest(self._point_for(query), k).matches)

    def range_query(self, query: Triple, radius: float) -> List[SemanticMatch]:
        """Every indexed triple within embedded distance ``radius`` of the query."""
        return list(self.search_range(self._point_for(query), radius).matches)

    # -- the serving-layer search protocol ------------------------------------------------

    def search_k_nearest(self, point: LabeledPoint, k: int) -> SearchOutcome:
        """Run a k-nearest tree search for an already-embedded query point.

        This (with :meth:`search_range` and :meth:`overlay_matches`) is the
        protocol the :class:`~repro.service.engine.QueryEngine` serves
        through; :class:`~repro.ingest.ingesting.IngestingIndex` implements
        the same three methods with delta-merged semantics.
        """
        state = self.tree.k_nearest_state(point, k)
        return SearchOutcome(
            matches=tuple(self._to_match(n) for n in state.results.neighbours()),
            visited_partitions=tuple(state.visited_partition_ids),
            nodes_visited=state.nodes_visited,
            points_examined=state.points_examined,
            generation=self._generation,
            cost=state.cost,
        )

    def search_range(self, point: LabeledPoint, radius: float) -> SearchOutcome:
        """Run a range tree search for an already-embedded query point."""
        state = self.tree.range_query_state(point, radius)
        return SearchOutcome(
            matches=tuple(self._to_match(n) for n in state.sorted_results()),
            visited_partitions=tuple(state.visited_partition_ids),
            nodes_visited=state.nodes_visited,
            points_examined=state.points_examined,
            generation=self._generation,
            cost=state.cost,
        )

    def overlay_matches(self, kind: str, point: LabeledPoint, parameter: float,
                        matches: Tuple[SemanticMatch, ...],
                        generation: int) -> Optional[Tuple[SemanticMatch, ...]]:
        """Refresh search results against writes that landed after ``generation``.

        A plain index has no write path besides :meth:`insert_triple` (which
        bumps the generation and thus invalidates cached results wholesale),
        so the matches are already current: they are returned unchanged.  An
        :class:`~repro.ingest.ingesting.IngestingIndex` merges the live delta
        segment here, and returns ``None`` when a compaction raced with the
        read (the engine then re-runs the search under the new generation).
        """
        return tuple(matches)

    def to_match(self, neighbour: Neighbour) -> SemanticMatch:
        """Dress a raw tree neighbour as a :class:`SemanticMatch` with provenance."""
        return self._to_match(neighbour)

    def _to_match(self, neighbour: Neighbour) -> SemanticMatch:
        triple = neighbour.point.label
        documents = tuple(self._documents_of.get(triple, ()))
        return SemanticMatch(triple, neighbour.distance, documents)

    # -- introspection -----------------------------------------------------------------------------

    def statistics(self) -> Dict[str, object]:
        """Statistics of the underlying distributed tree plus embedding info."""
        stats = dict(self.tree.statistics())
        stats["embedding_dimensions"] = self.embedder.output_dimensions
        return stats

    def __repr__(self) -> str:
        size = len(self) if self.is_built else f"pending={len(self._pending)}"
        return f"SemTreeIndex({size}, dimensions={self.config.dimensions})"
