"""Background compaction: fold the delta into the tree off the serving path.

:class:`Compactor` is the synchronous policy object (*should* this index
compact, and do it); :class:`BackgroundCompactor` runs that policy on a
daemon thread so neither inserters nor queries ever pay for a fold
themselves.  The thread sleeps on an event that every insert kicks (via
:meth:`IngestingIndex.add_insert_listener`), with a periodic timeout as a
safety net, so compaction latency tracks the write rate without busy
polling.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.ingest.ingesting import IngestingIndex

__all__ = ["Compactor", "BackgroundCompactor"]


class Compactor:
    """The threshold policy around :meth:`IngestingIndex.compact`."""

    def __init__(self, index: IngestingIndex):
        self.index = index

    def should_compact(self) -> bool:
        """True when the index's delta has reached its threshold."""
        return self.index.should_compact()

    def maybe_compact(self) -> int:
        """Compact if the threshold is reached; returns points folded (0 otherwise)."""
        if not self.should_compact():
            return 0
        return self.index.compact()


class BackgroundCompactor:
    """A daemon thread that keeps an :class:`IngestingIndex` compacted.

    Parameters
    ----------
    index:
        The index to watch.
    poll_interval:
        Safety-net wake-up period in seconds; the usual wake-up is the
        insert listener, so this only matters if inserts stop right at the
        threshold boundary.

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with BackgroundCompactor(index):
            ... inserts and queries interleave, folds happen off-thread ...
    """

    def __init__(self, index: IngestingIndex, *, poll_interval: float = 0.05):
        self.compactor = Compactor(index)
        self.poll_interval = poll_interval
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        index.add_insert_listener(self._wakeup.set)

    # -- thread body --------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wakeup.wait(timeout=self.poll_interval)
            self._wakeup.clear()
            if self._stop.is_set():
                break
            self.compactor.maybe_compact()

    # -- lifecycle ----------------------------------------------------------------------

    def start(self) -> "BackgroundCompactor":
        """Start the daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="semtree-compactor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, *, final_compact: bool = False) -> None:
        """Stop the thread; optionally run one last threshold-blind fold."""
        self._stop.set()
        self._wakeup.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if final_compact:
            self.compactor.index.compact()

    @property
    def is_running(self) -> bool:
        """True while the daemon thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "BackgroundCompactor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"BackgroundCompactor(running={self.is_running}, "
            f"index={self.compactor.index!r})"
        )
