"""The drain contract, pinned: ``close()`` finishes in-flight work first.

``SemTreeServer.close`` / ``AsyncSemTreeServer.close`` promise that every
request whose bytes arrived before shutdown completes fully — handler
runs, response written back — before the app (engine, compactor, WAL) is
torn down and the shutdown checkpoint is cut.  These tests hold a request
in flight with a latency fault and close the server under it, in-process
on both transports and over a real SIGTERM to the CLI.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

import pytest

from server_corpus import BASE_TRIPLES, INSERT_TRIPLES
from repro.coordinator.launcher import _spawn
from repro.core import SemTreeConfig, SemTreeIndex
from repro.faults import FaultPlan, FaultSpec
from repro.ingest import IngestingIndex
from repro.requirements import build_requirement_distance, build_requirement_vocabularies
from repro.server import ServerApp, create_server
from repro.server.bootstrap import vocabulary_hints
from repro.workloads import ServerClient

SLOW_KNN = [FaultSpec(operation="handle", target="/v1/knn",
                      kind="latency", latency=0.8, max_fires=1)]


@pytest.mark.parametrize("transport", ["threaded", "async"])
class TestInProcessDrain:
    def test_close_waits_for_the_in_flight_response(
            self, make_transport_server, transport):
        server = make_transport_server(
            transport, server_kwargs={"fault_plan": FaultPlan(SLOW_KNN)})
        outcome = {}

        def slow_request():
            with ServerClient(server.url) as client:
                client.insert(INSERT_TRIPLES[0])
                outcome["payload"] = client.knn(BASE_TRIPLES[0], 3)
                outcome["finished_at"] = time.monotonic()

        worker = threading.Thread(target=slow_request)
        worker.start()
        time.sleep(0.3)  # the knn is now parked inside the latency fault
        wal_seq = server.close()  # default: checkpoint on the way out
        closed_at = time.monotonic()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert outcome["payload"]["error"] is None
        assert outcome["payload"]["matches"]
        # The response was on the wire before close() — and therefore the
        # checkpoint — returned.
        assert outcome["finished_at"] <= closed_at
        assert wal_seq is not None and wal_seq >= 1  # the insert is covered

    def test_new_connections_are_refused_after_close(
            self, make_transport_server, transport):
        server = make_transport_server(transport)
        address = server.server_address
        server.close(checkpoint=False)
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=2).close()


class TestSigtermDrain:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        """A snapshot + truncated WAL a CLI server can boot from."""
        actors, values = vocabulary_hints(BASE_TRIPLES + INSERT_TRIPLES)
        distance = build_requirement_distance(
            build_requirement_vocabularies(actors, values))
        base = SemTreeIndex(distance, SemTreeConfig(
            dimensions=3, bucket_size=4, max_partitions=2,
            partition_capacity=8))
        base.add_triples(BASE_TRIPLES)
        base.build()
        root = tmp_path_factory.mktemp("drain")
        live = IngestingIndex(base, root / "wal.jsonl")
        app = ServerApp(live, checkpoint_path=root / "snapshot.json",
                        background_compaction=False)
        server = create_server(app).serve_background()
        with ServerClient(server.url) as client:
            client.insert_many(INSERT_TRIPLES[:2])
        server.close()
        return root

    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_sigterm_mid_request_finishes_then_checkpoints(
            self, checkpoint, transport):
        env = dict(os.environ)
        env["REPRO_FAULTS"] = json.dumps(
            [spec.to_dict() for spec in SLOW_KNN])
        managed = _spawn(
            ["-m", "repro.server",
             "--snapshot", str(checkpoint / "snapshot.json"),
             "--wal", str(checkpoint / "wal.jsonl"),
             "--port", "0", "--transport", transport, "--quiet"],
            role=f"{transport} server", env=env)
        outcome = {}
        try:
            def slow_request():
                with ServerClient(managed.url) as client:
                    outcome["payload"] = client.knn(BASE_TRIPLES[0], 3)

            worker = threading.Thread(target=slow_request)
            worker.start()
            time.sleep(0.3)  # in flight, parked inside the latency fault
            code = managed.terminate(timeout=30.0)
            worker.join(timeout=10.0)
            assert code == 0
            assert not worker.is_alive()
            assert outcome["payload"]["error"] is None
            assert outcome["payload"]["matches"]
            output = managed.process.stdout.read()
            assert "checkpointed through wal_seq" in output, output
        finally:
            managed.kill()
