"""Domain vocabularies: concepts, taxonomy, and antinomy (antonym) relations.

The paper needs two things from its "domain specific and/or general
vocabularies":

1. an IS-A structure so that the semantic distance can be computed
   (delegated to :class:`~repro.semantics.taxonomy.Taxonomy`), and
2. an *antinomy* relation between predicates ("the two predicates are linked
   by an antinomy relationship in a given vocabulary"), used both to define
   inconsistency and to build target (query) triples.

A :class:`Vocabulary` couples a taxonomy with the antinomy relation and
optional synonym sets.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.errors import VocabularyError
from repro.rdf.terms import Concept
from repro.semantics.taxonomy import Taxonomy

__all__ = ["Vocabulary"]


class Vocabulary:
    """A named vocabulary: a concept taxonomy plus antinomy and synonym relations.

    Concepts are addressed by their local names (strings); the
    :class:`~repro.rdf.terms.Concept` helpers accept RDF terms directly and
    extract the name.
    """

    def __init__(self, name: str, taxonomy: Taxonomy | None = None):
        if not name:
            raise VocabularyError("a Vocabulary requires a non-empty name")
        self.name = name
        self.taxonomy = taxonomy or Taxonomy()
        self._antonyms: Dict[str, Set[str]] = defaultdict(set)
        self._synonyms: Dict[str, Set[str]] = defaultdict(set)

    # -- concept management ---------------------------------------------------------

    def add_concept(self, concept: str, parents: Iterable[str] | str | None = None) -> None:
        """Add a concept to the vocabulary's taxonomy."""
        if isinstance(parents, str):
            parents = [parents]
        self.taxonomy.add_concept(concept, list(parents) if parents else None)

    def has_concept(self, concept: str | Concept) -> bool:
        """Return True when the concept is part of the vocabulary."""
        return self._name_of(concept) in self.taxonomy

    def concepts(self) -> List[str]:
        """All concept names in the vocabulary."""
        return self.taxonomy.concepts()

    @staticmethod
    def _name_of(concept: str | Concept) -> str:
        return concept.name if isinstance(concept, Concept) else concept

    def _require(self, concept: str) -> None:
        if concept not in self.taxonomy:
            raise VocabularyError(
                f"concept {concept!r} is not part of vocabulary {self.name!r}"
            )

    # -- antinomy relation ------------------------------------------------------------

    def add_antonym(self, concept_a: str | Concept, concept_b: str | Concept) -> None:
        """Declare two concepts as antinomic (the relation is symmetric).

        Both concepts must already belong to the vocabulary.
        """
        name_a = self._name_of(concept_a)
        name_b = self._name_of(concept_b)
        self._require(name_a)
        self._require(name_b)
        if name_a == name_b:
            raise VocabularyError(f"a concept cannot be its own antonym: {name_a!r}")
        self._antonyms[name_a].add(name_b)
        self._antonyms[name_b].add(name_a)

    def are_antonyms(self, concept_a: str | Concept, concept_b: str | Concept) -> bool:
        """True when the two concepts are linked by the antinomy relation."""
        name_a = self._name_of(concept_a)
        name_b = self._name_of(concept_b)
        return name_b in self._antonyms.get(name_a, set())

    def antonyms_of(self, concept: str | Concept) -> Set[str]:
        """The set of antonyms of a concept (possibly empty)."""
        name = self._name_of(concept)
        self._require(name)
        return set(self._antonyms.get(name, set()))

    def antonym_pairs(self) -> List[Tuple[str, str]]:
        """All antinomic pairs, each reported once with the names sorted."""
        pairs = {
            tuple(sorted((name, other)))
            for name, others in self._antonyms.items()
            for other in others
        }
        return sorted(pairs)  # type: ignore[arg-type]

    # -- synonym relation ---------------------------------------------------------------

    def add_synonym(self, concept_a: str | Concept, concept_b: str | Concept) -> None:
        """Declare two concepts as synonyms (symmetric)."""
        name_a = self._name_of(concept_a)
        name_b = self._name_of(concept_b)
        self._require(name_a)
        self._require(name_b)
        if name_a == name_b:
            return
        self._synonyms[name_a].add(name_b)
        self._synonyms[name_b].add(name_a)

    def are_synonyms(self, concept_a: str | Concept, concept_b: str | Concept) -> bool:
        """True when the two concepts are declared synonyms (or are identical)."""
        name_a = self._name_of(concept_a)
        name_b = self._name_of(concept_b)
        if name_a == name_b:
            return True
        return name_b in self._synonyms.get(name_a, set())

    def synonyms_of(self, concept: str | Concept) -> Set[str]:
        """The set of synonyms of a concept (not including itself)."""
        name = self._name_of(concept)
        self._require(name)
        return set(self._synonyms.get(name, set()))

    # -- dunder -----------------------------------------------------------------------

    def __contains__(self, concept: str | Concept) -> bool:
        return self.has_concept(concept)

    def __len__(self) -> int:
        return len(self.taxonomy)

    def __iter__(self) -> Iterator[str]:
        return iter(self.taxonomy)

    def __repr__(self) -> str:
        return (
            f"Vocabulary(name={self.name!r}, concepts={len(self)}, "
            f"antonym_pairs={len(self.antonym_pairs())})"
        )
