"""Tests for the simulated cluster orchestration."""

import pytest

from repro.cluster import ComputeNode, Message, MessageKind, SimulatedCluster
from repro.errors import ClusterError


class TestConstruction:
    def test_creates_requested_nodes(self):
        cluster = SimulatedCluster(node_count=4)
        assert cluster.node_count == 4
        assert [node.node_id for node in cluster.nodes] == [
            "node-0", "node-1", "node-2", "node-3"
        ]

    def test_zero_nodes_rejected(self):
        with pytest.raises(ClusterError):
            SimulatedCluster(node_count=0)

    def test_node_lookup(self):
        cluster = SimulatedCluster(node_count=2)
        assert cluster.node("node-1").node_id == "node-1"
        with pytest.raises(ClusterError):
            cluster.node("node-9")

    def test_add_node(self):
        cluster = SimulatedCluster(node_count=1)
        cluster.add_node(ComputeNode(node_id="extra"))
        assert cluster.node_count == 2
        with pytest.raises(ClusterError):
            cluster.add_node(ComputeNode(node_id="extra"))


class TestPlacement:
    def test_placement_prefers_least_loaded_node(self):
        cluster = SimulatedCluster(node_count=2)
        first = cluster.place_partition("P0", lambda m: None)
        second = cluster.place_partition("P1", lambda m: None)
        third = cluster.place_partition("P2", lambda m: None)
        assert first == "node-0"
        assert second == "node-1"
        assert third in {"node-0", "node-1"}
        assert cluster.node_of_partition("P0") == "node-0"

    def test_preferred_node_honoured(self):
        cluster = SimulatedCluster(node_count=3)
        node_id = cluster.place_partition("P0", lambda m: None, preferred_node="node-2")
        assert node_id == "node-2"

    def test_remove_partition(self):
        cluster = SimulatedCluster(node_count=2)
        cluster.place_partition("P0", lambda m: None)
        cluster.remove_partition("P0")
        with pytest.raises(ClusterError):
            cluster.node_of_partition("P0")

    def test_record_points_updates_hosting_node(self):
        cluster = SimulatedCluster(node_count=1, node_capacity=100)
        cluster.place_partition("P0", lambda m: None)
        cluster.record_points("P0", 42)
        assert cluster.node("node-0").stored_points == 42


class TestMessagingAndCosts:
    def test_send_routes_to_handler(self):
        cluster = SimulatedCluster(node_count=2)
        received = []
        cluster.place_partition("P0", lambda m: None)
        cluster.place_partition("P1", received.append)
        cluster.send(Message(kind=MessageKind.INSERT, source="P0", target="P1"))
        assert len(received) == 1
        assert cluster.clock.messages == 1

    def test_charge_work_scaled_by_processing_cost(self):
        cluster = SimulatedCluster(node_count=1)
        cluster.node("node-0").processing_cost = 2.0
        cluster.place_partition("P0", lambda m: None)
        cluster.charge_work("P0", 3.0)
        assert cluster.clock.work_of("P0") == 6.0

    def test_costs_snapshot_and_reset(self):
        cluster = SimulatedCluster(node_count=1)
        cluster.place_partition("P0", lambda m: None)
        cluster.charge_work("P0", 5.0)
        assert cluster.costs().total_work == 5.0
        cluster.reset_costs()
        assert cluster.costs().total_work == 0.0
