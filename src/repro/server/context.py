"""Per-request client context, carried on a contextvar.

The HTTP handler stashes the identity headers of the request it is serving
— ``X-Client-Id`` (admission control's rate-limit key) and
``Idempotency-Key`` (the insert-dedup key) — so the app layer can read
them without threading header plumbing through every ``post_routes``
callable, whose signature is shared by apps that will never care
(:class:`~repro.server.shard.ShardApp` has neither clients nor inserts).

A contextvar, not a thread-local: the value is scoped to the request that
set it (the ``request_context`` manager restores the previous value on
exit), and code the handler calls into — however deep — sees exactly its
own request's context.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["RequestContext", "current_context", "request_context",
           "CLIENT_ID_HEADER", "IDEMPOTENCY_KEY_HEADER"]

#: The header admission control keys per-client rate limits on.
CLIENT_ID_HEADER = "X-Client-Id"

#: The header that makes a ``POST /v1/insert`` safely retryable.
IDEMPOTENCY_KEY_HEADER = "Idempotency-Key"

#: Longest accepted header value; anything longer is truncated (the keys
#: index bounded in-memory maps — unbounded attacker-chosen strings must
#: not become unbounded memory).
MAX_VALUE_LENGTH = 256


@dataclass(frozen=True, slots=True)
class RequestContext:
    """The identity headers of the request currently being served."""

    client_id: Optional[str] = None
    idempotency_key: Optional[str] = None


_EMPTY = RequestContext()

_current: ContextVar[RequestContext] = ContextVar("repro_request_context",
                                                  default=_EMPTY)


def _clean(value: Optional[str]) -> Optional[str]:
    if value is None:
        return None
    value = value.strip()[:MAX_VALUE_LENGTH]
    return value or None


def current_context() -> RequestContext:
    """The serving request's context (all-``None`` outside a request)."""
    return _current.get()


@contextlib.contextmanager
def request_context(*, client_id: Optional[str] = None,
                    idempotency_key: Optional[str] = None) -> Iterator[RequestContext]:
    """Install a request's identity headers for the duration of a block."""
    context = RequestContext(client_id=_clean(client_id),
                             idempotency_key=_clean(idempotency_key))
    token = _current.set(context)
    try:
        yield context
    finally:
        _current.reset(token)
