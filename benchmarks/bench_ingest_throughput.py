"""Ingest throughput — inserts/sec while a query load is being served.

The live-ingestion pitch is that the index absorbs a write stream without
quiescing reads.  This benchmark builds a requirements corpus index, wraps
it in an :class:`~repro.ingest.ingesting.IngestingIndex` and measures

* pure insert throughput (no concurrent queries),
* mixed-workload throughput: an inserter thread streaming triples while
  query threads run k-NN batches through the :class:`QueryEngine`,

each with compaction disabled (threshold above the stream length) and with
a background compactor folding every 64 inserts.  The report also gives the
query throughput sustained *during* ingestion and the quiesce-free
correctness check: the final merged answers equal a from-scratch rebuild.

Expected shape: mixed-mode insert throughput stays within the same order of
magnitude as pure ingest (reads never block writes for long), compaction
adds only bounded overhead, and the equivalence check always passes.
"""

from __future__ import annotations

import threading
from typing import Dict

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.evaluation import Experiment, measure
from repro.ingest import BackgroundCompactor, IngestingIndex
from repro.requirements import (GeneratorConfig, RequirementsGenerator,
                                build_requirement_distance,
                                build_requirement_vocabularies)
from repro.service import QueryEngine, QuerySpec

from .conftest import write_report

STREAM_SIZE = 192
QUERY_BATCH = 24
COMPACTION_THRESHOLD = 64


def _corpus_and_distance():
    config = GeneratorConfig(
        documents=16, requirements_per_document=8, sentences_per_requirement=3,
        actors=24, inconsistency_rate=0.2, restatement_rate=0.2, seed=31,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    return corpus, build_requirement_distance(vocabularies)


def _split(corpus):
    triples = list(dict.fromkeys(corpus.all_triples()))
    base, stream = triples[:-STREAM_SIZE], triples[-STREAM_SIZE:]
    return base, stream


def _build_base(distance, base_triples) -> SemTreeIndex:
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=4, partition_capacity=64,
    ))
    index.add_triples(base_triples)
    return index.build()


def _ingest_only(distance, base_triples, stream, tmp_path, *, compact: bool) -> Dict[str, float]:
    threshold = COMPACTION_THRESHOLD if compact else 10 * len(stream)
    index = IngestingIndex(_build_base(distance, base_triples),
                           tmp_path / "wal-pure.jsonl",
                           compaction_threshold=threshold)
    compactor = BackgroundCompactor(index, poll_interval=0.002)
    if compact:
        compactor.start()
    timing = measure(lambda: index.insert_many(stream))
    if compact:
        compactor.stop(final_compact=True)
    index.close()
    stats = index.statistics()
    return {
        "inserts_per_sec": len(stream) / max(timing.wall_seconds, 1e-9),
        "compactions": stats["compactions"],
    }


def _mixed(distance, base_triples, stream, queries, tmp_path, *,
           compact: bool) -> Dict[str, float]:
    threshold = COMPACTION_THRESHOLD if compact else 10 * len(stream)
    index = IngestingIndex(_build_base(distance, base_triples),
                           tmp_path / "wal-mixed.jsonl",
                           compaction_threshold=threshold)
    specs = [QuerySpec.k_nearest(triple, 3) for triple in queries]
    served = {"queries": 0}
    done = threading.Event()
    compactor = BackgroundCompactor(index, poll_interval=0.002)
    if compact:
        compactor.start()

    with QueryEngine(index, workers=2) as engine:
        def query_load():
            while not done.is_set():
                engine.execute_batch(specs)
                served["queries"] += len(specs)

        query_thread = threading.Thread(target=query_load)
        query_thread.start()
        timing = measure(lambda: index.insert_many(stream))
        done.set()
        query_thread.join()

        if compact:
            compactor.stop(final_compact=True)

        # quiesce-free correctness: merged answers equal a full rebuild
        oracle = _build_base(distance, base_triples)
        oracle.insert_triples(stream)
        for spec in specs[:4]:
            merged = [(round(m.distance, 9), str(m.triple))
                      for m in index.k_nearest(spec.triple, spec.k)]
            rebuilt = [(round(m.distance, 9), str(m.triple))
                       for m in oracle.k_nearest(spec.triple, spec.k)]
            assert sorted(merged) == sorted(rebuilt)

    index.close()
    stats = index.statistics()
    wall = max(timing.wall_seconds, 1e-9)
    return {
        "inserts_per_sec": len(stream) / wall,
        "queries_per_sec": served["queries"] / wall,
        "compactions": stats["compactions"],
    }


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.benchmark(group="ingest-throughput")
def test_benchmark_pure_ingest(benchmark, tmp_path):
    corpus, distance = _corpus_and_distance()
    base_triples, stream = _split(corpus)
    index = IngestingIndex(_build_base(distance, base_triples),
                           tmp_path / "wal-bench.jsonl",
                           compaction_threshold=10 * len(stream))
    position = iter(range(10**9))
    benchmark(lambda: index.insert(stream[next(position) % len(stream)]))
    index.close()


@pytest.mark.benchmark(group="ingest-throughput")
def test_benchmark_merged_knn_with_hot_delta(benchmark, tmp_path):
    corpus, distance = _corpus_and_distance()
    base_triples, stream = _split(corpus)
    index = IngestingIndex(_build_base(distance, base_triples),
                           tmp_path / "wal-knn.jsonl",
                           compaction_threshold=10 * len(stream))
    index.insert_many(stream[:COMPACTION_THRESHOLD])  # a full-size delta
    query = stream[0]
    benchmark(lambda: index.k_nearest(query, 3))
    index.close()


# -- the report ---------------------------------------------------------------------------

def test_report_ingest_throughput(results_dir, tmp_path):
    corpus, distance = _corpus_and_distance()
    base_triples, stream = _split(corpus)
    queries = stream[:QUERY_BATCH]

    experiment = Experiment(
        experiment_id="ingest_throughput",
        description=(
            f"Insert throughput over a {len(base_triples)}-triple base index, "
            f"{len(stream)}-triple stream; mixed mode serves k-NN batches of "
            f"{QUERY_BATCH} concurrently (2 engine workers). Merged answers are "
            "checked identical (tie-insensitive) to a full rebuild. "
            "x = compaction threshold (0 = compaction disabled)."
        ),
        swept_parameter="compaction_threshold",
    )
    for x, compact in ((0, False), (COMPACTION_THRESHOLD, True)):
        pure = _ingest_only(distance, base_triples, stream,
                            tmp_path / f"pure-{x}", compact=compact)
        mixed = _mixed(distance, base_triples, stream, queries,
                       tmp_path / f"mixed-{x}", compact=compact)
        experiment.record(
            "ingest", float(x),
            pure_inserts_per_sec=pure["inserts_per_sec"],
            mixed_inserts_per_sec=mixed["inserts_per_sec"],
            mixed_queries_per_sec=mixed["queries_per_sec"],
            compactions=float(pure["compactions"] + mixed["compactions"]),
        )

    text = write_report(results_dir, experiment, [
        "pure_inserts_per_sec", "mixed_inserts_per_sec",
        "mixed_queries_per_sec", "compactions",
    ])
    assert "ingest_throughput" in text

    series = experiment.series["ingest"]
    # shape: serving a query load must not collapse ingest throughput ...
    for mixed_qps, pure_qps in zip(series.values("mixed_inserts_per_sec"),
                                   series.values("pure_inserts_per_sec")):
        assert mixed_qps > 0.1 * pure_qps
    # ... queries really ran during ingestion, and compaction mode compacted.
    assert all(qps > 0 for qps in series.values("mixed_queries_per_sec"))
    assert series.values("compactions")[-1] >= 2
