"""SemTree partitions.

The paper distributes the KD-tree "through different partitions usually
managed by a single compute node".  A :class:`Partition` owns a subtree of
:class:`~repro.core.node.Node` objects (its local root plus every descendant
that is not behind a :class:`~repro.core.node.RemoteChild` pointer), counts
the points stored in its local leaves, and knows how to decide whether it is
*saturated* — the condition that triggers the build-partition procedure,
either statically fixed or derived from the hosting compute node's available
storage (the paper's two options).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.cluster.message import Message, MessageKind
from repro.core.config import CapacityPolicy, SemTreeConfig
from repro.core.node import Node, RemoteChild
from repro.errors import PartitionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.distributed import DistributedSemTree

__all__ = ["Partition"]


class Partition:
    """One partition of the distributed SemTree.

    Parameters
    ----------
    partition_id:
        Unique identifier (``"P0"`` is the root partition).
    tree:
        The owning :class:`~repro.core.distributed.DistributedSemTree`;
        message handling is delegated back to it.
    root:
        The partition's local root node.  When omitted an empty leaf is
        created (the initial state of the root partition).
    """

    def __init__(self, partition_id: str, tree: "DistributedSemTree",
                 root: Node | None = None):
        if not partition_id:
            raise PartitionError("a Partition requires a non-empty identifier")
        self.partition_id = partition_id
        self.tree = tree
        self.root: Node = root if root is not None else Node(partition_id=partition_id)
        self.point_count = 0
        self._adopt_subtree(self.root)

    # -- structure ------------------------------------------------------------------

    def _adopt_subtree(self, node: Node) -> None:
        """Mark every local node of a subtree as belonging to this partition and
        recount the points stored in its leaves."""
        stack = [node]
        counted = 0
        while stack:
            current = stack.pop()
            current.partition_id = self.partition_id
            if current.is_leaf:
                counted += len(current.bucket)
            else:
                for child in (current.left, current.right):
                    if isinstance(child, Node):
                        stack.append(child)
        if node is self.root:
            self.point_count = counted

    def local_nodes(self) -> Iterator[Node]:
        """Iterate over every node hosted by this partition."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if node.is_routing:
                for child in (node.left, node.right):
                    if isinstance(child, Node):
                        stack.append(child)

    def local_leaves(self) -> List[Node]:
        """Every leaf hosted by this partition."""
        return [node for node in self.local_nodes() if node.is_leaf]

    def leaf_parents(self) -> List[Tuple[Node, str, Node]]:
        """Return ``(parent, side, leaf)`` for every local leaf that has a local parent.

        ``side`` is ``"left"`` or ``"right"``.  The partition's own root is
        not included (it has no parent within the partition); the
        build-partition procedure therefore never empties a partition
        completely.
        """
        found: List[Tuple[Node, str, Node]] = []
        for node in self.local_nodes():
            if node.is_leaf:
                continue
            if isinstance(node.left, Node) and node.left.is_leaf:
                found.append((node, "left", node.left))
            if isinstance(node.right, Node) and node.right.is_leaf:
                found.append((node, "right", node.right))
        return found

    def edge_nodes(self) -> List[Node]:
        """Nodes with at least one remote child, plus every leaf (the paper's edge nodes)."""
        return [node for node in self.local_nodes() if node.is_edge()]

    def internal_nodes(self) -> List[Node]:
        """Routing nodes whose children are both local (the paper's internal nodes)."""
        return [node for node in self.local_nodes() if node.is_internal()]

    def remote_children(self) -> List[RemoteChild]:
        """Every remote pointer leaving this partition."""
        pointers: List[RemoteChild] = []
        for node in self.local_nodes():
            for child in (node.left, node.right):
                if isinstance(child, RemoteChild):
                    pointers.append(child)
        return pointers

    @property
    def is_routing_only(self) -> bool:
        """True when the partition stores no points (it only routes queries)."""
        return self.point_count == 0

    # -- capacity ---------------------------------------------------------------------

    def is_saturated(self, config: SemTreeConfig, node_capacity: Optional[int]) -> bool:
        """Evaluate the paper's resource condition for this partition.

        Parameters
        ----------
        config:
            The index configuration (capacity policy and static threshold).
        node_capacity:
            Storage capacity of the hosting compute node (``None`` =
            unlimited), used by the NODE_FRACTION policy.
        """
        if config.capacity_policy is CapacityPolicy.STATIC:
            return self.point_count > config.partition_capacity
        if node_capacity is None:
            return self.point_count > config.partition_capacity
        return self.point_count > config.node_capacity_fraction * node_capacity

    # -- accounting ---------------------------------------------------------------------

    def record_stored(self, delta: int) -> None:
        """Adjust the partition's stored-point counter."""
        new_value = self.point_count + delta
        if new_value < 0:
            raise PartitionError(
                f"partition {self.partition_id!r} would store a negative number of points"
            )
        self.point_count = new_value

    # -- messaging -------------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        """Entry point invoked by the message bus; delegates to the owning tree."""
        if message.kind is MessageKind.INSERT:
            self.tree.handle_insert_message(self, message)
        elif message.kind is MessageKind.KNN_DESCEND:
            self.tree.handle_knn_message(self, message)
        elif message.kind is MessageKind.RANGE_DESCEND:
            self.tree.handle_range_message(self, message)
        elif message.kind in (MessageKind.SCAN_KNN, MessageKind.SCAN_RANGE):
            self.tree.handle_scan_message(self, message)
        elif message.kind in (MessageKind.KNN_RESULT, MessageKind.RANGE_RESULT,
                              MessageKind.SCAN_RESULT,
                              MessageKind.ACK, MessageKind.MOVE_LEAF,
                              MessageKind.BUILD_PARTITION):
            # Result/acknowledgement traffic only exists for cost accounting;
            # the synchronous simulation has nothing further to do.
            return
        else:  # pragma: no cover - defensive
            raise PartitionError(f"partition {self.partition_id!r} cannot handle {message!r}")

    def __repr__(self) -> str:
        return (
            f"Partition(id={self.partition_id!r}, points={self.point_count}, "
            f"nodes={sum(1 for _ in self.local_nodes())})"
        )
