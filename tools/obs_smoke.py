#!/usr/bin/env python3
"""CI observability smoke: boot a server, scrape it, validate the exposition.

Boots a real :class:`~repro.server.http.SemTreeServer` over a small
synthetic corpus on an ephemeral loopback port, then checks the
observability surface end to end:

1. ``GET /v1/metrics?format=prometheus`` answers with the v0.0.4 content
   type, parses, and passes every exposition invariant
   (:func:`~repro.obs.prometheus.validate_exposition`);
2. the core metric families are present;
3. the exposition agrees with the JSON ``/v1/metrics`` payload on the
   shared counters (the two are rendered from the same registry);
4. a request with ``X-Debug-Trace`` returns a span tree carrying the
   client's ``X-Trace-Id``.

Exit status 0 on success, 1 with one line per failure — what the CI
observability job keys off.  Run from the repository root::

    PYTHONPATH=src python tools/obs_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.ingest import IngestingIndex
from repro.obs.prometheus import CONTENT_TYPE, parse_exposition, validate_exposition
from repro.requirements import (
    GeneratorConfig,
    RequirementsGenerator,
    build_requirement_distance,
    build_requirement_vocabularies,
)
from repro.core import SemTreeConfig, SemTreeIndex
from repro.server import SemTreeServer, ServerApp

CORE_FAMILIES = {
    "repro_build_info",
    "repro_uptime_seconds",
    "repro_http_requests_total",
    "repro_queries_total",
    "repro_queries_executed_total",
    "repro_query_latency_seconds",
    "repro_queue_wait_seconds",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_inserts_total",
    "repro_index_points",
    "repro_index_generation",
    "repro_engine_workers",
}


def build_server(tmp_dir: Path):
    corpus = RequirementsGenerator(GeneratorConfig(
        documents=4, requirements_per_document=4, sentences_per_requirement=2,
        actors=8, seed=7,
    )).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values)
    index = SemTreeIndex(build_requirement_distance(vocabularies), SemTreeConfig(
        dimensions=3, bucket_size=4, max_partitions=2, partition_capacity=16,
    ))
    triples = []
    for document in corpus.documents:
        rdf_document = document.to_rdf_document()
        triples.extend(rdf_document.triples)
        index.add_document(rdf_document)
    index.build()
    live = IngestingIndex(index, tmp_dir / "wal.jsonl")
    app = ServerApp(live, workers=2,
                    checkpoint_path=tmp_dir / "snapshot.json")
    return SemTreeServer(app).serve_background(), triples


def fetch(url: str, *, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


def post(url: str, payload: dict, *, headers: dict | None = None):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), \
            json.loads(response.read())


def run_smoke() -> list[str]:
    problems: list[str] = []
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        server, triples = build_server(Path(tmp))
        try:
            # Traffic first, so counters and histograms are non-trivial.
            from repro.workloads import ServerClient

            with ServerClient(server.url) as client:
                for triple in triples[:4]:
                    client.knn(triple, 3)
                    client.knn(triple, 3)       # cache hit

            status, headers, raw = fetch(
                f"{server.url}/v1/metrics?format=prometheus")
            if status != 200:
                problems.append(f"prometheus endpoint answered {status}")
            if headers.get("Content-Type") != CONTENT_TYPE:
                problems.append(
                    f"wrong content type: {headers.get('Content-Type')!r}")
            families = parse_exposition(raw.decode("utf-8"))
            problems.extend(validate_exposition(families))
            missing = CORE_FAMILIES - set(families)
            if missing:
                problems.append(f"missing core families: {sorted(missing)}")

            # The JSON payload and the exposition must agree.
            metrics = json.loads(fetch(f"{server.url}/v1/metrics")[2])

            def value_of(name):
                return families[name].samples[0].value
            if value_of("repro_queries_executed_total") != \
                    metrics["serving"]["executed"]:
                problems.append("executed-query counter disagrees with JSON")
            if value_of("repro_cache_hits_total") != metrics["cache"]["hits"]:
                problems.append("cache-hit counter disagrees with JSON")

            # Tracing: opt-in span tree with the client's trace id.
            from repro.io.serialization import triple_to_dict
            status, headers, traced = post(
                f"{server.url}/v1/knn",
                {"triple": triple_to_dict(triples[0]), "k": 2},
                headers={"X-Trace-Id": "obs-smoke-1", "X-Debug-Trace": "1"})
            if headers.get("X-Trace-Id") != "obs-smoke-1":
                problems.append("X-Trace-Id was not echoed")
            trace = traced.get("debug", {}).get("trace")
            if not trace or trace.get("trace_id") != "obs-smoke-1":
                problems.append("debug trace missing or with wrong trace id")
            elif not trace.get("spans"):
                problems.append("debug trace has no spans")
        finally:
            server.close(checkpoint=False)
    return problems


def main() -> int:
    problems = run_smoke()
    for problem in problems:
        print(f"obs smoke: {problem}", file=sys.stderr)
    if not problems:
        print("obs smoke: exposition valid, core series present, "
              "formats agree, tracing round-trips")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
