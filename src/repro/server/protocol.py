"""The transport-neutral HTTP/1.1 framing and dispatch layer.

Both transports — the threaded :class:`~repro.server.http.SemTreeServer`
and the event-loop :class:`~repro.server.async_http.AsyncSemTreeServer` —
are thin byte movers around this module.  They share exactly one
implementation of:

- **framing** (:class:`RequestParser`): an incremental, non-blocking
  HTTP/1.1 request parser.  Bytes go in via :meth:`RequestParser.feed` in
  whatever chunks the socket produced; a :class:`ParsedRequest` comes out.
  All limits (request-line length, header count/size, body size) and all
  malformed-input verdicts live here, so a framing fuzzer that pins this
  module pins both transports at once.
- **dispatch** (:class:`Dispatcher`): the full request lifecycle — trace
  activation, request context, fault injection, routing, the pinned
  4xx/5xx error ladder, handler invocation, serialisation, the access-log
  line — producing a :class:`WireResponse` the transport writes out.

The parser deliberately *pauses* once the header block is complete
(``state == "paused"``): whether the body should be read at all is a
dispatch-level decision (a 404 or 415 answers immediately without waiting
for body bytes that may never arrive — exactly what the threaded handler
has always done).  The transport asks :meth:`Dispatcher.needs_body`; a
``True`` resumes body framing via :meth:`RequestParser.begin_body`, a
``False`` dispatches right away with the body unread (and the connection
marked to close, so leftover bytes can never desync the next exchange).
"""

from __future__ import annotations

import json
import socket
import time
import urllib.parse
from dataclasses import dataclass
from http import HTTPStatus
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro import __version__
from repro.faults import FaultPlan, FaultSpec
from repro.obs import logging as obs_logging
from repro.obs import prometheus as obs_prometheus
from repro.obs.tracing import Trace, activate, sanitize_trace_id, span
from repro.server.context import (CLIENT_ID_HEADER, IDEMPOTENCY_KEY_HEADER,
                                  request_context)
from repro.server.schemas import error_body, status_for

__all__ = [
    "MAX_BODY_BYTES", "MAX_REQUEST_LINE_BYTES", "MAX_HEADER_BYTES",
    "MAX_HEADER_COUNT", "Headers", "ParsedRequest", "RequestParser",
    "WireResponse", "Dispatcher", "split_route", "query_params",
]

#: Largest request body accepted, in bytes (a 4096-triple insert batch fits
#: comfortably; anything bigger should be split).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Longest accepted request line (method + target + version), in bytes.
MAX_REQUEST_LINE_BYTES = 64 * 1024

#: Largest accepted header block (every header line together), in bytes.
MAX_HEADER_BYTES = 64 * 1024

#: Most header lines accepted on one request.
MAX_HEADER_COUNT = 128

#: Header values accepted as "yes" for the ``X-Debug-Trace`` opt-in.
_DEBUG_TRACE_VALUES = frozenset({"1", "true", "yes", "on"})

_SERVER_HEADER = f"repro-semtree/{__version__}"

_access_log = obs_logging.get_logger("repro.access")


def split_route(target: str) -> str:
    """The route of a request target: path before ``?``, trailing ``/`` cut."""
    return target.split("?", 1)[0].rstrip("/") or "/"


def query_params(target: str) -> Dict[str, str]:
    """The target's query-string parameters (last value wins)."""
    if "?" not in target:
        return {}
    parsed = urllib.parse.parse_qs(target.split("?", 1)[1],
                                   keep_blank_values=True)
    return {key: values[-1] for key, values in parsed.items()}


class Headers:
    """A case-insensitive view over one request's header lines.

    First value wins on duplicates (mirroring what ``http.client`` and the
    old ``email``-based stdlib handler did for the headers this server
    reads); folded continuation lines are joined with a single space.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, str] = {}

    def add(self, name: str, value: str) -> None:
        self._values.setdefault(name.lower(), value)

    def fold_into_last(self, name: str, extra: str) -> None:
        key = name.lower()
        if key in self._values:
            self._values[key] = f"{self._values[key]} {extra}"

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self._values.get(name.lower(), default)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._values

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterator[Tuple[str, str]]:
        return iter(self._values.items())


@dataclass
class ParsedRequest:
    """One fully-framed (or deliberately body-less) HTTP request."""

    method: str
    target: str
    version: Tuple[int, int]
    headers: Headers
    #: The request body; ``None`` when dispatch decided not to read it
    #: (routing/framing error paths answer before the body arrives).
    body: Optional[bytes] = None
    #: Parsed ``Content-Length``: ``None`` when absent, ``-1`` when invalid.
    content_length: Optional[int] = None
    #: True when a ``Transfer-Encoding`` header is present (chunked bodies
    #: are not supported; see the 501 path).
    chunked: bool = False

    @property
    def route(self) -> str:
        return split_route(self.target)

    @property
    def body_indicated(self) -> bool:
        """True when the client declared a body (``Content-Length``/``TE``)."""
        return self.chunked or self.content_length is not None

    @property
    def keep_alive(self) -> bool:
        connection = (self.headers.get("Connection") or "").strip().lower()
        if self.version >= (1, 1):
            return connection != "close"
        return connection == "keep-alive"


@dataclass
class _FramingError:
    """A connection-fatal parse failure (no request object exists)."""

    status: int
    error_type: str
    message: str


@dataclass
class WireResponse:
    """Everything a transport needs to write one response and move on."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    retry_after: Optional[float] = None
    trace_id: Optional[str] = None
    close: bool = False
    #: Armed by a ``slow_drip`` fault: the transport dribbles the body out
    #: in small paced chunks instead of one write.
    drip: Optional[FaultSpec] = None
    #: Armed by an ``error`` fault: shut the socket without any response
    #: bytes (the client sees exactly what a crashed peer causes).
    reset: bool = False

    def encode_head(self) -> bytes:
        """The status line + headers + blank line, ready for the wire."""
        try:
            phrase = HTTPStatus(self.status).phrase
        except ValueError:
            phrase = ""
        parts = [
            f"HTTP/1.1 {self.status} {phrase}\r\n"
            f"Server: {_SERVER_HEADER}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
        ]
        if self.retry_after is not None:
            # HTTP wants delta-seconds as a non-negative integer; round up
            # so "0.4s" does not become an immediate (pointless) retry.
            parts.append(f"Retry-After: {max(1, int(-(-self.retry_after // 1)))}\r\n")
        if self.trace_id is not None:
            parts.append(f"X-Trace-Id: {self.trace_id}\r\n")
        if self.close:
            parts.append("Connection: close\r\n")
        parts.append("\r\n")
        return "".join(parts).encode("latin-1")

    def encode(self) -> bytes:
        return self.encode_head() + self.body

    def drip_chunks(self) -> List[Tuple[float, bytes]]:
        """The body as ``(pause_seconds, chunk)`` pairs for a drip fault.

        Each pause precedes its chunk so the fault's full latency lands
        before the last byte: the client's read blocks for at least
        ``drip.latency`` before the body completes.
        """
        if self.drip is None or not self.body:
            return [(0.0, self.body)]
        chunks = max(2, min(8, len(self.body)))
        pause = self.drip.latency / chunks if self.drip.latency else 0.0
        size = -(-len(self.body) // chunks)
        return [(pause, self.body[start:start + size])
                for start in range(0, len(self.body), size)]


class RequestParser:
    """An incremental HTTP/1.1 request parser (one request at a time).

    Feed raw socket bytes with :meth:`feed`; watch :attr:`state`:

    - ``"line"`` / ``"headers"``: still framing, keep feeding.
    - ``"paused"``: the header block is complete and :attr:`request` is
      set (body unread).  The transport must consult
      :meth:`Dispatcher.needs_body` and either :meth:`begin_body` or
      dispatch immediately.
    - ``"body"``: reading ``Content-Length`` bytes; keep feeding.
    - ``"complete"``: :attr:`request` is fully framed (body attached when
      one was read).  :attr:`remainder` counts any pipelined extra bytes.
    - ``"error"``: :attr:`error` holds the connection-fatal verdict.

    All buffers are bounded: the request line by
    :data:`MAX_REQUEST_LINE_BYTES`, the header block by
    :data:`MAX_HEADER_BYTES` / :data:`MAX_HEADER_COUNT`, the body by the
    dispatch-level :data:`MAX_BODY_BYTES` check (413 before
    :meth:`begin_body` is ever called).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._body = bytearray()
        self._body_remaining = 0
        self._header_bytes = 0
        self._last_header: Optional[str] = None
        self.state = "line"
        self.started = False
        self.request: Optional[ParsedRequest] = None
        self.error: Optional[_FramingError] = None

    @property
    def remainder(self) -> int:
        """Bytes received beyond the current request (pipelining)."""
        return len(self._buffer)

    @property
    def buffered_bytes(self) -> int:
        """Total bytes currently held for this connection (bound check)."""
        return len(self._buffer) + len(self._body)

    def feed(self, data: bytes) -> None:
        if self.state in ("complete", "error", "paused"):
            self._buffer.extend(data)
            return
        self._buffer.extend(data)
        self._advance()

    def begin_body(self) -> None:
        """Resume framing into the body after a ``needs_body`` verdict."""
        assert self.state == "paused" and self.request is not None
        length = self.request.content_length or 0
        self._body_remaining = length
        self.state = "body" if length > 0 else "complete"
        if self.state == "body":
            self._advance()

    def _fail(self, status: int, error_type: str, message: str) -> None:
        self.state = "error"
        self.error = _FramingError(status, error_type, message)
        self._buffer.clear()

    def _advance(self) -> None:
        while True:
            if self.state == "line":
                if self._buffer and not self.started:
                    # Tolerate (and skip) blank lines before the request
                    # line, per RFC 7230 §3.5.
                    while self._buffer[:2] == b"\r\n" or self._buffer[:1] == b"\n":
                        del self._buffer[:2 if self._buffer[:2] == b"\r\n" else 1]
                    if self._buffer:
                        self.started = True
                end = self._buffer.find(b"\n")
                if end < 0:
                    if len(self._buffer) > MAX_REQUEST_LINE_BYTES:
                        self._fail(414, "RequestLineTooLong",
                                   f"request line exceeds "
                                   f"{MAX_REQUEST_LINE_BYTES} bytes")
                    return
                line = bytes(self._buffer[:end]).rstrip(b"\r")
                del self._buffer[:end + 1]
                if not line and not self.started:
                    continue
                if len(line) > MAX_REQUEST_LINE_BYTES:
                    self._fail(414, "RequestLineTooLong",
                               f"request line exceeds "
                               f"{MAX_REQUEST_LINE_BYTES} bytes")
                    return
                self.started = True
                if not self._parse_request_line(line):
                    return
                self.state = "headers"
            elif self.state == "headers":
                end = self._buffer.find(b"\n")
                if end < 0:
                    self._header_pressure(len(self._buffer))
                    return
                line = bytes(self._buffer[:end]).rstrip(b"\r")
                del self._buffer[:end + 1]
                if not line:
                    self._finish_headers()
                    return
                if not self._parse_header_line(line):
                    return
            elif self.state == "body":
                take = min(self._body_remaining, len(self._buffer))
                if take:
                    self._body.extend(self._buffer[:take])
                    del self._buffer[:take]
                    self._body_remaining -= take
                if self._body_remaining == 0:
                    assert self.request is not None
                    self.request.body = bytes(self._body)
                    self.state = "complete"
                return
            else:  # paused / complete / error: nothing to do
                return

    def _parse_request_line(self, line: bytes) -> bool:
        try:
            text = line.decode("latin-1")
        except Exception:  # pragma: no cover - latin-1 cannot fail
            text = repr(line)
        parts = text.split()
        if len(parts) != 3:
            self._fail(400, "BadRequest",
                       f"malformed request line {text[:100]!r}")
            return False
        method, target, version = parts
        if not version.startswith("HTTP/") or version.count(".") != 1:
            self._fail(400, "BadRequest",
                       f"malformed HTTP version {version[:20]!r}")
            return False
        try:
            major, minor = version[5:].split(".")
            version_tuple = (int(major), int(minor))
        except ValueError:
            self._fail(400, "BadRequest",
                       f"malformed HTTP version {version[:20]!r}")
            return False
        if version_tuple[0] != 1:
            self._fail(505, "HTTPVersionNotSupported",
                       f"unsupported HTTP version {version[:20]!r}")
            return False
        self.request = ParsedRequest(method=method, target=target,
                                     version=version_tuple, headers=Headers())
        return True

    def _header_pressure(self, pending: int) -> None:
        if self._header_bytes + pending > MAX_HEADER_BYTES:
            self._fail(431, "HeadersTooLarge",
                       f"header section exceeds {MAX_HEADER_BYTES} bytes")

    def _parse_header_line(self, line: bytes) -> bool:
        assert self.request is not None
        self._header_bytes += len(line) + 2
        if self._header_bytes > MAX_HEADER_BYTES:
            self._fail(431, "HeadersTooLarge",
                       f"header section exceeds {MAX_HEADER_BYTES} bytes")
            return False
        if len(self.request.headers) >= MAX_HEADER_COUNT:
            self._fail(431, "HeadersTooLarge",
                       f"more than {MAX_HEADER_COUNT} header lines")
            return False
        text = line.decode("latin-1")
        if text[:1] in (" ", "\t"):
            # Obsolete line folding: continuation of the previous value.
            if self._last_header is None:
                self._fail(400, "BadRequest",
                           "continuation line before any header")
                return False
            self.request.headers.fold_into_last(self._last_header, text.strip())
            return True
        name, separator, value = text.partition(":")
        if not separator or not name or name != name.strip():
            self._fail(400, "BadRequest",
                       f"malformed header line {text[:100]!r}")
            return False
        self.request.headers.add(name, value.strip())
        self._last_header = name
        return True

    def _finish_headers(self) -> None:
        assert self.request is not None
        request = self.request
        if "Transfer-Encoding" in request.headers:
            request.chunked = True
        raw_length = request.headers.get("Content-Length")
        if raw_length is not None:
            try:
                request.content_length = int(raw_length)
            except ValueError:
                request.content_length = -1
            else:
                if request.content_length < 0:
                    request.content_length = -1
        self.state = "paused"


def _routing_error(route: str, method: str, known: set) -> Tuple[int, Dict[str, Any]]:
    if route in known:
        return 405, {"error": {
            "type": "MethodNotAllowed",
            "message": f"{method} is not supported on {route}",
        }}
    return 404, {"error": {
        "type": "NotFound",
        "message": f"unknown endpoint {route!r}; "
                   "see docs/server.md for the API reference",
    }}


class Dispatcher:
    """The transport-neutral request lifecycle over one bound app.

    ``dispatch`` runs on whatever thread the transport chose (a handler
    thread for the threaded server, a pool worker for the async one); it
    is fully thread-safe because all mutable state lives in the app/engine
    layers below, which already serve concurrent callers.
    """

    def __init__(self, app, *, quiet: bool = True,
                 fault_plan: Optional[FaultPlan] = None,
                 record_wire_bytes: Optional[Callable[[str, int], None]] = None):
        self.app = app
        self.quiet = quiet
        self.fault_plan = fault_plan
        self.record_wire_bytes = record_wire_bytes

    # -- routing tables (the app owns them; see ServerApp/ShardApp/CoordinatorApp) --

    def _post_routes(self) -> Dict[str, Callable[[Any], Dict[str, Any]]]:
        return self.app.post_routes()

    def _get_routes(self) -> Dict[str, Callable[[], Dict[str, Any]]]:
        return self.app.get_routes()

    def _get_param_routes(self) -> Dict[str, Callable[[Dict[str, str]], Any]]:
        table = getattr(self.app, "get_param_routes", None)
        return table() if table is not None else {}

    # -- the body decision (transport asks this at header-complete time) ----------------

    def needs_body(self, request: ParsedRequest) -> bool:
        """True when the body must be framed before dispatch can answer.

        Mirrors the pinned POST error ladder: a request that will die on
        routing (404/405), media type (415), transfer encoding (501),
        length (411) or size (413) is answered immediately — the threaded
        server has never waited for body bytes on those paths, and the
        fuzzer pins both transports to that behaviour.
        """
        if request.method != "POST":
            return False
        if request.route not in self._post_routes():
            return False
        content_type = request.headers.get("Content-Type", "application/json")
        if "json" not in content_type:
            return False
        if request.chunked:
            return False
        length = request.content_length
        if length is None or length < 0 or length > MAX_BODY_BYTES:
            return False
        return True

    # -- responses ----------------------------------------------------------------------

    def framing_response(self, error: _FramingError,
                         client: str = "-") -> WireResponse:
        """The (connection-closing) response to an unparseable request."""
        trace_id = Trace().trace_id
        response = self._json_response(error.status, {"error": {
            "type": error.error_type, "message": error.message,
        }}, close=True, trace_id=trace_id)
        self.access_log("-", "-", response.status, 0.0, client, trace_id)
        return response

    def pipelining_response(self, client: str = "-") -> WireResponse:
        """The rejection for pipelined requests (bytes beyond one request)."""
        trace_id = Trace().trace_id
        response = self._json_response(400, {"error": {
            "type": "BadRequest",
            "message": "request pipelining is not supported; await each "
                       "response before sending the next request",
        }}, close=True, trace_id=trace_id)
        self.access_log("-", "-", 400, 0.0, client, trace_id)
        return response

    def truncated_response(self, client: str = "-") -> WireResponse:
        """Best-effort answer when the peer closed mid-request."""
        trace_id = Trace().trace_id
        response = self._json_response(400, {"error": {
            "type": "BadRequest",
            "message": "connection closed before the request completed",
        }}, close=True, trace_id=trace_id)
        self.access_log("-", "-", 400, 0.0, client, trace_id)
        return response

    def shed_response(self, error: Exception, client: str = "-") -> WireResponse:
        """The 503 for a request shed at enqueue time (transport overload)."""
        trace_id = Trace().trace_id
        response = self._json_response(
            status_for(error), error_body(error),
            retry_after=getattr(error, "retry_after", None), trace_id=trace_id)
        self.access_log("-", "-", response.status, 0.0, client, trace_id)
        return response

    def dispatch(self, request: ParsedRequest, client: str = "-") -> WireResponse:
        """One request, end to end: trace, fault, route, handle, serialise."""
        trace = Trace(sanitize_trace_id(request.headers.get("X-Trace-Id")))
        started = time.perf_counter()
        route = request.route
        with activate(trace):
            with span("request", method=request.method, path=route):
                with request_context(
                    client_id=request.headers.get(CLIENT_ID_HEADER),
                    idempotency_key=request.headers.get(IDEMPOTENCY_KEY_HEADER),
                ):
                    response = self._respond(request, trace, route)
        response.trace_id = trace.trace_id
        if response.reset:
            self.access_log(request.method, route, -1, 0.0, client, trace.trace_id)
            return response
        if not request.keep_alive:
            response.close = True
        if self.record_wire_bytes is not None:
            self.record_wire_bytes("out", len(response.body))
        duration_ms = (time.perf_counter() - started) * 1000.0
        self.access_log(request.method, route, response.status, duration_ms,
                  client, trace.trace_id)
        return response

    # -- internals ----------------------------------------------------------------------

    def access_log(self, method: str, route: str, status: int,
                   duration_ms: float, client: str, trace_id: str) -> None:
        """Emit the structured access-log line (one per request served)."""
        _access_log.info(
            "%s %s -> %s", method, route, status,
            extra={
                "event": "http_request", "method": method, "path": route,
                "status": status, "duration_ms": duration_ms,
                "client": client, "trace_id": trace_id,
            },
        )

    def _respond(self, request: ParsedRequest, trace: Trace,
                 route: str) -> WireResponse:
        fault_response, drip = self._inject_fault(request, route)
        if fault_response is not None:
            return fault_response
        if request.method == "GET":
            response = self._respond_get(request, trace, route)
        elif request.method == "POST":
            response = self._respond_post(request, trace, route)
        else:
            response = self._json_response(501, {"error": {
                "type": "NotImplemented",
                "message": f"unsupported method {request.method!r}",
            }}, close=request.body_indicated)
        if drip is not None:
            response.drip = drip
        return response

    def _inject_fault(
        self, request: ParsedRequest, route: str,
    ) -> Tuple[Optional[WireResponse], Optional[FaultSpec]]:
        """Consult the fault plan (chaos runs only).

        Returns ``(response, drip)``: a non-None response means the fault
        fully handled the request (the app must not run).  Latency faults
        sleep here and proceed; slow-drip faults return the spec for the
        transport to pace the body with; ``http_5xx`` answers with the
        injected status; ``error`` resets the connection without a
        response.
        """
        if self.fault_plan is None:
            return None, None
        fault = self.fault_plan.decide("handle", route)
        if fault is None:
            return None, None
        if fault.kind == "latency":
            time.sleep(fault.latency)
            return None, None
        if fault.kind == "slow_drip":
            return None, fault
        if fault.kind == "http_5xx":
            return self._json_response(fault.status, {"error": {
                "type": "InjectedFault",
                "message": f"injected HTTP {fault.status} "
                           f"(fault plan, {route})",
            }}, close=request.body_indicated), None
        # "error": a mid-request connection reset — the transport shuts the
        # socket without a response, exactly what a crashed peer causes.
        return WireResponse(status=-1, reset=True, close=True), None

    def _respond_get(self, request: ParsedRequest, trace: Trace,
                     route: str) -> WireResponse:
        # GETs never read a body; if a client sent one anyway, the unread
        # bytes must not be parsed as the next request on this connection.
        close = request.body_indicated
        param_handler = self._get_param_routes().get(route)
        if param_handler is not None:
            try:
                with span("handle", endpoint=route):
                    payload = param_handler(query_params(request.target))
            except Exception as error:  # noqa: BLE001 - every failure becomes a body
                return self._error_response(error, close=close)
            if isinstance(payload, tuple):
                content_type, text = payload
                return self._text_response(200, text, content_type, close=close)
            return self._json_response(
                200, self._attach_debug(payload, request, trace), close=close)
        handler = self._get_routes().get(route)
        if handler is None:
            status, payload = _routing_error(route, request.method,
                                             self._known_routes())
            return self._json_response(status, payload, close=close)
        requested_format = query_params(request.target).get("format")
        if route == "/v1/metrics" and requested_format not in (None, "json"):
            return self._metrics_exposition(requested_format, close=close)
        try:
            with span("handle", endpoint=route):
                payload = handler()
        except Exception as error:  # noqa: BLE001 - every failure becomes a body
            return self._error_response(error, close=close)
        return self._json_response(
            200, self._attach_debug(payload, request, trace), close=close)

    def _respond_post(self, request: ParsedRequest, trace: Trace,
                      route: str) -> WireResponse:
        handler = self._post_routes().get(route)
        if handler is None:
            status, payload = _routing_error(route, request.method,
                                             self._known_routes())
            return self._json_response(status, payload,
                                       close=request.body_indicated)
        content_type = request.headers.get("Content-Type", "application/json")
        if "json" not in content_type:
            return self._json_response(415, {"error": {
                "type": "UnsupportedMediaType",
                "message": f"expected application/json, got {content_type!r}",
            }}, close=request.body_indicated)
        # Bodies whose framing we cannot (chunked) or will not (missing
        # length) read would desync the keep-alive connection — the unread
        # bytes would be parsed as the next request line — so those error
        # paths also close the connection.
        if request.chunked:
            return self._json_response(501, {"error": {
                "type": "NotImplemented",
                "message": "chunked transfer encoding is not supported; "
                           "send a Content-Length",
            }}, close=True)
        length = request.content_length
        if length is None or length < 0:
            return self._json_response(411, {"error": {
                "type": "LengthRequired",
                "message": "a valid Content-Length header is required",
            }}, close=True)
        if length > MAX_BODY_BYTES:
            return self._json_response(413, {"error": {
                "type": "PayloadTooLarge",
                "message": f"request body exceeds {MAX_BODY_BYTES} bytes",
            }}, close=True)
        raw = request.body if request.body is not None else b""
        if self.record_wire_bytes is not None:
            self.record_wire_bytes("in", len(raw))
        with span("read_body"):
            try:
                body = json.loads(raw or b"null")
            except json.JSONDecodeError as error:
                return self._json_response(400, {"error": {
                    "type": "InvalidJSON", "message": str(error),
                }})
        try:
            with span("handle", endpoint=route):
                payload = handler(body)
        except Exception as error:  # noqa: BLE001 - every failure becomes a body
            return self._error_response(error)
        return self._json_response(
            200, self._attach_debug(payload, request, trace))

    def _metrics_exposition(self, requested_format: str, *,
                            close: bool) -> WireResponse:
        renderer = getattr(self.app, "metrics_prometheus", None)
        if requested_format != "prometheus" or renderer is None:
            return self._json_response(400, {"error": {
                "type": "QueryError",
                "message": f"unknown metrics format {requested_format!r}; "
                           "expected 'json' or 'prometheus'",
            }}, close=close)
        try:
            with span("handle", endpoint="/v1/metrics"):
                text = renderer()
        except Exception as error:  # noqa: BLE001 - every failure becomes a body
            return self._error_response(error, close=close)
        return self._text_response(200, text, obs_prometheus.CONTENT_TYPE,
                                   close=close)

    def _known_routes(self) -> set:
        return (set(self._post_routes()) | set(self._get_routes())
                | set(self._get_param_routes()))

    def _debug_trace_requested(self, request: ParsedRequest) -> bool:
        value = request.headers.get("X-Debug-Trace", "") or ""
        return value.strip().lower() in _DEBUG_TRACE_VALUES

    def _attach_debug(self, payload: Any, request: ParsedRequest,
                      trace: Trace) -> Any:
        """Add the ``debug.trace`` section when the client opted in.

        The span tree is rendered here, before serialisation, so the
        ``serialize`` span of *this* request necessarily reports itself
        in-progress; its cost is visible as the request/handle gap instead.
        """
        if self._debug_trace_requested(request) and isinstance(payload, dict):
            return {**payload, "debug": {"trace": trace.to_dict()}}
        return payload

    def _error_response(self, error: Exception, *,
                        close: bool = False) -> WireResponse:
        """One failed request's response: status, error body, Retry-After.

        Admission rejections (and anything else carrying a ``retry_after``
        attribute) get the standard ``Retry-After`` header so well-behaved
        clients back off instead of hammering an overloaded server.
        """
        return self._json_response(status_for(error), error_body(error),
                                   retry_after=getattr(error, "retry_after", None),
                                   close=close)

    def _json_response(self, status: int, payload: Any, *,
                       retry_after: Optional[float] = None,
                       close: bool = False,
                       trace_id: Optional[str] = None) -> WireResponse:
        with span("serialize"):
            body = json.dumps(payload).encode("utf-8")
        return WireResponse(status=status, body=body,
                            content_type="application/json",
                            retry_after=retry_after, close=close,
                            trace_id=trace_id)

    def _text_response(self, status: int, text: str, content_type: str, *,
                       close: bool = False) -> WireResponse:
        with span("serialize"):
            body = text.encode("utf-8")
        return WireResponse(status=status, body=body,
                            content_type=content_type, close=close)


def shut_socket(sock: socket.socket) -> None:
    """Best-effort ``SHUT_RDWR`` (the peer may already be gone)."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
