"""Sharded throughput — coordinator QPS/latency vs shard count, vs one server.

The real-deployment question of the sharded story: what does scattering
partition scans across per-partition HTTP shard servers cost (an extra
network hop per partition per query), and what does it buy (parallel leaf
scans, per-partition processes)?  For each shard count this benchmark

1. builds the requirements corpus index with ``max_partitions`` equal to
   the shard count and checkpoints it,
2. boots a **real fleet**: one ``python -m repro.server --shard`` process
   per data-bearing partition plus one ``python -m repro.coordinator``
   process (the acceptance deployment, not an in-process stand-in),
3. replays the same mixed k-NN/range wire workload against the coordinator
   and against a single-process server over the same index (the baseline),
   through :func:`~repro.workloads.http_client.generate_load`.

Shape expectations encoded below: the coordinator's answers carry exactly
the baseline's distances, and every sweep point completes the workload.
Absolute numbers depend on the host; the JSON twin
(``BENCH_sharded_throughput.json``) records the trajectory in git.

Quick mode (``SHARDED_BENCH_QUICK=1``, used by the CI perf-smoke job)
shrinks the corpus, the workload and the shard-count sweep so the file
doubles as a smoke test of the whole fleet — subprocess boot included.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.coordinator import launch_coordinator, launch_shards, shutdown_processes
from repro.evaluation import Experiment
from repro.ingest import IngestingIndex
from repro.requirements import (GeneratorConfig, RequirementsGenerator,
                                build_requirement_distance,
                                build_requirement_vocabularies)
from repro.server import ServerApp, SemTreeServer
from repro.server.bootstrap import vocabulary_hints
from repro.workloads import ServerClient, generate_load, query_payloads

from .conftest import write_report

QUICK = bool(os.environ.get("SHARDED_BENCH_QUICK"))

SHARD_COUNTS: Tuple[int, ...] = (2,) if QUICK else (2, 4, 8)
REQUEST_COUNT = 48 if QUICK else 384
CLIENT_THREADS = 4


def _build_corpus_index(max_partitions: int) -> Tuple[SemTreeIndex, List]:
    config = GeneratorConfig(
        documents=4 if QUICK else 8, requirements_per_document=6,
        sentences_per_requirement=3, actors=16, inconsistency_rate=0.2,
        restatement_rate=0.2, seed=29,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=max_partitions,
        partition_capacity=max(16, 192 // max_partitions),
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    triples = list(dict.fromkeys(corpus.all_triples()))
    return index, triples


def _checkpoint(index: SemTreeIndex, triples, tmp_path, tag: str):
    actors, parameters = vocabulary_hints(triples)
    live = IngestingIndex(
        index, tmp_path / f"wal-{tag}.jsonl",
        vocabulary_hints={"actors": actors, "parameters": parameters},
    )
    snapshot = tmp_path / f"snapshot-{tag}.json"
    live.checkpoint(snapshot)
    live.close()
    return snapshot


def _measure_fleet(snapshot, index, payloads) -> Dict[str, float]:
    """QPS/latency of a real coordinator + shard subprocess fleet."""
    data_partitions = [
        partition.partition_id for partition in index.tree.partitions
        if partition.point_count > 0
    ]
    fleet = []
    try:
        shards = launch_shards(snapshot, data_partitions)
        fleet.extend(shards)
        coordinator = launch_coordinator(
            snapshot, {shard.partition_id: shard.url for shard in shards}
        )
        fleet.append(coordinator)
        summary = generate_load(coordinator.url, payloads, threads=CLIENT_THREADS)
        summary["shard_processes"] = float(len(shards))
        return summary
    finally:
        shutdown_processes(fleet)


def _measure_single(index, tmp_path, tag: str, payloads) -> Dict[str, float]:
    """The baseline: the same index behind one in-process full server."""
    live = IngestingIndex(index, tmp_path / f"baseline-wal-{tag}.jsonl")
    app = ServerApp(live, workers=4, background_compaction=False)
    with SemTreeServer(app).serve_background() as server:
        summary = generate_load(server.url, payloads, threads=CLIENT_THREADS)
    summary["shard_processes"] = 0.0
    return summary


def _assert_same_answers(snapshot, index, payloads) -> None:
    """The fleet's distances must equal the single server's, payload by payload."""
    data_partitions = [
        partition.partition_id for partition in index.tree.partitions
        if partition.point_count > 0
    ]
    fleet = []
    try:
        shards = launch_shards(snapshot, data_partitions)
        fleet.extend(shards)
        coordinator = launch_coordinator(
            snapshot, {shard.partition_id: shard.url for shard in shards}
        )
        fleet.append(coordinator)
        live = IngestingIndex(index, snapshot.parent / "oracle-wal.jsonl")
        app = ServerApp(live, workers=2, background_compaction=False)
        with SemTreeServer(app).serve_background() as baseline:
            sharded_client = ServerClient(coordinator.url)
            baseline_client = ServerClient(baseline.url)
            for path, body in payloads[:16]:
                sharded = sharded_client.request("POST", path, body)
                single = baseline_client.request("POST", path, body)
                assert sharded["error"] is None and single["error"] is None
                got = [round(m["distance"], 9) for m in sharded["matches"]]
                want = [round(m["distance"], 9) for m in single["matches"]]
                assert got == want, (path, body, got, want)
    finally:
        shutdown_processes(fleet)


# -- pytest-benchmark case ----------------------------------------------------------------

@pytest.mark.benchmark(group="sharded-throughput")
def test_fleet_round_trips(benchmark, tmp_path):
    index, triples = _build_corpus_index(SHARD_COUNTS[0])
    snapshot = _checkpoint(index, triples, tmp_path, "bench")
    payloads = query_payloads(triples, REQUEST_COUNT, k=3, radius=0.15,
                              repeat_fraction=0.3, seed=17)
    data_partitions = [
        partition.partition_id for partition in index.tree.partitions
        if partition.point_count > 0
    ]
    fleet = []
    try:
        shards = launch_shards(snapshot, data_partitions)
        fleet.extend(shards)
        coordinator = launch_coordinator(
            snapshot, {shard.partition_id: shard.url for shard in shards}
        )
        fleet.append(coordinator)
        benchmark.pedantic(
            lambda: generate_load(coordinator.url, payloads, threads=CLIENT_THREADS),
            rounds=2 if QUICK else 3, iterations=1,
        )
    finally:
        shutdown_processes(fleet)


# -- the report itself --------------------------------------------------------------------

def test_report_sharded_throughput(results_dir, tmp_path):
    experiment = Experiment(
        experiment_id="sharded_throughput",
        description="Scatter-gather deployment: coordinator + per-partition "
                    f"shard processes vs one server, over {REQUEST_COUNT} mixed "
                    "k-NN/range requests, vs shard count",
        swept_parameter="shard_count",
    )

    prepared = {}
    for shard_count in SHARD_COUNTS:
        index, triples = _build_corpus_index(shard_count)
        snapshot = _checkpoint(index, triples, tmp_path, f"n{shard_count}")
        payloads = query_payloads(triples, REQUEST_COUNT, k=3, radius=0.15,
                                  repeat_fraction=0.3, seed=17)
        prepared[shard_count] = (index, snapshot, payloads)

    # Correctness first: the fleet answers exactly like the single server.
    index, snapshot, payloads = prepared[SHARD_COUNTS[0]]
    _assert_same_answers(snapshot, index, payloads)

    experiment.run_sweep(
        "coordinator", SHARD_COUNTS,
        lambda count: _measure_fleet(prepared[int(count)][1],
                                     prepared[int(count)][0],
                                     prepared[int(count)][2]),
    )
    experiment.run_sweep(
        "single_server", SHARD_COUNTS,
        lambda count: _measure_single(prepared[int(count)][0], tmp_path,
                                      f"n{int(count)}",
                                      prepared[int(count)][2]),
    )

    for series_name in ("coordinator", "single_server"):
        series = experiment.series[series_name]
        assert all(count == REQUEST_COUNT for count in series.values("requests"))
        assert all(qps > 0 for qps in series.values("qps"))

    write_report(results_dir, experiment,
                 ["qps", "latency_ms_p50", "latency_ms_p99", "shard_processes"])
