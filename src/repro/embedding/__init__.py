"""FastMap embedding substrate: the FastMap algorithm, triple embedding, and
embedding-quality diagnostics."""

from repro.embedding.fastmap import FastMap, FastMapSpace, PivotPair
from repro.embedding.quality import distortion, neighbourhood_overlap, sample_pairs, stress
from repro.embedding.triple_embedder import TripleEmbedder

__all__ = [
    "FastMap",
    "FastMapSpace",
    "PivotPair",
    "TripleEmbedder",
    "stress",
    "distortion",
    "neighbourhood_overlap",
    "sample_pairs",
]
