"""Query workloads for the efficiency experiments.

The paper times k-nearest queries (K = 3) and range queries while varying
the number of indexed points and partitions.  These helpers generate
reproducible batches of query points, either uniformly over the data space
or by perturbing existing data points (so queries land in populated
regions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

from repro.core.point import LabeledPoint
from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import at module load
    from repro.rdf.triple import Triple
    from repro.service.planner import QuerySpec

__all__ = ["QueryWorkload", "uniform_queries", "perturbed_queries", "mixed_query_specs"]


@dataclass(frozen=True, slots=True)
class QueryWorkload:
    """A reproducible batch of query points plus the query parameters.

    Attributes
    ----------
    queries:
        The query points.
    k:
        ``K`` for k-nearest batches (the paper's default is 3).
    radius:
        ``D`` for range batches.
    """

    queries: tuple[LabeledPoint, ...]
    k: int = 3
    radius: float = 0.1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise WorkloadError("k must be >= 1")
        if self.radius < 0:
            raise WorkloadError("radius must be non-negative")
        if not self.queries:
            raise WorkloadError("a query workload needs at least one query point")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def uniform_queries(count: int, dimensions: int, *, k: int = 3, radius: float = 0.1,
                    seed: int = 1) -> QueryWorkload:
    """Query points drawn uniformly from the unit cube."""
    if count < 1:
        raise WorkloadError("count must be >= 1")
    rng = random.Random(seed)
    queries = tuple(
        LabeledPoint.of([rng.random() for _ in range(dimensions)], label=f"q{index}")
        for index in range(count)
    )
    return QueryWorkload(queries=queries, k=k, radius=radius)


def perturbed_queries(data: Sequence[LabeledPoint], count: int, *, jitter: float = 0.02,
                      k: int = 3, radius: float = 0.1, seed: int = 1) -> QueryWorkload:
    """Query points obtained by jittering randomly chosen data points.

    Guarantees that queries fall inside populated regions, which is the
    regime of the paper's case study (query triples are perturbations of
    stored triples).
    """
    if not data:
        raise WorkloadError("cannot derive queries from an empty data set")
    if count < 1:
        raise WorkloadError("count must be >= 1")
    rng = random.Random(seed)
    queries = []
    for index in range(count):
        base = data[rng.randrange(len(data))]
        coordinates = [value + rng.uniform(-jitter, jitter) for value in base.coordinates]
        queries.append(LabeledPoint.of(coordinates, label=f"q{index}"))
    return QueryWorkload(queries=tuple(queries), k=k, radius=radius)


def mixed_query_specs(triples: Sequence["Triple"], count: int, *, k: int = 3,
                      radius: float = 0.1, knn_fraction: float = 0.6,
                      repeat_fraction: float = 0.3, seed: int = 1) -> List["QuerySpec"]:
    """A reproducible batch of mixed k-NN / range query specs for the serving layer.

    Query triples are drawn from the stored set (the paper's case-study
    regime); ``knn_fraction`` of the batch are k-NN queries, the rest range
    queries, and with probability ``repeat_fraction`` a query repeats an
    earlier spec of the batch — which is what gives a result cache something
    to hit.
    """
    from repro.service.planner import QuerySpec  # deferred: keeps workloads importable alone

    if not triples:
        raise WorkloadError("cannot derive query specs from an empty triple set")
    if count < 1:
        raise WorkloadError("count must be >= 1")
    if not 0.0 <= knn_fraction <= 1.0:
        raise WorkloadError("knn_fraction must be in [0, 1]")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise WorkloadError("repeat_fraction must be in [0, 1]")
    rng = random.Random(seed)
    specs: List["QuerySpec"] = []
    for _ in range(count):
        if specs and rng.random() < repeat_fraction:
            specs.append(specs[rng.randrange(len(specs))])
            continue
        triple = triples[rng.randrange(len(triples))]
        if rng.random() < knn_fraction:
            specs.append(QuerySpec.k_nearest(triple, k))
        else:
            specs.append(QuerySpec.range_query(triple, radius))
    return specs
