"""Tests for the simulated compute node."""

import pytest

from repro.cluster import ComputeNode
from repro.errors import ClusterError


class TestConstruction:
    def test_requires_identifier(self):
        with pytest.raises(ClusterError):
            ComputeNode(node_id="")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ClusterError):
            ComputeNode(node_id="n0", storage_capacity=0)

    def test_invalid_processing_cost_rejected(self):
        with pytest.raises(ClusterError):
            ComputeNode(node_id="n0", processing_cost=0.0)


class TestHosting:
    def test_host_and_drop_partition(self):
        node = ComputeNode(node_id="n0")
        node.host_partition("P0")
        assert node.hosts("P0")
        assert node.partitions == ["P0"]
        node.drop_partition("P0")
        assert not node.hosts("P0")

    def test_record_points_requires_hosted_partition(self):
        node = ComputeNode(node_id="n0")
        with pytest.raises(ClusterError):
            node.record_points("P0", 1)

    def test_record_points_accumulates(self):
        node = ComputeNode(node_id="n0")
        node.host_partition("P0")
        node.host_partition("P1")
        node.record_points("P0", 10)
        node.record_points("P1", 5)
        node.record_points("P0", -3)
        assert node.stored_points == 12

    def test_negative_stored_points_rejected(self):
        node = ComputeNode(node_id="n0")
        node.host_partition("P0")
        with pytest.raises(ClusterError):
            node.record_points("P0", -1)

    def test_dropping_partition_releases_its_points(self):
        node = ComputeNode(node_id="n0", storage_capacity=10)
        node.host_partition("P0")
        node.record_points("P0", 8)
        node.drop_partition("P0")
        assert node.stored_points == 0


class TestCapacity:
    def test_unlimited_capacity(self):
        node = ComputeNode(node_id="n0")
        assert node.has_room_for(10**9)
        assert node.used_fraction == 0.0

    def test_capacity_enforced(self):
        node = ComputeNode(node_id="n0", storage_capacity=10)
        node.host_partition("P0")
        node.record_points("P0", 8)
        assert node.has_room_for(2)
        assert not node.has_room_for(3)
        assert node.used_fraction == pytest.approx(0.8)
