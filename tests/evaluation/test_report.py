"""Tests for the plain-text report formatting."""

from repro.evaluation import Experiment, format_experiment, format_key_values, format_series_table


def build_experiment() -> Experiment:
    experiment = Experiment("fig3", "Index building time", "points")
    for x, balanced, partitions3 in [(1000, 1.0, 0.8), (2000, 2.1, 1.5), (4000, 4.4, 2.9)]:
        experiment.record("1 partition (balanced)", x, time=balanced)
        experiment.record("3 partitions", x, time=partitions3)
    return experiment


class TestSeriesTable:
    def test_contains_header_and_all_rows(self):
        table = format_series_table(build_experiment(), "time")
        lines = table.splitlines()
        assert "points" in lines[0]
        assert "1 partition (balanced)" in lines[0]
        assert "3 partitions" in lines[0]
        assert len(lines) == 2 + 3  # header, separator, one row per swept value

    def test_missing_observations_render_as_dash(self):
        experiment = build_experiment()
        experiment.record("5 partitions", 4000, time=2.0)  # only one x value
        table = format_series_table(experiment, "time")
        assert "-" in table.splitlines()[2]

    def test_custom_x_label(self):
        table = format_series_table(build_experiment(), "time", x_label="N")
        assert table.splitlines()[0].lstrip().startswith("N")


class TestFormatExperiment:
    def test_header_and_metric_sections(self):
        text = format_experiment(build_experiment(), ["time"])
        assert text.startswith("== fig3: Index building time ==")
        assert "-- metric: time --" in text


class TestKeyValues:
    def test_sorted_and_aligned(self):
        text = format_key_values("Effectiveness K=3", {"precision": 0.4, "recall": 0.9})
        lines = text.splitlines()
        assert lines[0] == "== Effectiveness K=3 =="
        assert lines[1].startswith("precision")
        assert lines[2].startswith("recall")

    def test_large_numbers_use_scientific_notation(self):
        text = format_key_values("t", {"big": 123456.0})
        assert "e+" in text
