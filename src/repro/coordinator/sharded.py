"""The sharded index: scatter-gather serving over a partition transport.

:class:`ShardedIndex` is the coordinator's replacement for a local
:class:`~repro.core.semtree.SemTreeIndex`: it implements the same serving
protocol (:class:`~repro.service.planner.ServableIndex` — ``generation`` /
``embed_query`` / ``search_k_nearest`` / ``search_range`` /
``overlay_matches``), so a :class:`~repro.service.engine.QueryEngine` and
therefore the whole HTTP front end serve it unchanged — result caching,
batching, deadlines and metrics included.

What changes is *where the tree search runs*.  The coordinator keeps the
full snapshot in memory for the parts only it needs — the FastMap space
(query embedding), the routing structure (partition pruning) and the
provenance map (match dressing) — but every leaf scan is delegated through
a :class:`~repro.cluster.transport.PartitionTransport`:

* **k-NN**: every data-bearing partition is scanned concurrently (the
  guided backward visit cannot be replicated without sequential round
  trips; full fan-out buys parallelism at the price of scanning partitions
  the sequential search would have pruned).  The gather folds per-partition
  top-k lists through the paper's :class:`~repro.core.knn.ResultSet` — the
  same radius-tightening merge the sequential search applies, in partition
  order — so the merged top-k is exactly the sequential result.
* **range**: the routing tree prunes first — only partitions the
  sequential navigation rule (descend both children when
  ``|P[SI] - Sv| < D``) would enter are scanned — then results are merged
  and sorted by distance.

Per-shard latency and fan-out counters are kept per scan and surfaced
through :meth:`ShardedIndex.statistics` into the coordinator's
``/v1/metrics``.

Failure semantics: by default a scan that fails (shard down, timeout,
topology mismatch) fails the *query* with a structured
:class:`~repro.errors.ShardError` naming every failed partition and every
partition that had already answered — never a *silent* partial answer,
which would violate the exactness contract.  Queries may opt in to
graceful degradation (``allow_partial=True``): the gather then folds the
surviving partitions' scans and attaches a structured ``degraded`` marker
(partitions answered / partitions missed with reasons) to the outcome, so
the caller knows exactly how much of the fan-out is reflected in the
answer.  A degraded answer is still exact *over the partitions that
answered*; only when every targeted partition fails does a partial query
raise.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.transport import PartitionScan, PartitionTransport
from repro.core.cost import SearchCost
from repro.core.distributed import range_children
from repro.core.knn import ResultSet
from repro.core.node import Node, RemoteChild
from repro.core.point import LabeledPoint
from repro.core.semtree import SearchOutcome, SemanticMatch, SemTreeIndex
from repro.errors import QueryError, ShardError
from repro.obs.tracing import annotate_span, capture_context, resume_context, span
from repro.rdf.triple import Triple
from repro.service.metrics import percentile

__all__ = ["ShardedIndex"]


#: Latency samples retained per shard for the percentile gauges; bounded so
#: a long-running coordinator's metrics stay O(1) in memory and the
#: percentile sort stays cheap (same pattern as ServingMetrics).
LATENCY_SAMPLE_LIMIT = 4096


class _ShardStats:
    """Per-shard observability: scan counts, failures, latency samples."""

    __slots__ = ("scans", "failures", "latencies")

    def __init__(self) -> None:
        self.scans = 0
        self.failures = 0
        self.latencies: deque = deque(maxlen=LATENCY_SAMPLE_LIMIT)

    def to_dict(self) -> Dict[str, object]:
        samples = list(self.latencies)
        return {
            "scans": self.scans,
            "failures": self.failures,
            "latency_ms": {
                "mean": (sum(samples) / len(samples) * 1000.0) if samples else 0.0,
                "p50": percentile(samples, 0.50) * 1000.0 if samples else 0.0,
                "p99": percentile(samples, 0.99) * 1000.0 if samples else 0.0,
                "max": max(samples) * 1000.0 if samples else 0.0,
            },
        }


class ShardedIndex:
    """Scatter-gather serving over one snapshot and a partition transport.

    Parameters
    ----------
    base:
        The coordinator's in-memory copy of the snapshot (embedding space,
        routing tree, provenance).  It must be the same snapshot the shards
        booted from: the exactness guarantee is "identical to running the
        sequential search over ``base``".
    transport:
        How partition scans reach the data — HTTP shard servers in
        production (:class:`~repro.coordinator.transport.HttpShardTransport`),
        the simulated cluster in tests
        (:class:`~repro.cluster.transport.SimulatedClusterTransport`).
    scatter_workers:
        Concurrent scans in flight across all queries.  Thread-pool scatter:
        each query's scans are submitted together and gathered in partition
        order.
    """

    def __init__(self, base: SemTreeIndex, transport: PartitionTransport, *,
                 scatter_workers: int = 8):
        if scatter_workers < 1:
            raise QueryError(f"scatter_workers must be >= 1, got {scatter_workers}")
        self.base = base
        self.transport = transport
        self._data_partitions = tuple(
            partition.partition_id for partition in base.tree.partitions
            if partition.point_count > 0
        )
        missing = sorted(set(self._data_partitions) - set(transport.partition_ids()))
        if missing:
            raise ShardError(
                "the transport does not cover every data-bearing partition "
                f"of the snapshot; missing: {', '.join(missing)}",
                failed={partition_id: "not in topology" for partition_id in missing},
            )
        self._executor = ThreadPoolExecutor(
            max_workers=scatter_workers, thread_name_prefix="semtree-scatter"
        )
        self._stats_lock = threading.Lock()
        self._shard_stats: Dict[str, _ShardStats] = {}
        self._queries = 0
        self._scans = 0
        self._degraded = 0
        self._roundtrip_histogram = None
        self._closed = False

    # -- the serving protocol (ServableIndex) -------------------------------------------

    @property
    def generation(self) -> int:
        """The snapshot's generation; static — the sharded view is read-only."""
        return self.base.generation

    def embed_query(self, triple: Triple) -> LabeledPoint:
        """Project a query triple with the coordinator's FastMap space."""
        return self.base.embed_query(triple)

    #: Duck-typed capability flag the query engine checks before passing
    #: ``allow_partial`` through — a local SemTreeIndex has no partitions to
    #: lose, so the flag is a harmless no-op there.
    supports_partial = True

    def search_k_nearest(self, point: LabeledPoint, k: int, *,
                         allow_partial: bool = False) -> SearchOutcome:
        """Scatter a k-NN scan to every data partition; gather through ``Rs``.

        The gather offers every per-partition candidate to one bounded
        :class:`ResultSet` in partition order — each insertion tightens the
        radius exactly like the sequential merge, and tie-breaking keeps the
        earliest offer, mirroring the sequential first-come-first-retained
        rule.
        """
        targets = self._data_partitions
        scans, degraded = self._scatter(
            targets, lambda pid: self.transport.scan_knn(pid, point, k),
            allow_partial=allow_partial,
        )
        with span("gather", partitions=len(targets)):
            results = ResultSet(k)
            nodes = points = 0
            total_cost = SearchCost()
            for scan in scans:
                nodes += scan.nodes_visited
                points += scan.points_examined
                total_cost.add(scan.cost)
                for neighbour in scan.neighbours:
                    results.offer(neighbour.point, neighbour.distance)
            matches = tuple(self.base.to_match(n) for n in results.neighbours())
        return SearchOutcome(
            matches=matches,
            visited_partitions=tuple(scan.partition_id for scan in scans),
            nodes_visited=nodes,
            points_examined=points,
            generation=self.base.generation,
            cost=total_cost,
            degraded=degraded,
        )

    def search_range(self, point: LabeledPoint, radius: float, *,
                     allow_partial: bool = False) -> SearchOutcome:
        """Prune partitions with the routing tree, scatter, merge and sort."""
        targets = self._range_targets(point, radius)
        scans, degraded = self._scatter(
            targets, lambda pid: self.transport.scan_range(pid, point, radius),
            allow_partial=allow_partial,
        )
        with span("gather", partitions=len(targets)):
            gathered = []
            nodes = points = 0
            total_cost = SearchCost()
            for scan in scans:
                nodes += scan.nodes_visited
                points += scan.points_examined
                total_cost.add(scan.cost)
                gathered.extend(scan.neighbours)
            gathered.sort(key=lambda neighbour: neighbour.distance)
            matches = tuple(self.base.to_match(n) for n in gathered)
        return SearchOutcome(
            matches=matches,
            visited_partitions=tuple(scan.partition_id for scan in scans),
            nodes_visited=nodes,
            points_examined=points,
            generation=self.base.generation,
            cost=total_cost,
            degraded=degraded,
        )

    def overlay_matches(self, kind: str, point: LabeledPoint, parameter: float,
                        matches: Tuple[SemanticMatch, ...],
                        generation: int) -> Optional[Tuple[SemanticMatch, ...]]:
        """The sharded view is read-only: matches are always current."""
        return tuple(matches)

    # -- scatter ------------------------------------------------------------------------

    def _scatter(self, targets: Tuple[str, ...],
                 scan: Callable[[str], PartitionScan], *,
                 allow_partial: bool = False,
                 ) -> Tuple[List[PartitionScan], Optional[Dict[str, object]]]:
        """Run one scan per target concurrently; gather in partition order.

        Returns the surviving scans plus the ``degraded`` marker (``None``
        when every partition answered).  Fail-loud by default: any failed
        partition fails the query with a :class:`ShardError` whose details
        name the failed and the completed partitions.  With
        ``allow_partial`` the failures are folded into the marker instead —
        unless *every* targeted partition failed, in which case there is no
        answer to degrade to and the error propagates regardless.
        """
        def traced_scan(partition_id: str) -> PartitionScan:
            # Scatter-pool threads carry the submitting request's trace, so
            # per-shard round trips land in the right span tree.
            with resume_context(trace_context):
                with span("shard_scan", partition=partition_id):
                    result = scan(partition_id)
                    annotate_span(cost=result.cost.to_dict())
                    return result

        with span("scatter", partitions=len(targets)):
            trace_context = capture_context()
            futures = {
                partition_id: self._executor.submit(traced_scan, partition_id)
                for partition_id in targets
            }
            scans: Dict[str, PartitionScan] = {}
            failed: Dict[str, str] = {}
            for partition_id in targets:
                try:
                    scans[partition_id] = futures[partition_id].result()
                except ShardError as error:
                    failed[partition_id] = str(error)
                except Exception as error:  # noqa: BLE001 - reported per partition
                    failed[partition_id] = f"{type(error).__name__}: {error}"
        degraded_query = bool(failed) and allow_partial and bool(scans)
        self._record(scans, failed, degraded=degraded_query)
        if failed and not degraded_query:
            completed = sorted(scans)
            raise ShardError(
                f"{len(failed)} of {len(targets)} partition scans failed "
                f"[{'; '.join(f'{pid}: {reason}' for pid, reason in sorted(failed.items()))}]"
                f" (completed: {', '.join(completed) or 'none'}); the query "
                "cannot be answered exactly without them",
                failed=failed, completed=completed,
            )
        ordered = [scans[partition_id] for partition_id in targets
                   if partition_id in scans]
        if not degraded_query:
            return ordered, None
        return ordered, {
            "answered": sorted(scans),
            "missed": {pid: failed[pid] for pid in sorted(failed)},
        }

    def _record(self, scans: Dict[str, PartitionScan], failed: Dict[str, str],
                *, degraded: bool = False) -> None:
        with self._stats_lock:
            self._queries += 1
            self._scans += len(scans) + len(failed)
            if degraded:
                self._degraded += 1
            for partition_id, scan in scans.items():
                stats = self._shard_stats.setdefault(partition_id, _ShardStats())
                stats.scans += 1
                stats.latencies.append(scan.elapsed_seconds)
            for partition_id in failed:
                stats = self._shard_stats.setdefault(partition_id, _ShardStats())
                stats.failures += 1
            histogram = self._roundtrip_histogram
        if histogram is not None:
            for partition_id, scan in scans.items():
                histogram.labels(partition_id).observe(scan.elapsed_seconds)

    # -- exposition ---------------------------------------------------------------------

    def bind_registry(self, registry) -> None:
        """Mirror the scatter-gather counters into a Prometheus registry.

        Same contract as :meth:`ServiceMetrics.bind_registry`: scrape-time
        callbacks read the locked state behind :meth:`statistics`; per-shard
        round trips additionally feed a labelled histogram.
        """
        def locked(attribute: str):
            def read() -> float:
                with self._stats_lock:
                    return float(getattr(self, attribute))
            return read

        registry.gauge(
            "repro_shard_partitions", "Data-bearing partitions behind the coordinator.",
        ).set(float(len(self._data_partitions)))
        registry.counter(
            "repro_scatter_queries_total", "Queries scattered across the shard fleet.",
        ).set_function(locked("_queries"))
        registry.counter(
            "repro_shard_scans_total", "Partition scans issued, by partition.",
            ("partition",),
        ).set_callback(lambda: self._per_shard_totals("scans"))
        registry.counter(
            "repro_shard_scan_failures_total", "Failed partition scans, by partition.",
            ("partition",),
        ).set_callback(lambda: self._per_shard_totals("failures"))
        registry.counter(
            "repro_degraded_queries_total",
            "Queries answered partially (allow_partial) after shard failures.",
        ).set_function(locked("_degraded"))
        with self._stats_lock:
            self._roundtrip_histogram = registry.histogram(
                "repro_shard_roundtrip_seconds",
                "Coordinator-observed shard scan round trip, by partition.",
                ("partition",),
            )
        client_stats = getattr(self.transport, "client_stats", None)
        if client_stats is not None:
            # HTTP deployments only (the simulated transport has no sockets):
            # connection-reuse counters per shard, read at scrape time.
            def per_shard(counter: str):
                def read() -> Dict[Tuple[str, ...], float]:
                    return {(partition_id,): float(stats.get(counter, 0))
                            for partition_id, stats in client_stats().items()}
                return read

            registry.counter(
                "repro_transport_requests_total",
                "Shard HTTP requests issued by the coordinator, by partition.",
                ("partition",),
            ).set_callback(per_shard("requests"))
            registry.counter(
                "repro_transport_connections_opened_total",
                "TCP connections the shard transport opened, by partition.",
                ("partition",),
            ).set_callback(per_shard("connections_opened"))
            registry.counter(
                "repro_transport_requests_reused_total",
                "Shard requests served over a reused keep-alive socket.",
                ("partition",),
            ).set_callback(per_shard("requests_reused"))
            registry.counter(
                "repro_transport_stale_retries_total",
                "Shard requests retried once after a stale keep-alive socket.",
                ("partition",),
            ).set_callback(per_shard("stale_retries"))
        failover_stats = getattr(self.transport, "failover_stats", None)
        if failover_stats is not None:
            # Replica-aware transports only: the failover machinery's own
            # counters, read at scrape time like the connection counters.
            def per_partition(counter: str):
                def read() -> Dict[Tuple[str, ...], float]:
                    return {(partition_id,): float(stats.get(counter, 0))
                            for partition_id, stats in failover_stats().items()}
                return read

            registry.counter(
                "repro_shard_retries_total",
                "Shard scan attempts retried after a replica failure, by partition.",
                ("partition",),
            ).set_callback(per_partition("retries"))
            registry.counter(
                "repro_shard_failovers_total",
                "Scan retries that moved to a different replica, by partition.",
                ("partition",),
            ).set_callback(per_partition("failovers"))
            registry.counter(
                "repro_shard_hedges_total",
                "Duplicate hedge requests issued to a second replica, by partition.",
                ("partition",),
            ).set_callback(per_partition("hedges"))
            registry.counter(
                "repro_shard_hedge_wins_total",
                "Hedged scans where the duplicate answered first, by partition.",
                ("partition",),
            ).set_callback(per_partition("hedge_wins"))
            registry.counter(
                "repro_shard_circuit_opens_total",
                "Replica circuit-breaker trips, by partition.",
                ("partition",),
            ).set_callback(per_partition("circuit_opens"))
            registry.counter(
                "repro_shard_circuit_shed_total",
                "Scan attempts skipped because a replica circuit was open.",
                ("partition",),
            ).set_callback(per_partition("circuit_shed"))

    def _per_shard_totals(self, attribute: str) -> Dict[Tuple[str, ...], float]:
        with self._stats_lock:
            return {(partition_id,): float(getattr(stats, attribute))
                    for partition_id, stats in self._shard_stats.items()}

    # -- range partition pruning --------------------------------------------------------

    def _range_targets(self, point: LabeledPoint, radius: float) -> Tuple[str, ...]:
        """Partitions the sequential range navigation would enter.

        Walks the coordinator's routing structure applying the paper's rule
        (both children when the query ball straddles the splitting plane),
        crossing remote links locally.  Partitions holding no points are
        skipped — the sequential search enters them only to route, and a
        shard scan of an empty subtree returns nothing by construction.
        """
        tree = self.base.tree
        ordered: List[str] = []
        seen = set()

        def enter(partition_id: str) -> Optional[Node]:
            if partition_id not in seen:
                seen.add(partition_id)
                ordered.append(partition_id)
                return tree.partition(partition_id).root
            return None

        stack: List[Node] = []
        root = enter(tree.ROOT_PARTITION_ID)
        if root is not None:
            stack.append(root)
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            for child in range_children(node, point, radius):
                if isinstance(child, RemoteChild):
                    crossed = enter(child.partition_id)
                    if crossed is not None:
                        stack.append(crossed)
                elif isinstance(child, Node):
                    stack.append(child)
        data_bearing = set(self._data_partitions)
        return tuple(pid for pid in ordered if pid in data_bearing)

    # -- observability ------------------------------------------------------------------

    def statistics(self) -> Dict[str, object]:
        """Scatter-gather counters: totals, fan-out, per-shard latency."""
        with self._stats_lock:
            per_shard = {
                partition_id: stats.to_dict()
                for partition_id, stats in sorted(self._shard_stats.items())
            }
            queries, scans, degraded = self._queries, self._scans, self._degraded
        statistics: Dict[str, object] = {
            "partitions": len(self._data_partitions),
            "queries": queries,
            "scans": scans,
            "degraded_queries": degraded,
            "fan_out_mean": (scans / queries) if queries else 0.0,
            "per_shard": per_shard,
        }
        failover_stats = getattr(self.transport, "failover_stats", None)
        if failover_stats is not None:
            statistics["failover"] = failover_stats()
        return statistics

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Shut the scatter pool down and release the transport's connections."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        self.transport.close()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedIndex(partitions={len(self._data_partitions)}, "
            f"transport={self.transport!r})"
        )
