"""Prometheus text exposition v0.0.4: rendering, parsing, validation.

:func:`render_exposition` turns a :class:`~repro.obs.registry.MetricsRegistry`
into the text format scraped at ``GET /v1/metrics?format=prometheus``.  The
parser and validator exist so tests and the CI smoke step can round-trip
the output instead of string-matching it: :func:`parse_exposition` rebuilds
the family/sample structure from text (undoing label escaping), and
:func:`validate_exposition` checks the invariants a Prometheus server would
enforce — unique series, monotone histogram buckets, ``+Inf`` bucket equal
to ``_count``, a ``_sum`` for every ``_count``.

Only the subset of the format this library emits is supported; the parser
is a test oracle, not a general Prometheus client.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from repro.errors import ObservabilityError
from repro.obs.registry import MetricsRegistry

__all__ = [
    "CONTENT_TYPE",
    "ParsedFamily",
    "ParsedSample",
    "parse_exposition",
    "render_exposition",
    "validate_exposition",
]

#: The content type Prometheus scrapers negotiate for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SERIES_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _unescape(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        char = value[i]
        if char == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(char)
                out.append(nxt)
            i += 2
            continue
        out.append(char)
        i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ObservabilityError(f"unparseable sample value: {text!r}")


def render_exposition(registry: MetricsRegistry) -> str:
    """Render every family in ``registry`` as text exposition v0.0.4."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help_text:
            lines.append(f"# HELP {family.name} {_escape_help(family.help_text)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.collect():
            if sample.labels:
                rendered = ",".join(
                    f'{name}="{_escape_label_value(value)}"'
                    for name, value in sample.labels
                )
                series = f"{sample.name}{{{rendered}}}"
            else:
                series = sample.name
            lines.append(f"{series} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


class ParsedSample:
    """One series line of an exposition: name, labels, numeric value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:
        return f"ParsedSample({self.name!r}, {self.labels!r}, {self.value!r})"


class ParsedFamily:
    """One metric family reconstructed from an exposition."""

    __slots__ = ("name", "kind", "help_text", "samples")

    def __init__(self, name: str, kind: str = "untyped", help_text: str = ""):
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: List[ParsedSample] = []

    def __repr__(self) -> str:
        return f"ParsedFamily({self.name!r}, {self.kind!r}, {len(self.samples)} samples)"


def _family_for(series_name: str, families: Dict[str, ParsedFamily]) -> ParsedFamily:
    for suffix in ("_bucket", "_sum", "_count"):
        base = series_name[: -len(suffix)] if series_name.endswith(suffix) else None
        if base and base in families and families[base].kind == "histogram":
            return families[base]
    if series_name not in families:
        families[series_name] = ParsedFamily(series_name)
    return families[series_name]


def parse_exposition(text: str) -> Dict[str, ParsedFamily]:
    """Parse exposition text back into ``{family_name: ParsedFamily}``."""
    families: Dict[str, ParsedFamily] = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(None, 1)
            name = parts[0]
            family = families.setdefault(name, ParsedFamily(name))
            family.help_text = _unescape(parts[1]) if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise ObservabilityError(f"line {line_number}: malformed TYPE line: {raw_line!r}")
            name, kind = parts
            family = families.setdefault(name, ParsedFamily(name))
            family.kind = kind
            continue
        if line.startswith("#"):
            continue
        match = _SERIES_LINE.match(line)
        if not match:
            raise ObservabilityError(f"line {line_number}: malformed series line: {raw_line!r}")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(label_text):
                labels[pair.group(1)] = _unescape(pair.group(2))
                consumed = pair.end()
            remainder = label_text[consumed:].strip().strip(",")
            if remainder:
                raise ObservabilityError(
                    f"line {line_number}: malformed labels {label_text!r}")
        sample = ParsedSample(match.group("name"), labels,
                              _parse_value(match.group("value")))
        _family_for(sample.name, families).samples.append(sample)
    return families


def _series_key(sample: ParsedSample) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    return sample.name, tuple(sorted(sample.labels.items()))


def validate_exposition(families: Dict[str, ParsedFamily]) -> List[str]:
    """Invariant violations in a parsed exposition (empty list == valid)."""
    problems: List[str] = []
    seen: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], str] = {}
    for family in families.values():
        if family.kind not in ("counter", "gauge", "histogram", "untyped"):
            problems.append(f"{family.name}: unknown type {family.kind!r}")
        for sample in family.samples:
            key = _series_key(sample)
            if key in seen:
                problems.append(f"duplicate series: {sample.name}{sample.labels}")
            seen[key] = family.name
            if family.kind == "counter" and sample.value < 0:
                problems.append(f"{sample.name}: negative counter value {sample.value}")
        if family.kind == "histogram":
            problems.extend(_validate_histogram(family))
    return problems


def _validate_histogram(family: ParsedFamily) -> List[str]:
    problems: List[str] = []
    groups: Dict[Tuple[Tuple[str, str], ...], Dict[str, List[ParsedSample]]] = {}
    for sample in family.samples:
        labels = {k: v for k, v in sample.labels.items() if k != "le"}
        group = groups.setdefault(tuple(sorted(labels.items())), {})
        if sample.name == f"{family.name}_bucket":
            group.setdefault("buckets", []).append(sample)
        elif sample.name == f"{family.name}_sum":
            group.setdefault("sum", []).append(sample)
        elif sample.name == f"{family.name}_count":
            group.setdefault("count", []).append(sample)
        else:
            problems.append(f"{family.name}: unexpected series {sample.name}")
    for labels, group in groups.items():
        where = f"{family.name}{dict(labels)}"
        buckets = group.get("buckets", [])
        if not buckets:
            problems.append(f"{where}: histogram without buckets")
            continue
        bounds: List[Tuple[float, float]] = []
        for sample in buckets:
            if "le" not in sample.labels:
                problems.append(f"{where}: bucket without 'le' label")
                continue
            bounds.append((_parse_value(sample.labels["le"]), sample.value))
        bounds.sort(key=lambda pair: pair[0])
        counts = [count for _, count in bounds]
        if counts != sorted(counts):
            problems.append(f"{where}: bucket counts are not monotone: {counts}")
        if not bounds or not math.isinf(bounds[-1][0]):
            problems.append(f"{where}: missing +Inf bucket")
        count_samples = group.get("count", [])
        sum_samples = group.get("sum", [])
        if len(count_samples) != 1:
            problems.append(f"{where}: expected exactly one _count series")
        if len(sum_samples) != 1:
            problems.append(f"{where}: expected exactly one _sum series")
        if count_samples and bounds and math.isinf(bounds[-1][0]):
            if bounds[-1][1] != count_samples[0].value:
                problems.append(
                    f"{where}: +Inf bucket {bounds[-1][1]} != _count {count_samples[0].value}")
    return problems
