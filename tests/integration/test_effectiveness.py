"""Integration test of the Fig. 8 protocol: the precision/recall trade-off.

The paper's qualitative finding: "the lower is K, the higher is P and the
lower is R; then, when K increases, R grows up and P decreases."  This test
runs the full protocol on the synthetic corpus and asserts exactly that
shape (plus sanity bounds), without pinning absolute values.
"""

import pytest

from repro.evaluation import average_precision_recall, evaluate_retrieval
from repro.requirements import GroundTruthOracle


@pytest.fixture(scope="module")
def effectiveness_curves(request):
    # build the index once for the whole module (it is moderately expensive)
    fixture = request.getfixturevalue("built_requirements_index")
    index, vocabularies, corpus = fixture
    oracle = GroundTruthOracle(corpus.all_triples(), vocabularies["Fun"])
    cases = oracle.build_cases(25, seed=17)
    curves = {}
    for k in (1, 3, 5, 10):
        per_query = []
        for case in cases:
            retrieved = [m.triple for m in index.k_nearest(case.target_triple, k)]
            per_query.append(evaluate_retrieval(retrieved, case.expected))
        curves[k] = average_precision_recall(per_query)
    return curves


# make the function-scoped fixture available to the module-scoped one
@pytest.fixture(scope="module")
def built_requirements_index(request):
    from repro.core import SemTreeConfig, SemTreeIndex
    from repro.requirements import (
        GeneratorConfig,
        RequirementsGenerator,
        build_requirement_distance,
        build_requirement_vocabularies,
    )

    config = GeneratorConfig(
        documents=6, requirements_per_document=5, sentences_per_requirement=3,
        actors=12, inconsistency_rate=0.3, restatement_rate=0.2, seed=13,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=3, partition_capacity=64,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    return index, vocabularies, corpus


class TestFig8Shape:
    def test_metrics_are_probabilities(self, effectiveness_curves):
        for result in effectiveness_curves.values():
            assert 0.0 <= result.precision <= 1.0
            assert 0.0 <= result.recall <= 1.0

    def test_precision_decreases_as_k_grows(self, effectiveness_curves):
        ks = sorted(effectiveness_curves)
        precisions = [effectiveness_curves[k].precision for k in ks]
        assert all(b <= a + 1e-9 for a, b in zip(precisions, precisions[1:]))
        assert precisions[-1] < precisions[0]

    def test_recall_increases_as_k_grows(self, effectiveness_curves):
        ks = sorted(effectiveness_curves)
        recalls = [effectiveness_curves[k].recall for k in ks]
        assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
        assert recalls[-1] > recalls[0]

    def test_retrieval_is_useful_at_small_k(self, effectiveness_curves):
        # at K=1 the antinomic counterpart should usually be the top hit
        assert effectiveness_curves[1].precision >= 0.4

    def test_recall_approaches_one_at_large_k(self, effectiveness_curves):
        assert effectiveness_curves[10].recall >= 0.8
