"""Tests for the synthetic requirements-corpus generator."""

import pytest

from repro.errors import WorkloadError
from repro.nlp import TripleExtractor
from repro.rdf import Concept
from repro.requirements import (
    GeneratorConfig,
    RequirementsGenerator,
    build_function_vocabulary,
)


class TestGeneratorConfig:
    def test_defaults_valid(self):
        config = GeneratorConfig()
        assert config.total_triples == 20 * 10 * 3

    @pytest.mark.parametrize("kwargs", [
        {"documents": 0},
        {"requirements_per_document": 0},
        {"sentences_per_requirement": 0},
        {"actors": 0},
        {"inconsistency_rate": 1.5},
        {"restatement_rate": -0.1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            GeneratorConfig(**kwargs)


class TestGeneratedCorpus:
    def test_shape_matches_configuration(self, small_corpus):
        assert len(small_corpus.documents) == 6
        for document in small_corpus.documents:
            # injected conflicting requirements may add extra entries
            assert len(document) >= 5
        assert len(small_corpus.all_triples()) >= 6 * 5 * 3

    def test_deterministic_for_fixed_seed(self):
        config = GeneratorConfig(documents=3, requirements_per_document=4, seed=99)
        first = RequirementsGenerator(config).generate()
        second = RequirementsGenerator(config).generate()
        assert first.all_triples() == second.all_triples()
        assert first.injected_inconsistencies == second.injected_inconsistencies

    def test_different_seeds_differ(self):
        base = GeneratorConfig(documents=3, requirements_per_document=4, seed=1)
        other = GeneratorConfig(documents=3, requirements_per_document=4, seed=2)
        assert (RequirementsGenerator(base).generate().all_triples()
                != RequirementsGenerator(other).generate().all_triples())

    def test_triples_use_known_actors_and_prefixes(self, small_corpus):
        actors = set(small_corpus.actor_names)
        for triple in small_corpus.all_triples():
            assert isinstance(triple.subject, Concept)
            assert triple.subject.name in actors
            assert triple.predicate.prefix == "Fun"
            assert triple.object.prefix in small_corpus.parameter_values or triple.object.prefix

    def test_injected_inconsistencies_satisfy_the_definition(self, small_corpus):
        vocabulary = build_function_vocabulary()
        assert small_corpus.injected_inconsistencies
        for base, conflicting in small_corpus.injected_inconsistencies:
            assert base.subject == conflicting.subject
            assert vocabulary.are_antonyms(base.predicate, conflicting.predicate)
            # objects agree up to spelling variants
            normalise = lambda name: name.replace("-", "").replace("_", "")
            assert normalise(base.object.name) == normalise(conflicting.object.name)

    def test_sentences_are_extractable(self, small_corpus):
        extractor = TripleExtractor()
        requirement = small_corpus.all_requirements()[0]
        assert extractor.extract_from_text(requirement.text)

    def test_zero_inconsistency_rate_injects_nothing(self):
        config = GeneratorConfig(documents=3, requirements_per_document=4,
                                 inconsistency_rate=0.0, seed=5)
        corpus = RequirementsGenerator(config).generate()
        assert corpus.injected_inconsistencies == []

    def test_actor_mix_includes_hardware_devices(self):
        config = GeneratorConfig(documents=2, requirements_per_document=2, actors=10, seed=5)
        corpus = RequirementsGenerator(config).generate()
        assert any(name.startswith("HWD") for name in corpus.actor_names)
        assert any(name.startswith("OBSW") for name in corpus.actor_names)

    def test_scales_to_larger_corpora(self):
        config = GeneratorConfig(documents=40, requirements_per_document=10,
                                 sentences_per_requirement=3, seed=8)
        corpus = RequirementsGenerator(config).generate()
        assert len(corpus.all_triples()) >= 1200
