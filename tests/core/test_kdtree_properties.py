"""Property-based tests: the KD-tree always agrees with the exhaustive scan."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LinearScanIndex
from repro.core import KDTree, LabeledPoint, SplitStrategy

coordinate = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
point_list = st.lists(
    st.tuples(coordinate, coordinate), min_size=1, max_size=80,
)


def to_points(raw):
    return [LabeledPoint.of(coords, label=index) for index, coords in enumerate(raw)]


@given(raw=point_list, query=st.tuples(coordinate, coordinate),
       k=st.integers(min_value=1, max_value=10),
       bucket_size=st.integers(min_value=1, max_value=8),
       strategy=st.sampled_from(list(SplitStrategy)))
@settings(max_examples=120, deadline=None)
def test_knn_always_matches_linear_scan(raw, query, k, bucket_size, strategy):
    points = to_points(raw)
    tree = KDTree(2, bucket_size=bucket_size, split_strategy=strategy)
    tree.insert_all(points)
    query_point = LabeledPoint.of(query)

    expected = LinearScanIndex(points).k_nearest(query_point, k)
    actual = tree.k_nearest(query_point, k)

    assert len(actual) == min(k, len(points))
    # Distances must match exactly (the identity of equidistant points may differ).
    assert [n.distance for n in actual] == [n.distance for n in expected]


@given(raw=point_list, query=st.tuples(coordinate, coordinate),
       radius=st.floats(min_value=0.0, max_value=0.7, allow_nan=False),
       bucket_size=st.integers(min_value=1, max_value=8))
@settings(max_examples=120, deadline=None)
def test_range_query_always_matches_linear_scan(raw, query, radius, bucket_size):
    points = to_points(raw)
    tree = KDTree(2, bucket_size=bucket_size)
    tree.insert_all(points)
    query_point = LabeledPoint.of(query)

    expected = {n.point for n in LinearScanIndex(points).range_query(query_point, radius)}
    actual = {n.point for n in tree.range_query(query_point, radius)}
    assert actual == expected


@given(raw=point_list, bucket_size=st.integers(min_value=1, max_value=8))
@settings(max_examples=80, deadline=None)
def test_tree_never_loses_points(raw, bucket_size):
    points = to_points(raw)
    tree = KDTree(2, bucket_size=bucket_size)
    tree.insert_all(points)
    assert sorted(p.label for p in tree.points()) == sorted(p.label for p in points)
    assert len(tree) == len(points)


@given(raw=point_list)
@settings(max_examples=60, deadline=None)
def test_bulk_builders_store_the_same_points(raw):
    points = to_points(raw)
    balanced = KDTree.build_balanced(points, bucket_size=4)
    chain = KDTree.build_chain(points)
    assert sorted(p.label for p in balanced.points()) == sorted(p.label for p in points)
    assert sorted(p.label for p in chain.points()) == sorted(p.label for p in points)
    assert balanced.depth() <= chain.depth() or len(points) <= 4
