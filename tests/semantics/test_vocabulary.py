"""Tests for domain vocabularies (taxonomy + antinomy + synonym relations)."""

import pytest

from repro.errors import VocabularyError
from repro.rdf import Concept
from repro.semantics import Vocabulary


@pytest.fixture
def vocabulary() -> Vocabulary:
    vocabulary = Vocabulary("test-functions")
    vocabulary.add_concept("function")
    vocabulary.add_concept("command_handling", "function")
    vocabulary.add_concept("accept_cmd", "command_handling")
    vocabulary.add_concept("block_cmd", "command_handling")
    vocabulary.add_concept("send_msg", "function")
    vocabulary.add_antonym("accept_cmd", "block_cmd")
    vocabulary.add_synonym("accept_cmd", "send_msg")
    return vocabulary


class TestConstruction:
    def test_requires_name(self):
        with pytest.raises(VocabularyError):
            Vocabulary("")

    def test_wraps_existing_taxonomy(self, small_taxonomy):
        vocabulary = Vocabulary("wrapped", small_taxonomy)
        assert "car" in vocabulary
        assert len(vocabulary) == len(small_taxonomy)

    def test_add_concept_and_membership(self, vocabulary):
        assert vocabulary.has_concept("accept_cmd")
        assert vocabulary.has_concept(Concept("accept_cmd", "Fun"))
        assert not vocabulary.has_concept("missing")

    def test_concepts_listing(self, vocabulary):
        assert "block_cmd" in vocabulary.concepts()
        assert len(vocabulary) == 5


class TestAntonyms:
    def test_antonym_relation_is_symmetric(self, vocabulary):
        assert vocabulary.are_antonyms("accept_cmd", "block_cmd")
        assert vocabulary.are_antonyms("block_cmd", "accept_cmd")

    def test_accepts_concept_terms(self, vocabulary):
        assert vocabulary.are_antonyms(Concept("accept_cmd", "Fun"), Concept("block_cmd", "Fun"))

    def test_non_antonyms(self, vocabulary):
        assert not vocabulary.are_antonyms("accept_cmd", "send_msg")
        assert not vocabulary.are_antonyms("accept_cmd", "accept_cmd")

    def test_antonyms_of(self, vocabulary):
        assert vocabulary.antonyms_of("accept_cmd") == {"block_cmd"}
        assert vocabulary.antonyms_of("send_msg") == set()

    def test_antonym_requires_known_concepts(self, vocabulary):
        with pytest.raises(VocabularyError):
            vocabulary.add_antonym("accept_cmd", "missing")

    def test_self_antonym_rejected(self, vocabulary):
        with pytest.raises(VocabularyError):
            vocabulary.add_antonym("accept_cmd", "accept_cmd")

    def test_antonym_pairs_reported_once(self, vocabulary):
        assert vocabulary.antonym_pairs() == [("accept_cmd", "block_cmd")]

    def test_antonyms_of_unknown_concept(self, vocabulary):
        with pytest.raises(VocabularyError):
            vocabulary.antonyms_of("missing")


class TestSynonyms:
    def test_synonym_relation_is_symmetric(self, vocabulary):
        assert vocabulary.are_synonyms("accept_cmd", "send_msg")
        assert vocabulary.are_synonyms("send_msg", "accept_cmd")

    def test_identical_concepts_are_synonyms(self, vocabulary):
        assert vocabulary.are_synonyms("accept_cmd", "accept_cmd")

    def test_synonyms_of(self, vocabulary):
        assert vocabulary.synonyms_of("accept_cmd") == {"send_msg"}
        assert vocabulary.synonyms_of("block_cmd") == set()

    def test_add_synonym_requires_known_concepts(self, vocabulary):
        with pytest.raises(VocabularyError):
            vocabulary.add_synonym("accept_cmd", "missing")
