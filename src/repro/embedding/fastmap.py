"""FastMap — Faloutsos & Lin (1995), cited as [12] by the paper.

FastMap embeds objects of an arbitrary metric (or quasi-metric) space into a
k-dimensional Euclidean space using only the pairwise distance function.
The paper uses it to map triples, "together with related distances, into a
vectorial space ... on which it is possible to define an efficient indexing
structure".

The classical algorithm, reproduced here:

1. For each target dimension, choose two *pivot* objects that are far apart
   (the heuristic: start from a random object, walk to its farthest object a
   constant number of times).
2. Project every object on the line defined by the two pivots with the
   cosine-law formula::

       x_i = (d(o_i, p_a)^2 + d(p_a, p_b)^2 - d(o_i, p_b)^2) / (2 d(p_a, p_b))

3. Recurse on the *residual* distance

       d'(o_i, o_j)^2 = d(o_i, o_j)^2 - (x_i - x_j)^2

   for the remaining dimensions (clamped at zero, because real semantic
   distances are rarely perfectly Euclidean).

The implementation also supports projecting *out-of-sample* objects (query
triples) into an already-computed space, which is what SemTree uses at
query time.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Generic, Hashable, List, Sequence, 
                    Tuple, TypeVar)

import numpy as np

from repro.errors import EmbeddingError

__all__ = ["FastMap", "FastMapSpace", "PivotPair"]

ObjectT = TypeVar("ObjectT", bound=Hashable)

#: A distance function over arbitrary objects.
DistanceFunction = Callable[[ObjectT, ObjectT], float]


@dataclass(frozen=True, slots=True)
class PivotPair(Generic[ObjectT]):
    """The two pivot objects chosen for one FastMap dimension, and their distance."""

    first: ObjectT
    second: ObjectT
    distance: float


@dataclass
class FastMapSpace(Generic[ObjectT]):
    """The result of a FastMap embedding.

    Attributes
    ----------
    dimensions:
        Number of embedding dimensions actually produced (may be lower than
        requested when the residual distance collapses to zero).
    objects:
        The embedded objects, in input order.
    coordinates:
        ``(len(objects), dimensions)`` array of coordinates.
    pivots:
        One :class:`PivotPair` per dimension.
    """

    dimensions: int
    objects: List[ObjectT]
    coordinates: np.ndarray
    pivots: List[PivotPair[ObjectT]]
    _index_of: Dict[ObjectT, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index_of:
            self._index_of = {obj: i for i, obj in enumerate(self.objects)}

    def coordinates_of(self, obj: ObjectT) -> np.ndarray:
        """Coordinates of an in-sample object.

        Raises
        ------
        EmbeddingError
            If the object was not part of the embedded set.
        """
        index = self._index_of.get(obj)
        if index is None:
            raise EmbeddingError("object was not part of the embedded set")
        return self.coordinates[index]

    def __contains__(self, obj: ObjectT) -> bool:
        return obj in self._index_of

    def __len__(self) -> int:
        return len(self.objects)

    # -- snapshot support ------------------------------------------------------------

    def to_payload(self, serialise: Callable[[ObjectT], Any]) -> Dict[str, Any]:
        """Serialise the space to a JSON-compatible payload.

        ``serialise`` converts one embedded object (e.g. a triple) to a
        JSON-compatible value.  Pivots are stored as indices into the object
        list — they are always members of the fitted set.
        """
        return {
            "dimensions": self.dimensions,
            "objects": [serialise(obj) for obj in self.objects],
            "coordinates": self.coordinates.tolist(),
            "pivots": [
                {
                    "first": self._index_of[pivot.first],
                    "second": self._index_of[pivot.second],
                    "distance": pivot.distance,
                }
                for pivot in self.pivots
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any],
                     deserialise: Callable[[Any], ObjectT]) -> "FastMapSpace[ObjectT]":
        """Inverse of :meth:`to_payload`."""
        objects = [deserialise(entry) for entry in payload["objects"]]
        dimensions = int(payload["dimensions"])
        coordinates = np.asarray(payload["coordinates"], dtype=float)
        coordinates = coordinates.reshape(len(objects), dimensions)
        pivots = [
            PivotPair(objects[entry["first"]], objects[entry["second"]],
                      float(entry["distance"]))
            for entry in payload["pivots"]
        ]
        return cls(dimensions=dimensions, objects=objects,
                   coordinates=coordinates, pivots=pivots)


class FastMap(Generic[ObjectT]):
    """FastMap embedder over an arbitrary distance function.

    Parameters
    ----------
    distance:
        The (symmetric, non-negative) distance function between objects.
    dimensions:
        Number of target dimensions ``k``.
    pivot_iterations:
        Number of "walk to the farthest object" steps of the pivot
        heuristic (Faloutsos & Lin use a small constant; 5 by default).
    seed:
        Seed of the internal random generator, for reproducible pivots.
    """

    def __init__(self, distance: DistanceFunction, dimensions: int = 4,
                 *, pivot_iterations: int = 5, seed: int | None = 0):
        if dimensions < 1:
            raise EmbeddingError(f"dimensions must be >= 1, got {dimensions}")
        if pivot_iterations < 1:
            raise EmbeddingError(f"pivot_iterations must be >= 1, got {pivot_iterations}")
        self._distance = distance
        self.dimensions = dimensions
        self.pivot_iterations = pivot_iterations
        self._random = random.Random(seed)
        #: Count of distance-function evaluations performed by the last fit.
        self.distance_evaluations = 0

    # -- internal helpers -------------------------------------------------------------

    def _base_distance(self, a: ObjectT, b: ObjectT) -> float:
        self.distance_evaluations += 1
        value = self._distance(a, b)
        if value < 0:
            raise EmbeddingError(f"distance function returned a negative value: {value}")
        return value

    def _residual_distance(self, a_index: int, b_index: int, objects: Sequence[ObjectT],
                           coordinates: np.ndarray, upto_dimension: int) -> float:
        """Distance in the residual space after ``upto_dimension`` projections."""
        base = self._base_distance(objects[a_index], objects[b_index])
        squared = base * base
        for dim in range(upto_dimension):
            delta = coordinates[a_index, dim] - coordinates[b_index, dim]
            squared -= delta * delta
        return math.sqrt(squared) if squared > 0 else 0.0

    def _choose_pivots(self, objects: Sequence[ObjectT], coordinates: np.ndarray,
                       dimension: int) -> Tuple[int, int, float]:
        """The farthest-pair heuristic in the residual space of ``dimension``."""
        n = len(objects)
        pivot_b = self._random.randrange(n)
        pivot_a = pivot_b
        best_distance = 0.0
        for _ in range(self.pivot_iterations):
            distances = [
                self._residual_distance(pivot_b, i, objects, coordinates, dimension)
                for i in range(n)
            ]
            farthest = int(np.argmax(distances))
            best_distance = distances[farthest]
            if farthest == pivot_b:
                break
            pivot_a, pivot_b = pivot_b, farthest
        return pivot_a, pivot_b, best_distance

    # -- fitting -----------------------------------------------------------------------

    def fit(self, objects: Sequence[ObjectT]) -> FastMapSpace[ObjectT]:
        """Embed ``objects`` and return the resulting :class:`FastMapSpace`.

        Raises
        ------
        EmbeddingError
            If fewer than two objects are supplied.
        """
        objects = list(objects)
        if len(objects) < 2:
            raise EmbeddingError("FastMap needs at least two objects to embed")
        self.distance_evaluations = 0
        n = len(objects)
        coordinates = np.zeros((n, self.dimensions), dtype=float)
        pivots: List[PivotPair[ObjectT]] = []

        produced = 0
        for dimension in range(self.dimensions):
            index_a, index_b, pivot_distance = self._choose_pivots(
                objects, coordinates, dimension
            )
            if pivot_distance <= 0.0:
                # Residual space collapsed: every remaining coordinate is 0.
                break
            pivots.append(
                PivotPair(objects[index_a], objects[index_b], pivot_distance)
            )
            d_ab_sq = pivot_distance * pivot_distance
            for i in range(n):
                d_ai = self._residual_distance(index_a, i, objects, coordinates, dimension)
                d_bi = self._residual_distance(index_b, i, objects, coordinates, dimension)
                coordinates[i, dimension] = (
                    (d_ai * d_ai + d_ab_sq - d_bi * d_bi) / (2.0 * pivot_distance)
                )
            produced = dimension + 1

        if produced == 0:
            # All objects are at distance 0 from each other; a single flat
            # dimension still lets the index operate (every point identical).
            produced = 1

        return FastMapSpace(
            dimensions=produced,
            objects=objects,
            coordinates=coordinates[:, :produced].copy(),
            pivots=pivots,
        )

    # -- out-of-sample projection ---------------------------------------------------------

    def project(self, obj: ObjectT, space: FastMapSpace[ObjectT]) -> np.ndarray:
        """Project an out-of-sample object (e.g. a query triple) into ``space``.

        The projection repeats the cosine-law formula against the stored
        pivots, using residual distances computed on the fly.
        """
        if obj in space:
            return space.coordinates_of(obj).copy()
        coordinates = np.zeros(space.dimensions, dtype=float)
        for dimension, pivot in enumerate(space.pivots):
            d_ab = pivot.distance
            d_a = self._projected_residual(obj, pivot.first, space, coordinates, dimension)
            d_b = self._projected_residual(obj, pivot.second, space, coordinates, dimension)
            coordinates[dimension] = (d_a * d_a + d_ab * d_ab - d_b * d_b) / (2.0 * d_ab)
        return coordinates

    def _projected_residual(self, obj: ObjectT, pivot: ObjectT, space: FastMapSpace[ObjectT],
                            partial: np.ndarray, upto_dimension: int) -> float:
        base = self._base_distance(obj, pivot)
        squared = base * base
        pivot_coordinates = space.coordinates_of(pivot)
        for dim in range(upto_dimension):
            delta = partial[dim] - pivot_coordinates[dim]
            squared -= delta * delta
        return math.sqrt(squared) if squared > 0 else 0.0

    def fit_transform(self, objects: Sequence[ObjectT]) -> Tuple[FastMapSpace[ObjectT], np.ndarray]:
        """Convenience: fit and also return the coordinate matrix."""
        space = self.fit(objects)
        return space, space.coordinates
