"""The on-board-software requirements vocabulary.

The paper's case study indexes requirements of an airplane on-board
software: predicates are unary "functions" (accept a command, send a
message, acquire an input, ...), subjects are Actors (software components or
hardware devices) and objects are Parameters.  Target triples are generated
with an "ad-hoc requirements vocabulary" that knows which predicates are
antinomic (``accept_cmd`` vs ``block_cmd``).

This module builds that vocabulary explicitly: a function taxonomy with
antinomy pairs, an actor taxonomy, and parameter-type taxonomies, plus a
helper that wires them all into a ready-to-use
:class:`~repro.semantics.triple_distance.TripleDistance`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.semantics.triple_distance import DistanceWeights, TermDistance, TripleDistance
from repro.semantics.vocabulary import Vocabulary

__all__ = [
    "FUNCTION_PREFIX",
    "ANTINOMY_PAIRS",
    "FUNCTION_FAMILIES",
    "PARAMETER_PREFIXES",
    "build_function_vocabulary",
    "build_actor_vocabulary",
    "build_parameter_vocabulary",
    "build_requirement_vocabularies",
    "build_requirement_distance",
]

#: Prefix of function (predicate) concepts, as in the paper's Turtle-like listings.
FUNCTION_PREFIX = "Fun"

#: Function families: (family name, positive function, antinomic function).
FUNCTION_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("command_handling", "accept_cmd", "block_cmd"),
    ("messaging", "send_msg", "suppress_msg"),
    ("acquisition", "acquire_in", "ignore_in"),
    ("mode_management", "enable_mode", "disable_mode"),
    ("process_control", "start_proc", "stop_proc"),
    ("telemetry", "transmit_tm", "withhold_tm"),
    ("signalling", "raise_signal", "clear_signal"),
)

#: The antinomy pairs of the requirements vocabulary.
ANTINOMY_PAIRS: Tuple[Tuple[str, str], ...] = tuple(
    (positive, negative) for _, positive, negative in FUNCTION_FAMILIES
)

#: Parameter prefixes (object vocabularies) and the sortal noun of each.
PARAMETER_PREFIXES: Dict[str, str] = {
    "CmdType": "command",
    "MsgType": "message",
    "InType": "input",
    "OutType": "output",
    "ModeType": "mode",
    "ParType": "parameter",
    "TmType": "telemetry",
    "SigType": "signal",
}


def build_function_vocabulary() -> Vocabulary:
    """The function vocabulary: a two-level taxonomy plus the antinomy relation.

    Layout: ``function → <family> → {positive, negative}``.  Wu & Palmer
    similarity between two functions of the same family is therefore high
    (they share a depth-2 subsumer) while functions of different families
    only share the depth-1 root "function".
    """
    vocabulary = Vocabulary("requirements-functions")
    vocabulary.add_concept("function")
    for family, positive, negative in FUNCTION_FAMILIES:
        vocabulary.add_concept(family, "function")
        vocabulary.add_concept(positive, family)
        vocabulary.add_concept(negative, family)
        vocabulary.add_antonym(positive, negative)
    return vocabulary


def build_actor_vocabulary(actor_names: List[str] | None = None) -> Vocabulary:
    """The actor vocabulary: software components and hardware devices.

    Actors the synthetic generator creates (``OBSW001`` …) can be added later
    with :meth:`~repro.semantics.vocabulary.Vocabulary.add_concept`; the
    vocabulary starts with the two top-level categories of the paper's
    motivating example.
    """
    vocabulary = Vocabulary("requirements-actors")
    vocabulary.add_concept("actor")
    vocabulary.add_concept("software_component", "actor")
    vocabulary.add_concept("hardware_device", "actor")
    for name in actor_names or []:
        parent = "software_component" if name.upper().startswith("OBSW") else "hardware_device"
        vocabulary.add_concept(name, parent)
    return vocabulary


def build_parameter_vocabulary(prefix: str, values: List[str] | None = None) -> Vocabulary:
    """A parameter-type vocabulary (one per object prefix)."""
    sortal = PARAMETER_PREFIXES.get(prefix, "parameter")
    vocabulary = Vocabulary(f"requirements-{prefix}")
    vocabulary.add_concept(sortal)
    for value in values or []:
        vocabulary.add_concept(value, sortal)
    return vocabulary


def build_requirement_vocabularies(
        actor_names: List[str] | None = None,
        parameter_values: Dict[str, List[str]] | None = None) -> Dict[str, Vocabulary]:
    """All vocabularies of the case study, keyed by concept prefix.

    The empty prefix (the paper's "standard vocabulary") maps to the actor
    vocabulary because subjects are written without a prefix in the paper's
    listings (e.g. ``'OBSW001'``).
    """
    vocabularies: Dict[str, Vocabulary] = {
        FUNCTION_PREFIX: build_function_vocabulary(),
        "": build_actor_vocabulary(actor_names),
    }
    parameter_values = parameter_values or {}
    for prefix in PARAMETER_PREFIXES:
        vocabularies[prefix] = build_parameter_vocabulary(prefix, parameter_values.get(prefix))
    return vocabularies


def build_requirement_distance(
        vocabularies: Dict[str, Vocabulary] | None = None,
        weights: DistanceWeights | None = None) -> TripleDistance:
    """A :class:`TripleDistance` pre-wired with the requirements vocabularies.

    The default weights emphasise subject and object (α = γ = 0.4,
    β = 0.2): two requirements about the same actor and parameter are close
    even when their predicates differ, which is exactly what inconsistency
    retrieval needs (the antinomic statement must rank near the target).
    """
    term_distance = TermDistance(vocabularies or build_requirement_vocabularies())
    weights = weights or DistanceWeights(0.4, 0.2, 0.4)
    return TripleDistance(term_distance, weights)
