"""Trace propagation across the scatter-gather fan-out.

One trace id travels client → coordinator → shard servers: the in-process
fleet lets ``caplog`` observe the access logs of every tier in one place,
proving the ``X-Trace-Id`` header actually crossed both HTTP hops.
"""

from __future__ import annotations

import http.client
import json
import logging
import urllib.parse

import pytest

from repro.coordinator import CoordinatorApp, ShardedIndex
from repro.obs.prometheus import parse_exposition, validate_exposition
from repro.server import create_server
from repro.workloads import ServerClient


@pytest.fixture
def coordinator(corpus_index, shard_fleet, make_transport):
    index, triples, data_partitions = corpus_index
    _, topology = shard_fleet
    view = ShardedIndex(index, make_transport(topology), scatter_workers=4)
    app = CoordinatorApp(view, workers=2)
    server = create_server(app).serve_background()
    client = ServerClient(server.url)
    yield server, client, triples, data_partitions
    if not app.closed:
        server.close()


def traced_request(url, path, body, trace_id):
    parsed = urllib.parse.urlsplit(url)
    connection = http.client.HTTPConnection(parsed.hostname, parsed.port,
                                            timeout=30)
    try:
        connection.request(
            "POST", path, body=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json",
                     "X-Trace-Id": trace_id, "X-Debug-Trace": "1"})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), \
            json.loads(response.read())
    finally:
        connection.close()


def walk(node):
    yield node
    for child in node["children"]:
        yield from walk(child)


class TestTracePropagation:
    def test_one_trace_id_in_every_tier_access_log(self, coordinator, caplog):
        server, _, triples, data_partitions = coordinator
        body = ServerClient.knn_payload(triples[0], 5)
        with caplog.at_level(logging.INFO, logger="repro.access"):
            status, headers, _ = traced_request(server.url, "/v1/knn", body,
                                                "fanout-trace-7")
        assert status == 200
        assert headers["X-Trace-Id"] == "fanout-trace-7"
        access = [record for record in caplog.records
                  if record.name == "repro.access"
                  and getattr(record, "trace_id", None) == "fanout-trace-7"]
        paths = [record.path for record in access]
        # one coordinator request plus one scan per data partition
        assert "/v1/knn" in paths
        assert paths.count("/v1/shard/knn") == len(data_partitions)

    def test_debug_trace_shows_the_scatter(self, coordinator):
        server, _, triples, data_partitions = coordinator
        body = ServerClient.knn_payload(triples[1], 6)
        _, _, payload = traced_request(server.url, "/v1/knn", body, "scatter-1")
        (request,) = payload["debug"]["trace"]["spans"]
        nodes = list(walk(request))
        scatters = [node for node in nodes if node["name"] == "scatter"]
        assert scatters, [node["name"] for node in nodes]
        scanned = sorted(node["meta"]["partition"] for node in nodes
                         if node["name"] == "shard_scan")
        assert scanned == sorted(data_partitions)
        assert any(node["name"] == "gather" for node in nodes)

    def test_coordinator_prometheus_round_trip(self, coordinator):
        server, client, triples, data_partitions = coordinator
        client.knn(triples[0], 4)
        families = parse_exposition(client.metrics_prometheus())
        assert validate_exposition(families) == []
        assert {"repro_scatter_queries_total", "repro_shard_scans_total",
                "repro_shard_roundtrip_seconds", "repro_shard_partitions",
                "repro_transport_requests_total",
                "repro_queries_total"} <= set(families)
        scans = {sample.labels["partition"]: sample.value
                 for sample in families["repro_shard_scans_total"].samples}
        assert set(scans) == set(data_partitions)
        # connection reuse counters come straight from the shard clients
        transport_requests = sum(
            sample.value
            for sample in families["repro_transport_requests_total"].samples)
        assert transport_requests >= len(data_partitions)
