"""repro — a reproduction of *SemTree: an index for supporting semantic
retrieval of documents* (Amato et al., ICDE Workshops 2015).

The package is organised as one subpackage per subsystem:

* :mod:`repro.rdf` — triples, namespaces, Turtle-like parsing, triple store;
* :mod:`repro.semantics` — taxonomies, similarity measures, the weighted
  triple distance of Eq. (1);
* :mod:`repro.embedding` — FastMap and the triple embedder;
* :mod:`repro.cluster` — the simulated distributed environment;
* :mod:`repro.core` — the sequential and distributed SemTree index and the
  :class:`~repro.core.semtree.SemTreeIndex` facade;
* :mod:`repro.nlp` — controlled-English requirement sentences → triples;
* :mod:`repro.requirements` — the software-requirements case study
  (synthetic corpus, antinomy vocabulary, inconsistency detection);
* :mod:`repro.baselines` — linear-scan and sequential-tree baselines;
* :mod:`repro.workloads` — synthetic point/query workload generators;
* :mod:`repro.evaluation` — precision/recall, timing, experiment running;
* :mod:`repro.service` — the concurrent query-serving engine (result
  caching, batch execution, deadlines, index snapshots);
* :mod:`repro.ingest` — live ingestion (write-ahead log, delta index,
  background compaction) so inserts no longer quiesce queries;
* :mod:`repro.server` — the process-level HTTP front end over the serving
  stack (wire schemas, ``python -m repro.server``, checkpoint-on-exit).
"""

from repro.core.config import SemTreeConfig, SplitStrategy
from repro.core.semtree import SemanticMatch, SemTreeIndex
from repro.ingest.compactor import BackgroundCompactor
from repro.ingest.ingesting import IngestingIndex
from repro.ingest.wal import WriteAheadLog
from repro.rdf.triple import Triple, TriplePattern
from repro.semantics.triple_distance import DistanceWeights, TermDistance, TripleDistance
from repro.service.engine import QueryEngine, QueryResult
from repro.service.planner import QueryKind, QuerySpec
from repro.service.snapshot import load_index, save_index

__version__ = "1.8.0"

__all__ = [
    "SemTreeIndex",
    "SemanticMatch",
    "SemTreeConfig",
    "SplitStrategy",
    "Triple",
    "TriplePattern",
    "TripleDistance",
    "TermDistance",
    "DistanceWeights",
    "QueryEngine",
    "QueryResult",
    "QuerySpec",
    "QueryKind",
    "IngestingIndex",
    "BackgroundCompactor",
    "WriteAheadLog",
    "save_index",
    "load_index",
    "__version__",
]
