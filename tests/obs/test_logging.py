"""Tests for JSON logging, trace correlation, and the slow-query log."""

import io
import json
import logging

from repro.obs.logging import (
    SLOW_QUERY_ENV,
    JsonLogFormatter,
    SlowQueryLog,
    configure_logging,
    get_logger,
)
from repro.obs.tracing import Trace, activate, span


def format_record(**kwargs):
    record = logging.makeLogRecord({
        "name": "repro.test", "levelno": logging.INFO, "levelname": "INFO",
        "msg": "hello %s", "args": ("world",), **kwargs,
    })
    return json.loads(JsonLogFormatter().format(record))


class TestJsonFormatter:
    def test_basic_fields(self):
        payload = format_record()
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"
        assert payload["message"] == "hello world"
        assert payload["ts"].endswith("Z")

    def test_extras_are_included(self):
        payload = format_record(event="boot", port=8080)
        assert payload["event"] == "boot"
        assert payload["port"] == 8080

    def test_ambient_trace_id_is_attached(self):
        with activate(Trace("trace-42")):
            payload = format_record()
        assert payload["trace_id"] == "trace-42"

    def test_explicit_trace_id_wins(self):
        with activate(Trace("ambient")):
            payload = format_record(trace_id="explicit")
        assert payload["trace_id"] == "explicit"

    def test_unserialisable_extras_fall_back_to_repr(self):
        payload = format_record(thing=object())
        assert "object object" in payload["thing"]

    def test_exceptions_are_rendered(self):
        try:
            raise ValueError("boom")
        except ValueError:
            import sys
            payload = format_record(exc_info=sys.exc_info())
        assert "ValueError: boom" in payload["exception"]


class TestConfigureLogging:
    def test_idempotent_single_handler(self):
        stream = io.StringIO()
        root = logging.getLogger("repro")
        saved = (list(root.handlers), root.propagate, root.level)
        try:
            configure_logging(logging.INFO, stream=stream)
            configure_logging(logging.DEBUG, stream=stream)
            json_handlers = [handler for handler in root.handlers
                             if getattr(handler, "_repro_json_handler", False)]
            assert len(json_handlers) == 1
            assert json_handlers[0].level == logging.DEBUG
            assert root.propagate is False
        finally:
            # Restore the session's logging state: configure_logging turns
            # propagation off, which would hide later caplog assertions on
            # "repro.*" loggers in unrelated tests.
            root.handlers[:], root.propagate, level = saved
            root.setLevel(level)

    def test_get_logger_namespaces(self):
        assert get_logger("access").name == "repro.access"
        assert get_logger("repro.access").name == "repro.access"


class TestSlowQueryLog:
    def test_disabled_without_threshold(self, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        log = SlowQueryLog()
        assert not log.enabled
        assert log.observe(kind="knn", latency_seconds=99.0) is False
        assert log.logged == 0

    def test_threshold_from_environment(self, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "250")
        assert SlowQueryLog().threshold_ms == 250.0
        monkeypatch.setenv(SLOW_QUERY_ENV, "not a number")
        assert SlowQueryLog().threshold_ms is None

    def test_logs_only_above_threshold(self, caplog):
        # An explicit logger outside the "repro" tree: configure_logging
        # (exercised above) sets propagate=False on "repro", which would
        # hide records from caplog's root handler.
        log = SlowQueryLog(threshold_ms=50.0,
                           logger=logging.getLogger("test.slow_query"))
        with caplog.at_level(logging.WARNING, logger="test.slow_query"):
            assert log.observe(kind="knn", latency_seconds=0.010) is False
            assert log.observe(kind="knn", latency_seconds=0.200) is True
        assert log.logged == 1
        (record,) = caplog.records
        assert record.kind == "knn"
        assert record.latency_ms == 200.0

    def test_span_breakdown_is_attached(self, caplog):
        log = SlowQueryLog(threshold_ms=0.0,
                           logger=logging.getLogger("test.slow_query"))
        trace = Trace("slow-1")
        with activate(trace):
            with span("execute"):
                pass
            with caplog.at_level(logging.WARNING, logger="test.slow_query"):
                log.observe(kind="range", latency_seconds=0.001,
                            query={"kind": "range", "radius": 0.1},
                            visited_partitions=("P0", "P1"))
        (record,) = caplog.records
        assert record.trace_id == "slow-1"
        assert record.visited_partitions == ["P0", "P1"]
        assert [node["name"] for node in record.spans] == ["execute"]
        assert record.query == {"kind": "range", "radius": 0.1}
