"""The server application: endpoint logic, transport-free.

:class:`ServerApp` owns the serving stack of one process — an
:class:`~repro.ingest.ingesting.IngestingIndex` (write-ahead log + delta
segment), a :class:`~repro.service.engine.QueryEngine` (batching, result
cache, deadlines) and an optional
:class:`~repro.ingest.compactor.BackgroundCompactor` — and exposes one
method per HTTP endpoint, taking and returning plain JSON-native
dictionaries.  The HTTP layer (:mod:`repro.server.http`) is a thin adapter
over it; tests and benchmarks can drive the app directly.

The unified metrics payload
---------------------------
``/v1/metrics`` merges counters from three subsystems that historically
named their fields each their own way (``qps`` vs ``ingest_qps``, a
hand-picked subset of the cache counters).  :meth:`ServerApp.metrics`
publishes one stable, fully snake_case schema instead — four sections
(``serving`` / ``cache`` / ``ingest`` / ``index``) plus ``server``, with the
shared conventions ``qps``, ``wall_seconds`` and ``*_ms`` sub-dictionaries
that are *always present* (zeroed before the first sample).  The exact key
sets are documented in ``docs/server.md`` and locked down by
``tests/server/test_metrics_schema.py``.
"""

from __future__ import annotations

import pathlib
import threading
import time
from collections import Counter, OrderedDict
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.errors import QueryError, ServerClosingError
from repro.ingest.compactor import BackgroundCompactor
from repro.ingest.ingesting import IngestingIndex
from repro.io.serialization import json_ready
from repro.obs import export as obs_export
from repro.obs.history import MetricsHistory
from repro.obs.logging import SlowQueryLog
from repro.obs.profile import SamplingProfiler, profile_endpoint
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import current_trace, span
from repro.server.context import current_context
from repro.server.schemas import (PartialInsertError, parse_insert_request,
                                  parse_query_request, render_results)
from repro.service.admission import AdmissionController
from repro.service.engine import QueryEngine
from repro.service.planner import QueryKind, QuerySpec
from repro.service.snapshot import config_to_dict

__all__ = ["ServerApp"]

#: Most remembered ``Idempotency-Key`` → response replays; least recently
#: used keys fall out first.  Sized for the retry window the keys exist to
#: cover (seconds, not sessions).
IDEMPOTENCY_CACHE_LIMIT = 1024

#: Zeroed latency sub-dictionaries, so the metrics schema is stable before
#: the first sample lands.
_EMPTY_LATENCY = {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
_EMPTY_COMPACTION = {"mean": 0.0, "max": 0.0, "last": 0.0}


def _query_shape(spec) -> Dict[str, Any]:
    """The slow-query log's description of one query (no payload data)."""
    shape: Dict[str, Any] = {"kind": spec.kind.value}
    if spec.kind is QueryKind.KNN:
        shape["k"] = spec.k
    else:
        shape["radius"] = spec.radius
    if spec.pattern is not None:
        shape["pattern"] = repr(spec.pattern)
    if spec.deadline is not None:
        shape["deadline"] = spec.deadline
    return shape


def _strictest_deadline(specs: List[QuerySpec],
                        default: Optional[float]) -> Optional[float]:
    """The tightest deadline in a batch (what admission judges the wait by)."""
    deadlines = [spec.deadline if spec.deadline is not None else default
                 for spec in specs]
    bounded = [deadline for deadline in deadlines if deadline is not None]
    return min(bounded) if bounded else None


def _observe_slow_queries(log: SlowQueryLog, results) -> None:
    """Feed executed results through the slow-query log (shared by apps)."""
    trace = current_trace()
    for result in results:
        if result.cached:
            continue
        log.observe(
            kind=result.spec.kind.value,
            latency_seconds=result.latency_seconds,
            query=_query_shape(result.spec),
            visited_partitions=result.visited_partitions,
            cached=result.cached,
            trace=trace,
            cost=result.cost.to_dict() if result.cost is not None else None,
        )


class ServerApp:
    """Endpoint logic over one live-ingesting index.

    Parameters
    ----------
    index:
        The :class:`IngestingIndex` to serve.  The server requires the
        ingesting wrapper (not a bare ``SemTreeIndex``) because ``/v1/insert``
        writes through the WAL + delta path and the shutdown checkpoint
        needs the WAL's applied sequence number.
    workers / cache_capacity / cache_ttl / cache_segmented / default_deadline:
        Passed through to :class:`QueryEngine`.
    checkpoint_path:
        Where :meth:`close` writes the shutdown checkpoint (``None`` skips
        checkpoint-on-exit).
    background_compaction:
        Run a :class:`BackgroundCompactor` so folds happen off the serving
        path (on by default, like a production deployment).
    max_queue_depth / client_rate / client_burst:
        Admission control (see :class:`AdmissionController`): bound on
        outstanding searches, and per-``X-Client-Id`` token-bucket rate
        limits.  Both default off — admission is opt-in.
    """

    def __init__(self, index: IngestingIndex, *, workers: int = 4,
                 cache_capacity: int = 1024, cache_ttl: float | None = None,
                 cache_segmented: bool = False,
                 default_deadline: float | None = None,
                 checkpoint_path: str | pathlib.Path | None = None,
                 background_compaction: bool = True,
                 registry: MetricsRegistry | None = None,
                 slow_query_ms: float | None = None,
                 profiler: SamplingProfiler | None = None,
                 history_interval: float = 5.0,
                 max_queue_depth: int | None = None,
                 client_rate: float | None = None,
                 client_burst: int = 10):
        if not isinstance(index, IngestingIndex):
            raise QueryError(
                "ServerApp serves an IngestingIndex (wrap the built index so "
                f"inserts hit the WAL + delta path), got {type(index).__name__}"
            )
        self.index = index
        self.engine = QueryEngine(
            index, workers=workers, cache_capacity=cache_capacity,
            cache_ttl=cache_ttl, cache_segmented=cache_segmented,
            default_deadline=default_deadline,
        )
        self.admission = AdmissionController(
            self.engine, max_queue_depth=max_queue_depth,
            client_rate=client_rate, client_burst=client_burst,
        )
        self._idempotency_lock = threading.Lock()
        self._idempotency: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.checkpoint_path = (
            pathlib.Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.compactor: Optional[BackgroundCompactor] = None
        if background_compaction:
            self.compactor = BackgroundCompactor(index).start()
        self._started = time.monotonic()
        self._requests: Counter = Counter()
        self._requests_lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._closed = False
        self.slow_query_log = SlowQueryLog(slow_query_ms)
        self.registry = registry or MetricsRegistry()
        self._bind_registry()
        # A continuously running profiler (--profile) is optional; the
        # on-demand /v1/debug/profile endpoint works without one.
        self.profiler = profiler
        self.history = MetricsHistory(
            self.registry, interval=history_interval).start()

    def _bind_registry(self) -> None:
        """Expose every subsystem through the Prometheus registry.

        The JSON payload and the exposition read the same locked counters
        (callback-backed instruments), so the two formats cannot disagree.
        """
        self.engine.metrics.bind_registry(self.registry)
        self.admission.bind_registry(self.registry)
        self.index.metrics.bind_registry(self.registry)
        obs_export.bind_cache(self.registry, self.engine.cache)
        obs_export.bind_runtime(self.registry, role="server", version=__version__)
        obs_export.bind_http_requests(self.registry, self.request_counts)
        self.registry.gauge(
            "repro_index_points", "Points currently queryable (tree + delta).",
        ).set_function(lambda: float(len(self.index)))
        self.registry.gauge(
            "repro_index_delta_points", "Points in the live delta segment.",
        ).set_function(lambda: float(len(self.index.delta)))
        self.registry.gauge(
            "repro_index_generation", "Index epoch (bumped by every mutation).",
        ).set_function(lambda: float(self.index.generation))
        self.registry.gauge(
            "repro_engine_workers", "Query-engine worker threads.",
        ).set(float(self.engine.workers))

    def request_counts(self) -> Dict[str, int]:
        """Requests received so far, by endpoint (a stable read surface)."""
        with self._requests_lock:
            return dict(self._requests)

    # -- routing (consumed by repro.server.http) ----------------------------------------

    def post_routes(self) -> Dict[str, Any]:
        """Path → handler for POST endpoints (the transport's routing table)."""
        return {
            "/v1/knn": self.handle_knn,
            "/v1/range": self.handle_range,
            "/v1/insert": self.handle_insert,
        }

    def get_routes(self) -> Dict[str, Any]:
        """Path → handler for GET endpoints."""
        return {
            "/v1/metrics": self.metrics,
            "/v1/healthz": self.health,
            "/v1/index": self.index_info,
        }

    def get_param_routes(self) -> Dict[str, Any]:
        """Path → handler for GET endpoints that consume the query string."""
        return {
            "/v1/debug/profile": self.debug_profile,
            "/v1/history": self.history_payload,
        }

    # -- wire-cache hooks (consumed by repro.server.async_http) -------------------------

    def wire_cacheable_routes(self) -> frozenset:
        """Read-only endpoints whose byte-identical answers may be cached
        at the transport layer (same request body → same response body,
        for as long as :meth:`wire_cache_epoch` holds still)."""
        return frozenset({"/v1/knn", "/v1/range"})

    def wire_cache_epoch(self) -> tuple:
        """A value that changes whenever any cached answer could change.

        ``(tree generation, last WAL sequence)``: the generation moves per
        compaction, the WAL sequence per insert — so a wire-cached answer
        is valid exactly while both stand still.  (The engine's own result
        cache can survive inserts by overlaying delta matches; a cache of
        serialised response bytes cannot, hence the stricter key.)
        """
        return (self.index.generation, self.index.wal.last_seq)

    # -- bookkeeping --------------------------------------------------------------------

    def _count(self, endpoint: str) -> None:
        with self._requests_lock:
            self._requests[endpoint] += 1

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; endpoints refuse further work."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ServerClosingError("the server is shutting down")

    # -- query endpoints ----------------------------------------------------------------

    def handle_knn(self, body: Any) -> Dict[str, Any]:
        """``POST /v1/knn`` — single or batched k-NN queries."""
        return self._handle_query(QueryKind.KNN, body, "knn")

    def handle_range(self, body: Any) -> Dict[str, Any]:
        """``POST /v1/range`` — single or batched range queries."""
        return self._handle_query(QueryKind.RANGE, body, "range")

    def _handle_query(self, kind: QueryKind, body: Any, endpoint: str) -> Dict[str, Any]:
        self._check_open()
        self._count(endpoint)
        with span("parse"):
            specs, batched = parse_query_request(body, kind)
        if self.admission.enabled:
            # After parsing (a malformed body should stay 400), before any
            # engine work: a shed request must not consume a worker.
            self.admission.admit(
                queries=len(specs),
                deadline=_strictest_deadline(specs, self.engine.default_deadline),
                client_id=current_context().client_id,
            )
        results = self.engine.execute_batch(specs)
        if self.slow_query_log.enabled:
            _observe_slow_queries(self.slow_query_log, results)
        with span("render"):
            return render_results(results, batched)

    # -- the write endpoint -------------------------------------------------------------

    def handle_insert(self, body: Any) -> Dict[str, Any]:
        """``POST /v1/insert`` — write one or many triples through WAL + delta.

        Every accepted triple is durable (WAL-appended) and queryable before
        the response is sent.  The response reports the WAL sequence numbers
        so a client can correlate with checkpoints.

        Sending an ``Idempotency-Key`` header makes the write safely
        retryable: a replayed key returns the original response (flagged
        ``"deduplicated": true``) instead of applying the batch again.
        That is what lets the HTTP client retry an insert whose first
        attempt died on a stale keep-alive socket *after* the server may
        already have applied it.
        """
        self._check_open()
        self._count("insert")
        idempotency_key = current_context().idempotency_key
        if idempotency_key is not None:
            with self._idempotency_lock:
                replay = self._idempotency.get(idempotency_key)
                if replay is not None:
                    self._idempotency.move_to_end(idempotency_key)
                    return {**replay, "deduplicated": True}
        inserts, batched = parse_insert_request(body)
        sequences: list = []
        try:
            for triple, document_id in inserts:
                sequences.append(self.index.insert(triple, document_id=document_id))
        except Exception as error:
            if sequences:
                # The applied prefix is WAL-durable and queryable; tell the
                # client exactly what landed so a retry can skip it.
                raise PartialInsertError(
                    f"insert {len(sequences) + 1} of {len(inserts)} failed: "
                    f"{type(error).__name__}: {error}",
                    accepted=len(sequences),
                    first_seq=sequences[0], last_seq=sequences[-1],
                ) from error
            raise
        if batched:
            response = {
                "accepted": len(sequences),
                "first_seq": sequences[0],
                "last_seq": sequences[-1],
            }
        else:
            response = {"seq": sequences[0], "delta_points": len(self.index.delta)}
        if idempotency_key is not None:
            # Remember only fully applied batches: a partial failure must
            # surface on the retry too, not replay as a success.
            with self._idempotency_lock:
                self._idempotency[idempotency_key] = response
                while len(self._idempotency) > IDEMPOTENCY_CACHE_LIMIT:
                    self._idempotency.popitem(last=False)
        return response

    # -- observability endpoints --------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz`` — liveness plus the vitals a probe wants."""
        self._count("healthz")
        return {
            "status": "closing" if self._closed else "ok",
            "generation": self.index.generation,
            "points": len(self.index),
            "uptime_seconds": time.monotonic() - self._started,
        }

    def index_info(self) -> Dict[str, Any]:
        """``GET /v1/index`` — what is being served: shape, config, kernel."""
        self._check_open()
        self._count("index")
        config = self.index.base.config
        return {
            "generation": self.index.generation,
            "points": len(self.index),
            "tree_points": len(self.index.base),
            "delta_points": len(self.index.delta),
            "applied_seq": self.index.applied_seq,
            "last_seq": self.index.wal.last_seq,
            "kernel": config.scan_kernel,
            "config": config_to_dict(config),
        }

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics`` — the unified serving + cache + ingest payload."""
        self._count("metrics")
        # One source for serving + cache: QueryEngine.statistics() (its
        # cache section is CacheStats.to_dict() verbatim); the server only
        # splits the sections apart and zero-fills the latency block.
        serving = self.engine.statistics()
        cache = serving.pop("cache")
        serving.setdefault("latency_ms", dict(_EMPTY_LATENCY))

        raw_ingest = self.index.statistics()
        compaction_ms = raw_ingest.get("compaction_ms", dict(_EMPTY_COMPACTION))
        ingest = {
            "inserts": raw_ingest["inserts"],
            "replayed": raw_ingest["replayed"],
            "wall_seconds": raw_ingest["ingest_wall_seconds"],
            "qps": raw_ingest["ingest_qps"],
            "compactions": raw_ingest["compactions"],
            "points_compacted": raw_ingest["points_compacted"],
            "compaction_ms": compaction_ms,
            "compaction_threshold": raw_ingest["compaction_threshold"],
            "delta_points": raw_ingest["delta_points"],
            "wal_records": raw_ingest["wal_records"],
            "applied_seq": raw_ingest["applied_seq"],
            "last_seq": raw_ingest["last_seq"],
        }

        index = {
            "generation": self.index.generation,
            "points": len(self.index),
            "tree_points": len(self.index.base),
            "kernel": self.index.base.config.scan_kernel,
            "dimensions": self.index.base.config.dimensions,
        }

        with self._requests_lock:
            requests = dict(self._requests)
        server = {
            "uptime_seconds": time.monotonic() - self._started,
            "requests": requests,
            "background_compaction": self.compactor is not None,
            "admission": self.admission.snapshot(),
        }

        return json_ready({
            "serving": serving,
            "cache": cache,
            "ingest": ingest,
            "index": index,
            "server": server,
        })

    def debug_profile(self, params: Dict[str, str]):
        """``GET /v1/debug/profile`` — sample the process and render the profile."""
        self._count("debug_profile")
        return profile_endpoint(params, self.profiler)

    def history_payload(self, params: Dict[str, str]) -> Dict[str, Any]:
        """``GET /v1/history`` — the in-process metrics history ring buffer."""
        self._count("history")
        return self.history.payload()

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus`` — text exposition v0.0.4.

        Rendered from the same registry whose callbacks read the counters
        behind :meth:`metrics`, so the two formats cannot disagree.
        """
        self._count("metrics")
        return self.registry.render()

    # -- lifecycle ----------------------------------------------------------------------

    def close(self, *, checkpoint: bool | None = None) -> Optional[int]:
        """Graceful shutdown: drain workers, checkpoint, close the WAL.

        ``checkpoint`` defaults to "yes iff a ``checkpoint_path`` was
        configured".  Returns the checkpointed ``wal_seq`` (``None`` when no
        checkpoint was written).  Idempotent.
        """
        if checkpoint is None:
            checkpoint = self.checkpoint_path is not None
        # Validate before any teardown: raising mid-close would leave the
        # app half shut down (closed flag set, WAL still open) with every
        # retry a no-op.
        if checkpoint and self.checkpoint_path is None:
            raise QueryError("cannot checkpoint: no checkpoint_path configured")
        # Atomic test-and-set: a signal handler and a context-manager exit
        # may race to close; exactly one caller runs the teardown.
        with self._close_lock:
            if self._closed:
                return None
            self._closed = True
        self.history.stop()
        if self.profiler is not None:
            self.profiler.stop()
        if self.compactor is not None:
            self.compactor.stop()
        self.engine.close(wait=True)
        wal_seq: Optional[int] = None
        if checkpoint:
            wal_seq = self.index.checkpoint(self.checkpoint_path)
        self.index.close()
        return wal_seq

    def __enter__(self) -> "ServerApp":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServerApp(index={self.index!r}, engine={self.engine!r}, "
            f"closed={self._closed})"
        )
