"""``python -m repro.workloads`` — drive a live server with a mixed workload.

The CLI face of :func:`~repro.workloads.http_client.generate_load`: harvest
query triples from the snapshot the server booted from, build a
reproducible k-NN/range mix, replay it from N client threads, and print
the throughput summary.  With ``--trace-sample`` one extra request is sent
with ``X-Debug-Trace`` after the timed run and its span tree is printed —
the quickest way to see where a request's wall time goes (see
``docs/observability.md``).

Example::

    python -m repro.workloads --url http://127.0.0.1:8080 \
        --snapshot snap.json --count 500 --threads 8 --trace-sample
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.server.bootstrap import harvest_triples
from repro.workloads.http_client import ServerClient, generate_load, query_payloads

__all__ = ["build_parser", "main", "print_span_tree"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Replay a reproducible mixed query workload against a "
                    "live repro.server (or coordinator) instance.",
    )
    parser.add_argument("--url", required=True,
                        help="base URL of the server, e.g. http://127.0.0.1:8080")
    parser.add_argument("--snapshot", required=True,
                        help="checkpoint snapshot to harvest query triples from "
                             "(the one the server booted from)")
    parser.add_argument("--wal", default=None,
                        help="optional WAL whose triples are harvested too")
    parser.add_argument("--count", type=int, default=200,
                        help="number of requests to send")
    parser.add_argument("--threads", type=int, default=4,
                        help="concurrent client threads")
    parser.add_argument("--k", type=int, default=3, help="k for k-NN queries")
    parser.add_argument("--radius", type=float, default=0.1,
                        help="radius for range queries")
    parser.add_argument("--knn-fraction", type=float, default=0.6,
                        help="share of k-NN queries in the mix")
    parser.add_argument("--repeat-fraction", type=float, default=0.3,
                        help="share of repeated queries (cache hits)")
    parser.add_argument("--seed", type=int, default=1,
                        help="workload mixing seed")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request HTTP timeout in seconds")
    parser.add_argument("--trace-sample", action="store_true",
                        help="after the run, send one request with X-Debug-Trace "
                             "and print its span tree")
    parser.add_argument("--cost-sample", action="store_true",
                        help="after the run, send one request with X-Debug-Trace "
                             "and print its per-span cost counters (distance "
                             "computations, buckets scanned, ...)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw summary as JSON instead of text")
    return parser


def print_span_tree(node, *, indent: int = 0, out=sys.stdout) -> None:
    """Render one span node (and its children) as an indented tree."""
    meta = node.get("meta") or {}
    detail = "".join(f" {key}={value}" for key, value in sorted(meta.items()))
    flag = " (in progress)" if node.get("in_progress") else ""
    print(f"{'  ' * indent}{node['name']:<12} "
          f"{node['duration_ms']:8.2f} ms  "
          f"@{node['start_ms']:.2f}{detail}{flag}", file=out)
    for child in node.get("children", ()):
        print_span_tree(child, indent=indent + 1, out=out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    triples = harvest_triples(args.snapshot, args.wal)
    payloads = query_payloads(
        triples, args.count, k=args.k, radius=args.radius,
        knn_fraction=args.knn_fraction, repeat_fraction=args.repeat_fraction,
        seed=args.seed,
    )
    with ServerClient(args.url, timeout=args.timeout) as client:
        client.wait_ready()
    summary = generate_load(args.url, payloads, threads=args.threads,
                            timeout=args.timeout,
                            trace_sample=args.trace_sample,
                            cost_sample=args.cost_sample)
    trace = summary.pop("trace_sample", None)
    costs = summary.pop("cost_sample", None)
    if args.as_json:
        payload = dict(summary)
        if args.trace_sample:
            payload["trace_sample"] = trace
        if args.cost_sample:
            payload["cost_sample"] = costs
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{int(summary['requests'])} requests over "
          f"{int(summary['threads'])} threads in "
          f"{summary['wall_seconds']:.2f}s -> {summary['qps']:.1f} qps")
    print(f"latency ms: mean {summary['latency_ms_mean']:.2f}  "
          f"p50 {summary['latency_ms_p50']:.2f}  "
          f"p90 {summary['latency_ms_p90']:.2f}  "
          f"p99 {summary['latency_ms_p99']:.2f}")
    if args.trace_sample:
        if trace is None:
            print("trace sample: server returned no debug.trace section")
        else:
            print(f"trace sample {trace['trace_id']} "
                  f"({trace['duration_ms']:.2f} ms):")
            for root in trace["spans"]:
                print_span_tree(root, indent=1)
    if args.cost_sample:
        if not costs:
            print("cost sample: no cost annotations in the sampled request "
                  "(a cached result runs no search)")
        else:
            print("cost sample:")
            for entry in costs:
                label = entry["span"]
                if entry.get("partition") is not None:
                    label += f"[{entry['partition']}]"
                breakdown = "  ".join(
                    f"{name}={value}"
                    for name, value in sorted(entry["cost"].items()))
                indent = "    " if entry.get("partition") is not None else "  "
                print(f"{indent}{label}: {breakdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
