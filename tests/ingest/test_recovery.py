"""Durable recovery: checkpoint snapshot + WAL tail replay answers identically."""

import pytest

from ingest_corpus import INSERT_TRIPLES, QUERY_TRIPLES, canonical
from repro.errors import ParseError
from repro.ingest import IngestingIndex
from repro.service import snapshot_wal_seq


def oracle_index(make_base, inserted):
    oracle = make_base()
    for triple, document_id in inserted:
        oracle.insert_triple(triple, document_id=document_id)
    return oracle


def assert_answers_identical(recovered, oracle):
    for query in QUERY_TRIPLES:
        for k in (1, 3, 6):
            assert canonical(recovered.k_nearest(query, k)) == \
                canonical(oracle.k_nearest(query, k))
        for radius in (0.1, 0.3):
            assert canonical(recovered.range_query(query, radius)) == \
                canonical(oracle.range_query(query, radius))


class TestCheckpointRecover:
    def test_kill_and_recover_answers_identically(self, make_base, distance, tmp_path):
        """The acceptance scenario: checkpoint, keep inserting, die without a
        clean shutdown, recover from snapshot + WAL tail."""
        wal_path = tmp_path / "wal.jsonl"
        snap_path = tmp_path / "snap.json"
        inserted = [(triple, f"doc-{position}")
                    for position, triple in enumerate(INSERT_TRIPLES)]

        live = IngestingIndex(make_base(), wal_path, compaction_threshold=3)
        for triple, document_id in inserted[:4]:
            live.insert(triple, document_id=document_id)
        live.compact()
        live.checkpoint(snap_path, compact_first=False, truncate_wal=False)
        for triple, document_id in inserted[4:]:
            live.insert(triple, document_id=document_id)
        # no close(), no final checkpoint: simulate a crash
        del live

        recovered = IngestingIndex.recover(snap_path, wal_path, distance)
        assert len(recovered) == len(make_base()) + len(inserted)
        assert len(recovered.delta) == len(inserted) - 4  # the replayed tail
        assert_answers_identical(recovered, oracle_index(make_base, inserted))

    def test_recovery_restores_provenance(self, make_base, distance, tmp_path):
        wal_path = tmp_path / "wal.jsonl"
        snap_path = tmp_path / "snap.json"
        live = IngestingIndex(make_base(), wal_path)
        live.checkpoint(snap_path)
        live.insert(INSERT_TRIPLES[0], document_id="doc-x")
        recovered = IngestingIndex.recover(snap_path, wal_path, distance)
        (match,) = recovered.k_nearest(INSERT_TRIPLES[0], 1)
        assert "doc-x" in match.documents

    def test_replay_does_not_duplicate_snapshotted_provenance(self, make_base,
                                                              distance, tmp_path):
        """Regression: the snapshot persists provenance of delta-resident
        inserts too, so the WAL-tail replay must not register it again."""
        wal_path = tmp_path / "wal.jsonl"
        snap_path = tmp_path / "snap.json"
        live = IngestingIndex(make_base(), wal_path)
        live.insert(INSERT_TRIPLES[0], document_id="doc-x")
        (before,) = live.k_nearest(INSERT_TRIPLES[0], 1)
        # snapshot while the insert is still delta-resident (in the WAL tail)
        live.checkpoint(snap_path, compact_first=False, truncate_wal=False)

        recovered = IngestingIndex.recover(snap_path, wal_path, distance)
        (after,) = recovered.k_nearest(INSERT_TRIPLES[0], 1)
        assert after.documents == before.documents == ("doc-x",)

    def test_checkpoint_overwrite_is_atomic(self, make_base, tmp_path):
        """The snapshot is written to a staging file and renamed into place,
        so no moment exists at which the old recovery point is gone."""
        wal_path = tmp_path / "wal.jsonl"
        snap_path = tmp_path / "snap.json"
        live = IngestingIndex(make_base(), wal_path)
        live.checkpoint(snap_path)
        first = snap_path.read_text()
        live.insert(INSERT_TRIPLES[0])
        live.checkpoint(snap_path)
        assert snap_path.read_text() != first
        assert not snap_path.with_suffix(".json.staging").exists()

    def test_checkpoint_defaults_fold_and_truncate(self, make_base, distance, tmp_path):
        wal_path = tmp_path / "wal.jsonl"
        snap_path = tmp_path / "snap.json"
        live = IngestingIndex(make_base(), wal_path, compaction_threshold=100)
        for triple in INSERT_TRIPLES[:5]:
            live.insert(triple)
        applied = live.checkpoint(snap_path)
        assert applied == 5
        assert snapshot_wal_seq(snap_path) == 5
        assert len(live.wal) == 0          # everything is covered by the snapshot
        assert len(live.delta) == 0        # compact_first folded the delta
        live.insert(INSERT_TRIPLES[5])     # sequence numbering continues
        assert live.wal.last_seq == 6

        recovered = IngestingIndex.recover(snap_path, wal_path, distance)
        inserted = [(triple, None) for triple in INSERT_TRIPLES[:6]]
        assert_answers_identical(recovered, oracle_index(make_base, inserted))

    def test_recovered_index_keeps_ingesting_and_compacting(self, make_base, distance,
                                                            tmp_path):
        wal_path = tmp_path / "wal.jsonl"
        snap_path = tmp_path / "snap.json"
        live = IngestingIndex(make_base(), wal_path, compaction_threshold=2)
        live.insert(INSERT_TRIPLES[0])
        live.checkpoint(snap_path, compact_first=True, truncate_wal=True)

        recovered = IngestingIndex.recover(snap_path, wal_path, distance,
                                           compaction_threshold=2)
        for triple in INSERT_TRIPLES[1:4]:
            recovered.insert(triple)
        recovered.compact()
        inserted = [(triple, None) for triple in INSERT_TRIPLES[:4]]
        assert_answers_identical(recovered, oracle_index(make_base, inserted))

    def test_recover_insert_crash_recover_loses_nothing(self, make_base, distance,
                                                        tmp_path):
        """Regression: after a truncating checkpoint, a recovered process must
        keep WAL numbering past the snapshot's applied seq — otherwise its
        inserts are invisible to the *next* recovery's tail replay."""
        wal_path = tmp_path / "wal.jsonl"
        snap_path = tmp_path / "snap.json"
        live = IngestingIndex(make_base(), wal_path)
        live.insert(INSERT_TRIPLES[0])
        live.checkpoint(snap_path)      # folds, snapshots wal_seq=1, truncates
        live.close()

        second = IngestingIndex.recover(snap_path, wal_path, distance)
        assert second.wal.last_seq == 1  # numbering continues past the snapshot
        for triple in INSERT_TRIPLES[1:4]:
            second.insert(triple)
        del second                       # crash again, no checkpoint

        third = IngestingIndex.recover(snap_path, wal_path, distance)
        assert third.statistics()["replayed"] == 3
        inserted = [(triple, None) for triple in INSERT_TRIPLES[:4]]
        assert_answers_identical(third, oracle_index(make_base, inserted))

    def test_constructor_replays_a_dirty_wal(self, make_base, tmp_path):
        """Crash before any checkpoint: a rebuilt base + full WAL replay."""
        wal_path = tmp_path / "wal.jsonl"
        live = IngestingIndex(make_base(), wal_path)
        for triple in INSERT_TRIPLES[:3]:
            live.insert(triple)
        del live

        reopened = IngestingIndex(make_base(), wal_path)
        assert len(reopened.delta) == 3
        assert reopened.statistics()["replayed"] == 3
        inserted = [(triple, None) for triple in INSERT_TRIPLES[:3]]
        assert_answers_identical(reopened, oracle_index(make_base, inserted))

    def test_recover_rejects_a_non_snapshot(self, distance, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        with pytest.raises(ParseError):
            IngestingIndex.recover(bogus, tmp_path / "wal.jsonl", distance)
