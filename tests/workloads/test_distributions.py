"""Tests for the synthetic point distributions."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    clustered_points,
    grid_points,
    skewed_points,
    sorted_points,
    uniform_points,
)


class TestUniform:
    def test_count_dimensions_and_range(self):
        points = uniform_points(100, 3, seed=1)
        assert len(points) == 100
        assert all(p.dimensions == 3 for p in points)
        assert all(0.0 <= value <= 1.0 for p in points for value in p.coordinates)

    def test_custom_range(self):
        points = uniform_points(50, 2, seed=1, low=-1.0, high=2.0)
        assert all(-1.0 <= value <= 2.0 for p in points for value in p.coordinates)

    def test_deterministic_per_seed(self):
        assert uniform_points(10, 2, seed=5) == uniform_points(10, 2, seed=5)
        assert uniform_points(10, 2, seed=5) != uniform_points(10, 2, seed=6)

    def test_labels_are_sequential(self):
        assert [p.label for p in uniform_points(5, 1)] == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("kwargs", [
        {"count": 0, "dimensions": 2},
        {"count": 5, "dimensions": 0},
        {"count": 5, "dimensions": 2, "low": 1.0, "high": 0.0},
    ])
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(WorkloadError):
            uniform_points(**kwargs)


class TestClusteredAndSkewed:
    def test_clustered_points_are_concentrated(self):
        points = clustered_points(200, 2, clusters=2, spread=0.01, seed=2)
        assert len(points) == 200
        xs = sorted(p[0] for p in points)
        # with 2 tight clusters the middle of the sorted values has a big gap
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert max(gaps) > 0.05

    def test_clustered_invalid_clusters(self):
        with pytest.raises(WorkloadError):
            clustered_points(10, 2, clusters=0)

    def test_skewed_points_bounded(self):
        points = skewed_points(100, 2, rate=5.0, seed=3)
        assert all(0.0 <= value <= 1.0 for p in points for value in p.coordinates)

    def test_skewed_invalid_rate(self):
        with pytest.raises(WorkloadError):
            skewed_points(10, 2, rate=0.0)


class TestSortedAndGrid:
    def test_sorted_points_are_lexicographically_ordered(self):
        points = sorted_points(50, 2, seed=4)
        coordinates = [p.coordinates for p in points]
        assert coordinates == sorted(coordinates)
        assert [p.label for p in points] == list(range(50))

    def test_grid_points_shape(self):
        points = grid_points(side=4, dimensions=2)
        assert len(points) == 16
        assert len({p.coordinates for p in points}) == 16

    def test_grid_rejects_huge_outputs(self):
        with pytest.raises(WorkloadError):
            grid_points(side=200, dimensions=4)

    def test_grid_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            grid_points(side=0, dimensions=2)
