"""ShardTopology parsing and validation."""

from __future__ import annotations

import json

import pytest

from repro.coordinator import ShardTopology
from repro.errors import ShardError


def test_parse_inline_form():
    topology = ShardTopology.parse(
        "P0=http://127.0.0.1:9000, P1=http://127.0.0.1:9001,"
    )
    assert topology.partition_ids == ("P0", "P1")
    assert topology.url_of("P1") == "http://127.0.0.1:9001"


def test_parse_strips_trailing_slash():
    topology = ShardTopology.parse("P0=http://host:9000/")
    assert topology.url_of("P0") == "http://host:9000"


def test_parse_rejects_entries_without_separator():
    with pytest.raises(ShardError, match="PARTITION_ID=http"):
        ShardTopology.parse("P0;http://host:9000")


def test_rejects_empty_topology():
    with pytest.raises(ShardError, match="at least one shard"):
        ShardTopology.parse("")


def test_rejects_non_http_urls():
    with pytest.raises(ShardError, match="http base URL"):
        ShardTopology({"P0": "ftp://host"})


def test_from_file(tmp_path):
    path = tmp_path / "topology.json"
    path.write_text(json.dumps({"P0": "http://a:1", "P2": "http://b:2/"}))
    topology = ShardTopology.from_file(path)
    assert topology.partition_ids == ("P0", "P2")
    assert topology.url_of("P2") == "http://b:2"


def test_from_file_rejects_non_object(tmp_path):
    path = tmp_path / "topology.json"
    path.write_text("[1, 2]")
    with pytest.raises(ShardError, match="one JSON object"):
        ShardTopology.from_file(path)


def test_unknown_partition_is_a_shard_error():
    topology = ShardTopology.parse("P0=http://host:9000")
    with pytest.raises(ShardError, match="no shard serves partition 'P9'"):
        topology.url_of("P9")


def test_missing_reports_uncovered_partitions():
    topology = ShardTopology.parse("P0=http://host:9000")
    assert topology.missing(["P0", "P1", "P2"]) == ["P1", "P2"]
    assert topology.missing(["P0"]) == []
