"""Structured JSON logging with trace-id correlation, plus the slow-query log.

Log records are rendered as one JSON object per line: timestamp, level,
logger, message, the active trace id (from :mod:`repro.obs.tracing`, or an
explicit ``trace_id`` extra), and any other ``extra`` fields the caller
attached.  Libraries log through :func:`get_logger` without configuring
anything — records are dropped unless an entry point called
:func:`configure_logging`, so embedding the server in tests or benchmarks
stays silent by default while ``caplog`` still sees every record.

:class:`SlowQueryLog` is the threshold-configurable slow-query channel:
any executed query slower than the threshold is logged at WARNING on
``repro.slow_query`` with its shape, visited partitions, and span
breakdown.  The default threshold comes from ``REPRO_SLOW_QUERY_MS``
(unset == disabled).
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
from typing import IO, Dict, Optional, Sequence

from repro.obs import tracing

__all__ = [
    "JsonLogFormatter",
    "SlowQueryLog",
    "configure_logging",
    "get_logger",
]

SLOW_QUERY_ENV = "REPRO_SLOW_QUERY_MS"
SLOW_QUERY_LOGGER = "repro.slow_query"

#: Attributes every LogRecord carries; anything else came in via ``extra``.
_STANDARD_ATTRS = frozenset(vars(logging.makeLogRecord({}))) | {
    "message", "asctime", "taskName",
}


class JsonLogFormatter(logging.Formatter):
    """Render each record as a single JSON object with trace correlation."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, object] = {
            "ts": self.formatTime(record, datefmt="%Y-%m-%dT%H:%M:%S")
                  + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None)
        if trace_id is None:
            trace = tracing.current_trace()
            trace_id = trace.trace_id if trace is not None else None
        if trace_id is not None:
            payload["trace_id"] = trace_id
        for key, value in record.__dict__.items():
            if key in _STANDARD_ATTRS or key in payload:
                continue
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=repr)

    def formatTime(self, record, datefmt=None):  # noqa: N802 (logging API)
        import time as _time
        return _time.strftime(datefmt or "%Y-%m-%dT%H:%M:%S",
                              _time.gmtime(record.created))


_configure_lock = threading.Lock()


def get_logger(name: str) -> logging.Logger:
    """The ``repro``-namespaced logger for ``name``."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging(level: int = logging.INFO,
                      stream: Optional[IO[str]] = None) -> logging.Logger:
    """Attach the JSON handler to the ``repro`` logger tree (idempotent).

    Entry points (``__main__`` modules, tools) call this once; library code
    never does, so importing ``repro`` cannot hijack a host application's
    logging configuration.
    """
    root = logging.getLogger("repro")
    with _configure_lock:
        root.setLevel(level)
        for handler in root.handlers:
            if getattr(handler, "_repro_json_handler", False):
                handler.setLevel(level)
                return root
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(JsonLogFormatter())
        handler.setLevel(level)
        handler._repro_json_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
        root.propagate = False
    return root


def _threshold_from_env() -> Optional[float]:
    raw = os.environ.get(SLOW_QUERY_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        return float(raw)
    except ValueError:
        return None


class SlowQueryLog:
    """Log executed queries slower than a millisecond threshold.

    ``threshold_ms=None`` (the default) reads ``REPRO_SLOW_QUERY_MS`` from
    the environment; when that is unset too, the log is disabled and
    :meth:`observe` is a cheap comparison.
    """

    def __init__(self, threshold_ms: Optional[float] = None,
                 logger: Optional[logging.Logger] = None):
        self.threshold_ms = threshold_ms if threshold_ms is not None else _threshold_from_env()
        self._logger = logger or logging.getLogger(SLOW_QUERY_LOGGER)
        self._lock = threading.Lock()
        self._logged = 0

    @property
    def enabled(self) -> bool:
        """Whether a threshold is configured."""
        return self.threshold_ms is not None

    @property
    def logged(self) -> int:
        """How many slow queries have been logged."""
        with self._lock:
            return self._logged

    def observe(self, *, kind: str, latency_seconds: float,
                query: Optional[Dict[str, object]] = None,
                visited_partitions: Sequence[str] = (),
                cached: bool = False,
                trace: Optional[tracing.Trace] = None,
                cost: Optional[Dict[str, int]] = None) -> bool:
        """Log one served query if it crossed the threshold; returns whether it did.

        ``cost`` is the query's cost-counter breakdown (already a plain
        dictionary) — attached so a slow-query record explains *why* it was
        slow (distance computations, buckets scanned) and not just how long
        it took.
        """
        threshold = self.threshold_ms
        if threshold is None:
            return False
        latency_ms = latency_seconds * 1000.0
        if latency_ms < threshold:
            return False
        with self._lock:
            self._logged += 1
        if trace is None:
            trace = tracing.current_trace()
        extra: Dict[str, object] = {
            "event": "slow_query",
            "kind": kind,
            "latency_ms": latency_ms,
            "threshold_ms": threshold,
            "cached": cached,
            "visited_partitions": list(visited_partitions),
        }
        if query:
            extra["query"] = query
        if cost:
            extra["cost"] = dict(cost)
        if trace is not None:
            extra["trace_id"] = trace.trace_id
            extra["spans"] = trace.to_dict()["spans"]
        self._logger.warning("slow query: %s took %.1f ms", kind, latency_ms,
                             extra=extra)
        return True
