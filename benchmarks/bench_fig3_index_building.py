"""Figure 3 — Index building time.

The paper plots the running time of index building while varying the number
of points, for five configurations: 1 partition (balanced), 3, 5 and 9
partitions, and 1 partition totally unbalanced.

The reproduction sweeps the same configurations over a synthetic uniform
point workload and reports, for each, the wall-clock build time (dynamic
insertion of every point) and — for the distributed configurations — the
simulated parallel cost (critical path) and message count.  Expected shape
(asserted by the report test):

* every curve grows with the number of points;
* the totally unbalanced single partition is by far the most expensive
  configuration at the largest size (insertion cost degenerates to O(N²));
* the simulated parallel cost decreases as partitions are added.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.baselines import SequentialKDTreeBaseline
from repro.cluster import SimulatedCluster
from repro.core import DistributedSemTree, SemTreeConfig, SplitStrategy
from repro.evaluation import Experiment, measure
from repro.workloads import sorted_points, uniform_points

from .conftest import write_report

DIMENSIONS = 4
BUCKET_SIZE = 16
POINT_COUNTS = (500, 1_000, 2_000, 4_000)
PARTITION_COUNTS = (3, 5, 9)
BENCH_POINTS = 2_000


def _config(partitions: int) -> SemTreeConfig:
    return SemTreeConfig(
        dimensions=DIMENSIONS, bucket_size=BUCKET_SIZE, max_partitions=partitions,
        partition_capacity=max(64, BUCKET_SIZE * partitions),
    )


def _chain_config() -> SemTreeConfig:
    return _config(1).with_updates(split_strategy=SplitStrategy.FIRST_POINT, bucket_size=1)


def _build_distributed(count: int, partitions: int) -> Dict[str, float]:
    points = uniform_points(count, DIMENSIONS, seed=1)
    cluster = SimulatedCluster(node_count=max(partitions, 1))
    tree = DistributedSemTree(_config(partitions), cluster=cluster)
    sample = measure(lambda: tree.insert_all(points), cluster=cluster)
    return {
        "wall_ms": sample.wall_ms,
        "simulated_cost": sample.simulated_critical_path or 0.0,
        "messages": float(sample.messages or 0),
    }


def _build_sequential(count: int, *, unbalanced: bool) -> Dict[str, float]:
    if unbalanced:
        points = sorted_points(count, DIMENSIONS, seed=1)
        config = _chain_config()
    else:
        points = uniform_points(count, DIMENSIONS, seed=1)
        config = _config(1)
    baseline = SequentialKDTreeBaseline(config)
    sample = measure(lambda: baseline.insert_all(points))
    return {
        "wall_ms": sample.wall_ms,
        "messages": 0.0,
        "tree_depth": float(baseline.tree.depth()),
    }


# -- pytest-benchmark cases (representative size) -----------------------------------------

@pytest.mark.benchmark(group="fig3-index-building")
def test_build_single_partition_balanced(benchmark):
    points = uniform_points(BENCH_POINTS, DIMENSIONS, seed=1)

    def run():
        baseline = SequentialKDTreeBaseline(_config(1))
        baseline.insert_all(points)
        return len(baseline)

    assert benchmark.pedantic(run, rounds=3, iterations=1) == BENCH_POINTS


@pytest.mark.benchmark(group="fig3-index-building")
def test_build_single_partition_unbalanced_chain(benchmark):
    points = sorted_points(BENCH_POINTS, DIMENSIONS, seed=1)

    def run():
        baseline = SequentialKDTreeBaseline(_chain_config())
        baseline.insert_all(points)
        return len(baseline)

    assert benchmark.pedantic(run, rounds=2, iterations=1) == BENCH_POINTS


@pytest.mark.parametrize("partitions", PARTITION_COUNTS)
@pytest.mark.benchmark(group="fig3-index-building")
def test_build_distributed(benchmark, partitions):
    points = uniform_points(BENCH_POINTS, DIMENSIONS, seed=1)

    def run():
        tree = DistributedSemTree(_config(partitions))
        tree.insert_all(points)
        return len(tree)

    assert benchmark.pedantic(run, rounds=3, iterations=1) == BENCH_POINTS


# -- the figure itself ------------------------------------------------------------------------

@pytest.mark.benchmark(group="fig3-index-building")
def test_report_fig3(benchmark, results_dir):
    def run_sweep() -> Experiment:
        experiment = Experiment(
            experiment_id="fig3_index_building_time",
            description="Index building time vs number of points (Fig. 3)",
            swept_parameter="points",
        )
        for count in POINT_COUNTS:
            experiment.record("1 partition (balanced)", count,
                              **_build_sequential(count, unbalanced=False))
            experiment.record("1 partition (totally unbalanced)", count,
                              **_build_sequential(count, unbalanced=True))
            for partitions in PARTITION_COUNTS:
                experiment.record(f"{partitions} partitions", count,
                                  **_build_distributed(count, partitions))
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # Shape assertions (see module docstring).
    for series in experiment.series.values():
        values = series.values("wall_ms")
        assert series.is_non_decreasing("wall_ms", tolerance=max(values) * 0.25)
    unbalanced_wall = experiment.series["1 partition (totally unbalanced)"].values("wall_ms")[-1]
    balanced_wall = experiment.series["1 partition (balanced)"].values("wall_ms")[-1]
    assert unbalanced_wall > balanced_wall
    sim_3 = experiment.series["3 partitions"].values("simulated_cost")[-1]
    sim_9 = experiment.series["9 partitions"].values("simulated_cost")[-1]
    assert sim_9 < sim_3

    write_report(results_dir, experiment, ["wall_ms", "simulated_cost", "messages"])
