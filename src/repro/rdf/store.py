"""An in-memory triple store with pattern matching.

The store is the substrate that holds the triples extracted from documents
before they are embedded and indexed by SemTree.  It provides:

* insertion of triples, individually or in bulk, with optional provenance
  (the document each triple came from);
* exact pattern matching on any combination of bound positions, served by
  three hash indexes (SPO / POS / OSP style);
* deletion and iteration in insertion order (the paper notes that triple
  order reflects the temporal order of requirement elements).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.rdf.terms import Term
from repro.rdf.triple import Triple, TriplePattern

__all__ = ["TripleStore"]


class TripleStore:
    """An insertion-ordered, hash-indexed collection of triples.

    Duplicate triples are stored once; re-adding an existing triple is a
    no-op (but may attach additional provenance).
    """

    def __init__(self, triples: Iterable[Triple] | None = None):
        # Insertion-ordered primary storage: triple -> insertion index.
        self._order: Dict[Triple, int] = {}
        self._next_index = 0
        # Secondary hash indexes by single bound position.
        self._by_subject: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_predicate: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_object: Dict[Term, Set[Triple]] = defaultdict(set)
        # Provenance: triple -> set of document identifiers.
        self._provenance: Dict[Triple, Set[str]] = defaultdict(set)
        if triples:
            self.add_all(triples)

    # -- mutation ---------------------------------------------------------------

    def add(self, triple: Triple, *, document_id: str | None = None) -> bool:
        """Add a triple; return ``True`` if it was not already present."""
        added = triple not in self._order
        if added:
            self._order[triple] = self._next_index
            self._next_index += 1
            self._by_subject[triple.subject].add(triple)
            self._by_predicate[triple.predicate].add(triple)
            self._by_object[triple.object].add(triple)
        if document_id is not None:
            self._provenance[triple].add(document_id)
        return added

    def add_all(self, triples: Iterable[Triple], *, document_id: str | None = None) -> int:
        """Add many triples; return how many were new."""
        return sum(1 for triple in triples if self.add(triple, document_id=document_id))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple; return ``True`` if it was present."""
        if triple not in self._order:
            return False
        del self._order[triple]
        self._discard_from_index(self._by_subject, triple.subject, triple)
        self._discard_from_index(self._by_predicate, triple.predicate, triple)
        self._discard_from_index(self._by_object, triple.object, triple)
        self._provenance.pop(triple, None)
        return True

    @staticmethod
    def _discard_from_index(index: Dict[Term, Set[Triple]], key: Term, triple: Triple) -> None:
        bucket = index.get(key)
        if bucket is None:
            return
        bucket.discard(triple)
        if not bucket:
            del index[key]

    def clear(self) -> None:
        """Remove every triple."""
        self._order.clear()
        self._by_subject.clear()
        self._by_predicate.clear()
        self._by_object.clear()
        self._provenance.clear()
        self._next_index = 0

    # -- queries ----------------------------------------------------------------

    def match(self, pattern: TriplePattern) -> List[Triple]:
        """Return every stored triple matching ``pattern`` in insertion order."""
        candidates = self._candidates(pattern)
        matched = [triple for triple in candidates if pattern.matches(triple)]
        matched.sort(key=self._order.__getitem__)
        return matched

    def _candidates(self, pattern: TriplePattern) -> Iterable[Triple]:
        """Pick the smallest applicable hash bucket as the candidate set."""
        buckets: List[Set[Triple]] = []
        if pattern.subject is not None and not _is_wildcard(pattern.subject):
            buckets.append(self._by_subject.get(pattern.subject, set()))
        if pattern.predicate is not None and not _is_wildcard(pattern.predicate):
            buckets.append(self._by_predicate.get(pattern.predicate, set()))
        if pattern.object is not None and not _is_wildcard(pattern.object):
            buckets.append(self._by_object.get(pattern.object, set()))
        if not buckets:
            return list(self._order)
        return min(buckets, key=len)

    def subjects(self) -> List[Term]:
        """All distinct subjects, in first-appearance order."""
        return self._distinct(lambda t: t.subject)

    def predicates(self) -> List[Term]:
        """All distinct predicates, in first-appearance order."""
        return self._distinct(lambda t: t.predicate)

    def objects(self) -> List[Term]:
        """All distinct objects, in first-appearance order."""
        return self._distinct(lambda t: t.object)

    def _distinct(self, key) -> List[Term]:
        seen: Dict[Term, None] = {}
        for triple in self:
            seen.setdefault(key(triple), None)
        return list(seen)

    def documents_of(self, triple: Triple) -> Set[str]:
        """Return the set of document identifiers that contributed ``triple``."""
        return set(self._provenance.get(triple, set()))

    def triples_of_document(self, document_id: str) -> List[Triple]:
        """Return the triples attributed to ``document_id`` in insertion order."""
        found = [t for t, docs in self._provenance.items() if document_id in docs]
        found.sort(key=self._order.__getitem__)
        return found

    # -- dunder -------------------------------------------------------------------

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._order

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Triple]:
        return iter(sorted(self._order, key=self._order.__getitem__))

    def __repr__(self) -> str:
        return f"TripleStore(size={len(self)})"

    # -- misc ----------------------------------------------------------------------

    def statistics(self) -> Dict[str, int]:
        """Return simple store statistics (cardinalities of each position)."""
        return {
            "triples": len(self),
            "subjects": len(self._by_subject),
            "predicates": len(self._by_predicate),
            "objects": len(self._by_object),
            "documents": len({d for docs in self._provenance.values() for d in docs}),
        }


def _is_wildcard(term: Optional[Term]) -> bool:
    from repro.rdf.terms import Variable

    return term is None or isinstance(term, Variable)
