"""Semantic-distance substrate: taxonomies, similarity measures, vocabularies,
string distances, and the weighted triple distance of Eq. (1)."""

from repro.semantics.corpus import InformationContentCorpus
from repro.semantics.similarity import (
    ConceptSimilarity,
    JiangConrathSimilarity,
    LeacockChodorowSimilarity,
    LinSimilarity,
    PathSimilarity,
    ResnikSimilarity,
    WuPalmerSimilarity,
    similarity_by_name,
)
from repro.semantics.string_distance import (
    damerau_levenshtein,
    exact_match_distance,
    hamming,
    jaro,
    jaro_winkler,
    jaro_winkler_distance,
    levenshtein,
    normalised_levenshtein,
)
from repro.semantics.taxonomy import Taxonomy
from repro.semantics.triple_distance import DistanceWeights, TermDistance, TripleDistance
from repro.semantics.vocabulary import Vocabulary

__all__ = [
    "Taxonomy",
    "Vocabulary",
    "InformationContentCorpus",
    "ConceptSimilarity",
    "WuPalmerSimilarity",
    "PathSimilarity",
    "LeacockChodorowSimilarity",
    "ResnikSimilarity",
    "LinSimilarity",
    "JiangConrathSimilarity",
    "similarity_by_name",
    "levenshtein",
    "normalised_levenshtein",
    "damerau_levenshtein",
    "jaro",
    "jaro_winkler",
    "jaro_winkler_distance",
    "hamming",
    "exact_match_distance",
    "DistanceWeights",
    "TermDistance",
    "TripleDistance",
]
