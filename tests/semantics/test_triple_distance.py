"""Tests for the weighted triple distance of Eq. (1)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import DistanceError
from repro.rdf import Concept, Literal, Triple
from repro.semantics import (
    DistanceWeights,
    TermDistance,
    TripleDistance,
    jaro_winkler_distance,
)


@pytest.fixture
def term_distance(function_vocabulary) -> TermDistance:
    return TermDistance({"Fun": function_vocabulary})


@pytest.fixture
def triple_distance(term_distance) -> TripleDistance:
    return TripleDistance(term_distance, DistanceWeights(0.4, 0.2, 0.4))


class TestDistanceWeights:
    def test_default_weights_sum_to_one(self):
        weights = DistanceWeights()
        assert sum(weights.as_tuple()) == pytest.approx(1.0)

    def test_invalid_sum_rejected(self):
        with pytest.raises(DistanceError):
            DistanceWeights(0.5, 0.5, 0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(DistanceError):
            DistanceWeights(-0.2, 0.6, 0.6)

    def test_normalised_constructor(self):
        weights = DistanceWeights.normalised(2, 1, 1)
        assert weights.as_tuple() == pytest.approx((0.5, 0.25, 0.25))

    def test_normalised_rejects_all_zero(self):
        with pytest.raises(DistanceError):
            DistanceWeights.normalised(0, 0, 0)


class TestTermDistance:
    def test_identical_terms_distance_zero(self, term_distance):
        assert term_distance(Concept("accept_cmd", "Fun"), Concept("accept_cmd", "Fun")) == 0.0
        assert term_distance(Literal("abc"), Literal("abc")) == 0.0

    def test_concepts_in_vocabulary_use_taxonomy(self, term_distance):
        same_family = term_distance(Concept("accept_cmd", "Fun"), Concept("block_cmd", "Fun"))
        different_family = term_distance(Concept("accept_cmd", "Fun"), Concept("send_msg", "Fun"))
        assert same_family < different_family

    def test_literals_use_string_distance(self, term_distance):
        close = term_distance(Literal("start-up"), Literal("startup"))
        far = term_distance(Literal("start-up"), Literal("shutdown"))
        assert 0.0 < close < far <= 1.0

    def test_unknown_prefix_falls_back_to_string_distance(self, term_distance):
        value = term_distance(Concept("alpha", "Unknown"), Concept("alphb", "Unknown"))
        assert 0.0 < value < 1.0

    def test_mixed_concept_literal_falls_back_to_string_distance(self, term_distance):
        assert 0.0 <= term_distance(Concept("start-up", "CmdType"), Literal("start-up")) <= 1.0

    def test_register_vocabulary_later(self, function_vocabulary):
        term_distance = TermDistance()
        before = term_distance(Concept("accept_cmd", "Fun"), Concept("block_cmd", "Fun"))
        term_distance.register_vocabulary("Fun", function_vocabulary)
        after = term_distance(Concept("accept_cmd", "Fun"), Concept("block_cmd", "Fun"))
        assert after != before
        assert term_distance.vocabulary_for("Fun") is function_vocabulary

    def test_custom_string_distance(self):
        term_distance = TermDistance(string_distance=jaro_winkler_distance)
        assert term_distance(Literal("abc"), Literal("abd")) == pytest.approx(
            jaro_winkler_distance("abc", "abd")
        )


class TestTripleDistance:
    def test_identity(self, triple_distance):
        triple = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        assert triple_distance(triple, triple) == 0.0

    def test_symmetry(self, triple_distance):
        a = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        b = Triple.of("OBSW002", "Fun:block_cmd", "CmdType:shutdown")
        assert triple_distance(a, b) == pytest.approx(triple_distance(b, a))

    def test_range(self, triple_distance):
        a = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        b = Triple.of("XYZ", "Fun:withhold_tm", "TmType:pressure-frame")
        assert 0.0 <= triple_distance(a, b) <= 1.0

    def test_weighted_combination_matches_components(self, triple_distance):
        a = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        b = Triple.of("OBSW002", "Fun:block_cmd", "CmdType:start-up")
        components = triple_distance.components(a, b)
        expected = (0.4 * components["subject"] + 0.2 * components["predicate"]
                    + 0.4 * components["object"])
        assert triple_distance(a, b) == pytest.approx(expected)

    def test_antinomic_predicate_is_semantically_close(self, triple_distance):
        base = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        antinomic = Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up")
        unrelated = Triple.of("OBSW001", "Fun:transmit_tm", "CmdType:start-up")
        assert triple_distance(base, antinomic) < triple_distance(base, unrelated)

    def test_with_weights_builds_new_distance(self, triple_distance):
        subject_only = triple_distance.with_weights(DistanceWeights(1.0, 0.0, 0.0))
        a = Triple.of("same", "Fun:accept_cmd", "CmdType:start-up")
        b = Triple.of("same", "Fun:block_cmd", "CmdType:shutdown")
        assert subject_only(a, b) == 0.0
        assert triple_distance(a, b) > 0.0

    @given(i=st.integers(min_value=0, max_value=6), j=st.integers(min_value=0, max_value=6))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_distance_bounded_for_random_requirement_triples(self, triple_distance, i, j):
        functions = ["accept_cmd", "block_cmd", "send_msg", "suppress_msg", "acquire_in",
                     "enable_mode", "stop_proc"]
        a = Triple.of(f"OBSW{i:03d}", f"Fun:{functions[i]}", f"CmdType:param-{i}")
        b = Triple.of(f"OBSW{j:03d}", f"Fun:{functions[j]}", f"CmdType:param-{j}")
        value = triple_distance(a, b)
        assert 0.0 <= value <= 1.0
        if i == j:
            assert value == 0.0
