"""CoordinatorApp over HTTP: endpoints, metrics schema, read-only surface."""

from __future__ import annotations

import pytest

from coordinator_corpus import assert_equivalent
from repro.coordinator import CoordinatorApp, ShardedIndex
from repro.errors import ServerError
from repro.server import create_server
from repro.service.engine import QueryEngine
from repro.service.planner import QuerySpec
from repro.workloads import ServerClient


@pytest.fixture
def coordinator(corpus_index, shard_fleet, make_transport):
    index, triples, _ = corpus_index
    _, topology = shard_fleet
    view = ShardedIndex(index, make_transport(topology), scatter_workers=4)
    app = CoordinatorApp(view, workers=2)
    server = create_server(app).serve_background()
    client = ServerClient(server.url)
    yield server, client, index, triples
    if not app.closed:
        server.close()


def test_knn_and_range_over_http_match_the_oracle(coordinator):
    server, client, index, triples = coordinator
    oracle = QueryEngine(index, workers=1)
    try:
        for triple in triples[:6]:
            wire = client.knn(triple, 4)
            want = oracle.execute_sequential([QuerySpec.k_nearest(triple, 4)])[0]
            assert_equivalent(wire["matches"], want.matches, truncated=True)
            wire = client.range(triple, 0.2)
            want = oracle.execute_sequential([QuerySpec.range_query(triple, 0.2)])[0]
            assert_equivalent(wire["matches"], want.matches, truncated=False)
    finally:
        oracle.close()


def test_batched_queries_and_cache(coordinator):
    server, client, _, triples = coordinator
    payloads = [ServerClient.knn_payload(triples[0], 3)] * 3
    results = client.knn_batch(payloads)
    assert len(results) == 3
    assert results[0]["cached"] is False
    assert results[1]["cached"] and results[2]["cached"]
    # A repeat of the same query is a result-cache hit: no new fan-out.
    before = server.app.index.statistics()["queries"]
    again = client.knn(triples[0], 3)
    assert again["cached"] is True
    assert server.app.index.statistics()["queries"] == before


def test_insert_does_not_exist_on_a_coordinator(coordinator):
    _, client, _, triples = coordinator
    with pytest.raises(ServerError) as excinfo:
        client.insert(triples[0])
    assert excinfo.value.status == 404


def test_health_and_topology(coordinator):
    server, client, index, _ = coordinator
    health = client.health()
    assert health["role"] == "coordinator"
    assert health["points"] == len(index)
    topology = client.request("GET", "/v1/topology")
    assert set(topology["shards"]) == set(topology["partitions"])
    assert sum(topology["points_per_partition"].values()) == len(index)


def test_metrics_schema(coordinator):
    server, client, _, triples = coordinator
    client.knn(triples[0], 3)
    metrics = client.metrics()
    assert set(metrics) == {"serving", "cache", "shards", "coordinator"}
    shards = metrics["shards"]
    assert shards["queries"] >= 1
    assert shards["fan_out_mean"] >= 1.0
    for stats in shards["per_shard"].values():
        assert {"scans", "failures", "latency_ms"} <= set(stats)
    assert metrics["coordinator"]["requests"]["knn"] >= 1


def test_close_is_graceful_and_idempotent(coordinator):
    server, client, _, triples = coordinator
    assert client.knn(triples[0], 2)["error"] is None
    assert server.close() is None
    assert server.app.closed
    assert server.app.close() is None  # idempotent
    with pytest.raises(ServerError):
        client.knn(triples[0], 2)
