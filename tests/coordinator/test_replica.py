"""Failure-matrix unit tests: circuit breaker, backoff, replica selection.

Everything here runs on a fake clock — open→half-open→closed transitions
and the backoff schedule are pinned down without a single real sleep.
"""

from __future__ import annotations

import pytest

from repro.coordinator.replica import (
    BackoffPolicy, CircuitBreaker, ReplicaSet,
    CLOSED, HALF_OPEN, OPEN,
)
from repro.errors import ShardError


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def make(self, clock, *, threshold=3, reset=5.0):
        return CircuitBreaker(failure_threshold=threshold,
                              reset_timeout=reset, clock=clock)

    def test_starts_closed_and_allows(self):
        breaker = self.make(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.opens == 0

    def test_trips_open_at_consecutive_threshold(self):
        breaker = self.make(FakeClock(), threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_failure_run(self):
        breaker = self.make(FakeClock(), threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED, "non-consecutive failures must not trip"

    def test_open_half_opens_after_reset_timeout(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow(), "one probe goes through after the reset window"
        assert not breaker.allow(), "only one probe until the first resolves"

    def test_successful_probe_closes_the_circuit(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() and breaker.allow()

    def test_failed_probe_reopens_immediately(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=3, reset=1.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()  # the probe fails: straight back to open
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 2

    def test_validation(self):
        with pytest.raises(ShardError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ShardError):
            CircuitBreaker(reset_timeout=0.0)


class TestBackoffPolicy:
    def test_schedule_without_jitter_is_exact(self):
        policy = BackoffPolicy(base=0.05, cap=2.0, multiplier=2.0, jitter=0.0)
        assert [policy.delay(n) for n in range(7)] == pytest.approx(
            [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0])

    def test_cap_bounds_every_delay(self):
        policy = BackoffPolicy(base=1.0, cap=3.0, multiplier=10.0, jitter=0.0)
        assert policy.delay(50) == 3.0

    def test_jitter_scales_within_the_window_and_is_seeded(self):
        a = BackoffPolicy(base=0.1, multiplier=2.0, jitter=0.5, seed=7)
        b = BackoffPolicy(base=0.1, multiplier=2.0, jitter=0.5, seed=7)
        delays_a = [a.delay(n) for n in range(8)]
        delays_b = [b.delay(n) for n in range(8)]
        assert delays_a == delays_b, "same seed, same schedule"
        for attempt, delay in enumerate(delays_a):
            raw = min(2.0, 0.1 * 2 ** attempt)
            assert raw * 0.5 <= delay <= raw

    def test_validation(self):
        with pytest.raises(ShardError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ShardError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ShardError):
            BackoffPolicy(jitter=1.5)


class TestReplicaSet:
    def make(self, urls, clock=None, threshold=1):
        clock = clock or FakeClock()
        return ReplicaSet("P0", urls, breaker_factory=lambda: CircuitBreaker(
            failure_threshold=threshold, reset_timeout=5.0, clock=clock))

    def test_candidates_prefer_the_primary_while_healthy(self):
        replica_set = self.make(["http://a", "http://b"])
        assert [r.url for r in replica_set.candidates()] == ["http://a", "http://b"]

    def test_open_circuit_demotes_a_replica(self):
        replica_set = self.make(["http://a", "http://b"])
        replica_set.replicas[0].breaker.record_failure()
        assert [r.url for r in replica_set.candidates()] == ["http://b", "http://a"]

    def test_all_open_still_yields_every_replica(self):
        replica_set = self.make(["http://a", "http://b"])
        for replica in replica_set.replicas:
            replica.breaker.record_failure()
        assert len(replica_set.candidates()) == 2, "fail-open, never zero"

    def test_health_counts_states(self):
        clock = FakeClock()
        replica_set = self.make(["http://a", "http://b"], clock=clock)
        replica_set.replicas[1].breaker.record_failure()
        health = replica_set.health()
        assert health == {"replicas": 2, "healthy": 1, "open": 1, "half_open": 0}
        clock.advance(6.0)  # past the reset window: open reads as half-open
        health = replica_set.health()
        assert health["half_open"] == 1 and health["open"] == 0

    def test_empty_replica_set_is_rejected(self):
        with pytest.raises(ShardError):
            self.make([])
