"""End-to-end pipeline tests: text → triples → distance → FastMap → SemTree → queries."""

import pytest

from repro.baselines import SemanticLinearScan
from repro.core import SemTreeConfig, SemTreeIndex
from repro.nlp import TripleExtractor
from repro.rdf import parse_turtle, serialise_turtle
from repro.requirements import (
    build_requirement_distance,
    build_requirement_vocabularies,
)


class TestTextToIndexPipeline:
    def test_controlled_english_to_semantic_retrieval(self):
        text = """
        The component OBSW001 shall accept the command start-up.
        The component OBSW001 shall send the message heartbeat.
        The component OBSW001 shall not accept the command start-up.
        The component OBSW002 shall enable the mode safe-mode.
        The device HWD001 shall acquire the input gps-fix.
        The component OBSW003 shall transmit the telemetry voltage-frame.
        """
        triples = TripleExtractor().extract_from_text(text)
        assert len(triples) == 6

        vocabularies = build_requirement_vocabularies(
            [t.subject.name for t in triples]
        )
        distance = build_requirement_distance(vocabularies)
        index = SemTreeIndex(distance, SemTreeConfig(dimensions=3, bucket_size=2,
                                                     max_partitions=2, partition_capacity=4))
        index.add_triples(triples, document_id="spec")
        index.build()

        # querying with the 'block start-up' statement surfaces the 'accept
        # start-up' statement among its closest neighbours (the two may tie at
        # an embedded distance of ~0, so the order between them is free)
        target = triples[2]
        matches = index.k_nearest(target, 2)
        assert {match.triple for match in matches} == {target, triples[0]}
        assert all(match.documents == ("spec",) for match in matches)
        assert matches[0].distance <= matches[1].distance

    def test_turtle_roundtrip_feeds_the_index(self):
        listing = """
        (OBSW001, Fun:accept_cmd, CmdType:start-up)
        (OBSW001, Fun:block_cmd, CmdType:start-up)
        (OBSW002, Fun:send_msg, MsgType:heartbeat)
        (OBSW003, Fun:enable_mode, ModeType:safe-mode)
        """
        triples = parse_turtle(listing)
        reparsed = parse_turtle(serialise_turtle(triples))
        assert reparsed == triples

        distance = build_requirement_distance()
        index = SemTreeIndex(distance, SemTreeConfig(dimensions=3, bucket_size=2,
                                                     max_partitions=1, partition_capacity=4))
        index.add_triples(reparsed)
        index.build()
        assert len(index) == 4
        assert index.k_nearest(triples[0], 1)[0].triple == triples[0]


class TestIndexAgainstSemanticScan:
    def test_top1_agreement_on_small_corpus(self, built_requirements_index,
                                            requirement_distance):
        index, vocabularies, corpus = built_requirements_index
        triples = list(dict.fromkeys(corpus.all_triples()))
        scan = SemanticLinearScan(requirement_distance, triples)
        # For stored triples the index and the raw semantic scan must agree on
        # the top-1 result (the triple itself, at distance 0).
        for triple in triples[:25]:
            assert index.k_nearest(triple, 1)[0].triple == scan.k_nearest(triple, 1)[0][0]

    def test_knn_overlap_with_semantic_scan_is_substantial(self, built_requirements_index,
                                                           requirement_distance):
        index, vocabularies, corpus = built_requirements_index
        triples = list(dict.fromkeys(corpus.all_triples()))
        scan = SemanticLinearScan(requirement_distance, triples)
        k = 5
        overlaps = []
        for triple in triples[:20]:
            expected = {t for t, _ in scan.k_nearest(triple, k)}
            actual = {m.triple for m in index.k_nearest(triple, k)}
            overlaps.append(len(expected & actual) / k)
        # FastMap is approximate: demand a substantial (not perfect) agreement.
        assert sum(overlaps) / len(overlaps) >= 0.5


class TestDistributedConsistencyAcrossPartitionCounts:
    @pytest.mark.parametrize("max_partitions", [1, 3, 5])
    def test_same_results_for_any_partition_count(self, small_corpus, max_partitions):
        vocabularies = build_requirement_vocabularies(
            small_corpus.actor_names, small_corpus.parameter_values
        )
        distance = build_requirement_distance(vocabularies)
        index = SemTreeIndex(distance, SemTreeConfig(
            dimensions=4, bucket_size=8, max_partitions=max_partitions,
            partition_capacity=32,
        ))
        for document in small_corpus.documents:
            index.add_document(document.to_rdf_document())
        index.build()
        query = small_corpus.all_triples()[0]
        distances = [match.distance for match in index.k_nearest(query, 5)]
        assert distances == sorted(distances)
        assert distances[0] == pytest.approx(0.0, abs=1e-9)
        # store the result to compare across parameterisations via cache
        if not hasattr(TestDistributedConsistencyAcrossPartitionCounts, "_reference"):
            TestDistributedConsistencyAcrossPartitionCounts._reference = distances
        else:
            assert distances == pytest.approx(
                TestDistributedConsistencyAcrossPartitionCounts._reference
            )
