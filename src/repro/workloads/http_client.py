"""A stdlib HTTP client and load generator for ``repro.server``.

:class:`ServerClient` is the Python-side counterpart of the wire API in
``docs/server.md``: one method per endpoint, triples passed as
:class:`~repro.rdf.triple.Triple` objects and shipped in the lossless
dictionary form, server-side failures surfaced as
:class:`~repro.errors.ServerError` carrying the HTTP status and the
structured error type the server reported.

:func:`generate_load` is the benchmark driver: N client threads, each with
its own connection, replaying a shared list of request payloads against a
live server and reporting aggregate QPS plus client-observed latency
percentiles.  ``benchmarks/bench_server_throughput.py`` sweeps it over
thread counts.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServerError, WorkloadError
from repro.io.serialization import term_to_dict, triple_to_dict
from repro.rdf.triple import Triple, TriplePattern
from repro.service.metrics import percentile

__all__ = ["ServerClient", "generate_load", "query_payloads"]


def _pattern_payload(pattern: TriplePattern) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for position in ("subject", "predicate", "object"):
        term = getattr(pattern, position)
        if term is not None:
            # The lossless dictionary form, like query triples: str(term) is
            # lossy (a literal's datatype is dropped, a concept name holding
            # ':' reparses as prefix:name) and the server-side pattern match
            # is strict equality, so a lossy round trip silently matches the
            # wrong set.
            payload[position] = term_to_dict(term)
    return payload


class ServerClient:
    """A small, dependency-free client for one ``repro.server`` instance.

    Thread-compatibility: one client may be shared across threads (it holds
    no connection state), but the load generator gives each thread its own
    instance to keep accounting separate.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------------------

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One HTTP round trip; non-2xx responses raise :class:`ServerError`."""
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
            try:
                return json.loads(raw)
            except json.JSONDecodeError as error:
                # A 2xx with a non-JSON body means whatever answered is not
                # a repro server (wrong port, proxy); keep the one-type
                # contract so wait_ready's retry loop can handle it.
                raise ServerError(
                    f"non-JSON response from {self.base_url}: "
                    f"{raw[:120]!r}", status=response.status,
                ) from error
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw).get("error", {})
            except (json.JSONDecodeError, AttributeError):
                payload = {}
            raise ServerError(
                payload.get("message", raw.decode("utf-8", "replace") or str(error)),
                status=error.code, kind=payload.get("type"),
            ) from error
        except urllib.error.URLError as error:
            raise ServerError(f"cannot reach {self.base_url}: {error.reason}") from error
        except OSError as error:
            # TimeoutError from response.read() (a stalled response body) and
            # other socket-level failures are OSErrors, not URLErrors; the
            # module contract is that every transport failure surfaces as
            # ServerError so callers (wait_ready included) can handle one type.
            raise ServerError(
                f"transport failure talking to {self.base_url}: {error!r}"
            ) from error

    # -- query payload builders (also used by the load generator) -----------------------

    @staticmethod
    def knn_payload(triple: Triple, k: int = 3, *,
                    pattern: TriplePattern | None = None,
                    deadline: float | None = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"triple": triple_to_dict(triple), "k": k}
        if pattern is not None:
            payload["pattern"] = _pattern_payload(pattern)
        if deadline is not None:
            payload["deadline"] = deadline
        return payload

    @staticmethod
    def range_payload(triple: Triple, radius: float, *,
                      pattern: TriplePattern | None = None,
                      deadline: float | None = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"triple": triple_to_dict(triple), "radius": radius}
        if pattern is not None:
            payload["pattern"] = _pattern_payload(pattern)
        if deadline is not None:
            payload["deadline"] = deadline
        return payload

    # -- endpoints ----------------------------------------------------------------------

    def knn(self, triple: Triple, k: int = 3, *, pattern: TriplePattern | None = None,
            deadline: float | None = None) -> Dict[str, Any]:
        """``POST /v1/knn`` with one query; returns the result object."""
        return self.request("POST", "/v1/knn",
                            self.knn_payload(triple, k, pattern=pattern,
                                             deadline=deadline))

    def knn_batch(self, payloads: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """``POST /v1/knn`` with a batch of query payloads; returns the results."""
        return self.request("POST", "/v1/knn", {"queries": list(payloads)})["results"]

    def range(self, triple: Triple, radius: float, *,
              pattern: TriplePattern | None = None,
              deadline: float | None = None) -> Dict[str, Any]:
        """``POST /v1/range`` with one query; returns the result object."""
        return self.request("POST", "/v1/range",
                            self.range_payload(triple, radius, pattern=pattern,
                                               deadline=deadline))

    def range_batch(self, payloads: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """``POST /v1/range`` with a batch of query payloads; returns the results."""
        return self.request("POST", "/v1/range", {"queries": list(payloads)})["results"]

    def insert(self, triple: Triple, *, document_id: str | None = None) -> Dict[str, Any]:
        """``POST /v1/insert`` with one triple; returns ``{"seq": ..., ...}``."""
        payload: Dict[str, Any] = {"triple": triple_to_dict(triple)}
        if document_id is not None:
            payload["document_id"] = document_id
        return self.request("POST", "/v1/insert", payload)

    def insert_many(self, triples: Sequence[Triple], *,
                    document_id: str | None = None) -> Dict[str, Any]:
        """``POST /v1/insert`` with a batch; returns the acceptance summary."""
        inserts: List[Dict[str, Any]] = []
        for triple in triples:
            entry: Dict[str, Any] = {"triple": triple_to_dict(triple)}
            if document_id is not None:
                entry["document_id"] = document_id
            inserts.append(entry)
        return self.request("POST", "/v1/insert", {"inserts": inserts})

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics`` — the unified metrics payload."""
        return self.request("GET", "/v1/metrics")

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz``."""
        return self.request("GET", "/v1/healthz")

    def index_info(self) -> Dict[str, Any]:
        """``GET /v1/index``."""
        return self.request("GET", "/v1/index")

    def wait_ready(self, *, attempts: int = 50, delay: float = 0.1) -> Dict[str, Any]:
        """Poll ``/v1/healthz`` until the server answers (boot synchronisation)."""
        last_error: Optional[ServerError] = None
        for _ in range(attempts):
            try:
                return self.health()
            except ServerError as error:
                last_error = error
                time.sleep(delay)
        raise ServerError(
            f"server at {self.base_url} did not become ready: {last_error}"
        )


# -- the load generator --------------------------------------------------------------------

def query_payloads(triples: Sequence[Triple], count: int, *, k: int = 3,
                   radius: float = 0.1, knn_fraction: float = 0.6,
                   repeat_fraction: float = 0.3,
                   seed: int = 1) -> List[Tuple[str, Dict[str, Any]]]:
    """A reproducible wire-level mixed workload: ``(endpoint, payload)`` pairs.

    The HTTP twin of :func:`repro.workloads.queries.mixed_query_specs`, with
    the same mixing rules (k-NN share, in-batch repeats feeding the cache).
    """
    import random

    if not triples:
        raise WorkloadError("cannot derive query payloads from an empty triple set")
    if count < 1:
        raise WorkloadError("count must be >= 1")
    rng = random.Random(seed)
    payloads: List[Tuple[str, Dict[str, Any]]] = []
    for _ in range(count):
        if payloads and rng.random() < repeat_fraction:
            payloads.append(payloads[rng.randrange(len(payloads))])
            continue
        triple = triples[rng.randrange(len(triples))]
        if rng.random() < knn_fraction:
            payloads.append(("/v1/knn", ServerClient.knn_payload(triple, k)))
        else:
            payloads.append(("/v1/range", ServerClient.range_payload(triple, radius)))
    return payloads


def generate_load(base_url: str, payloads: Sequence[Tuple[str, Dict[str, Any]]], *,
                  threads: int = 4, timeout: float = 30.0,
                  on_result: Callable[[Dict[str, Any]], None] | None = None,
                  ) -> Dict[str, float]:
    """Replay a wire workload from ``threads`` concurrent clients.

    The payload list is split round-robin across the threads (every payload
    is sent exactly once).  Latency is measured client-side per request;
    the summary reports aggregate QPS over the whole run plus nearest-rank
    percentiles in milliseconds.  ``on_result`` (optional) sees every
    response body, called from the issuing thread.
    """
    if threads < 1:
        raise WorkloadError(f"threads must be >= 1, got {threads}")
    if not payloads:
        raise WorkloadError("the load generator needs at least one payload")

    shards: List[List[Tuple[str, Dict[str, Any]]]] = [[] for _ in range(threads)]
    for position, entry in enumerate(payloads):
        shards[position % threads].append(entry)

    latencies: List[List[float]] = [[] for _ in range(threads)]
    failures: List[Optional[Exception]] = [None] * threads

    def worker(shard_index: int) -> None:
        client = ServerClient(base_url, timeout=timeout)
        for path, body in shards[shard_index]:
            started = time.perf_counter()
            try:
                result = client.request("POST", path, body)
                latencies[shard_index].append(time.perf_counter() - started)
                if on_result is not None:
                    on_result(result)
            except Exception as error:  # noqa: BLE001 - reported to the caller
                # Covers the callback too: a raising on_result must surface
                # as a run failure, not silently abandon the shard.
                failures[shard_index] = error
                return

    workers = [
        threading.Thread(target=worker, args=(index,), name=f"load-gen-{index}")
        for index in range(threads)
    ]
    started = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    wall_seconds = time.perf_counter() - started

    for failure in failures:
        if failure is not None:
            raise failure

    samples = [sample for shard in latencies for sample in shard]
    return {
        "threads": float(threads),
        "requests": float(len(samples)),
        "wall_seconds": wall_seconds,
        "qps": len(samples) / wall_seconds if wall_seconds > 0 else 0.0,
        "latency_ms_mean": sum(samples) / len(samples) * 1000.0,
        "latency_ms_p50": percentile(samples, 0.50) * 1000.0,
        "latency_ms_p90": percentile(samples, 0.90) * 1000.0,
        "latency_ms_p99": percentile(samples, 0.99) * 1000.0,
    }
