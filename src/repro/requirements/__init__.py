"""The software-requirements case study: domain vocabulary, synthetic corpus
generator, inconsistency detection and the ground-truth oracle of Fig. 8."""

from repro.requirements.generator import GeneratorConfig, RequirementsGenerator, SyntheticCorpus
from repro.requirements.ground_truth import GroundTruthCase, GroundTruthOracle
from repro.requirements.inconsistency import (
    InconsistencyDetector,
    InconsistencyReport,
    are_inconsistent,
    make_target_triple,
)
from repro.requirements.model import Requirement, RequirementsDocument, collection_from_documents
from repro.requirements.vocabulary import (
    ANTINOMY_PAIRS,
    FUNCTION_FAMILIES,
    FUNCTION_PREFIX,
    PARAMETER_PREFIXES,
    build_actor_vocabulary,
    build_function_vocabulary,
    build_parameter_vocabulary,
    build_requirement_distance,
    build_requirement_vocabularies,
)

__all__ = [
    "Requirement",
    "RequirementsDocument",
    "collection_from_documents",
    "GeneratorConfig",
    "RequirementsGenerator",
    "SyntheticCorpus",
    "GroundTruthCase",
    "GroundTruthOracle",
    "InconsistencyDetector",
    "InconsistencyReport",
    "are_inconsistent",
    "make_target_triple",
    "ANTINOMY_PAIRS",
    "FUNCTION_FAMILIES",
    "FUNCTION_PREFIX",
    "PARAMETER_PREFIXES",
    "build_function_vocabulary",
    "build_actor_vocabulary",
    "build_parameter_vocabulary",
    "build_requirement_vocabularies",
    "build_requirement_distance",
]
