"""Cluster orchestration: compute nodes + message bus + simulated clock.

:class:`SimulatedCluster` is the single object the SemTree index talks to.
It owns the compute nodes, places partitions on them (least-loaded-first, as
a stand-in for whatever scheduler the paper's cluster used), routes
messages, and exposes the simulated-cost counters the distributed
benchmarks report.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.clock import CostSnapshot, SimulatedClock
from repro.cluster.message import Message
from repro.cluster.network import MessageBus, MessageHandler
from repro.cluster.node import ComputeNode
from repro.errors import ClusterError

__all__ = ["SimulatedCluster"]


class SimulatedCluster:
    """A simulated cluster of compute nodes hosting SemTree partitions.

    Parameters
    ----------
    node_count:
        Number of compute nodes (the paper's testbed had 8).
    node_capacity:
        Storage capacity per node, in points (``None`` = unlimited).
    remote_latency / local_latency:
        Network costs charged per message (see :class:`MessageBus`).
    """

    def __init__(self, node_count: int = 8, *, node_capacity: int | None = None,
                 remote_latency: float = 5.0, local_latency: float = 0.5):
        if node_count < 1:
            raise ClusterError("a cluster needs at least one compute node")
        self.clock = SimulatedClock()
        self.bus = MessageBus(self.clock, remote_latency=remote_latency,
                              local_latency=local_latency)
        self._nodes: Dict[str, ComputeNode] = {}
        for index in range(node_count):
            node = ComputeNode(node_id=f"node-{index}", storage_capacity=node_capacity)
            self._nodes[node.node_id] = node

    # -- nodes -----------------------------------------------------------------------

    @property
    def nodes(self) -> List[ComputeNode]:
        """The compute nodes, ordered by identifier."""
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    def node(self, node_id: str) -> ComputeNode:
        """Return one compute node by identifier."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ClusterError(f"unknown compute node {node_id!r}") from None

    def add_node(self, node: ComputeNode) -> None:
        """Add a compute node to the cluster (e.g. for elasticity experiments)."""
        if node.node_id in self._nodes:
            raise ClusterError(f"node {node.node_id!r} already exists")
        self._nodes[node.node_id] = node

    @property
    def node_count(self) -> int:
        """Number of compute nodes."""
        return len(self._nodes)

    # -- partition placement ------------------------------------------------------------

    def place_partition(self, partition_id: str, handler: MessageHandler,
                        *, preferred_node: str | None = None) -> str:
        """Place a new partition on a compute node and register it on the bus.

        The partition goes to ``preferred_node`` when given, otherwise to the
        node currently hosting the fewest partitions (ties broken by node
        identifier, so placement is deterministic).

        Returns the identifier of the hosting node.
        """
        if preferred_node is not None:
            node = self.node(preferred_node)
        else:
            node = min(
                self.nodes, key=lambda candidate: (len(candidate.partitions), candidate.node_id)
            )
        node.host_partition(partition_id)
        self.bus.register(partition_id, handler, node.node_id)
        return node.node_id

    def remove_partition(self, partition_id: str) -> None:
        """Remove a partition from its node and from the bus."""
        node_id = self.bus.node_of(partition_id)
        self.node(node_id).drop_partition(partition_id)
        self.bus.unregister(partition_id)

    def node_of_partition(self, partition_id: str) -> str:
        """Identifier of the node hosting a partition."""
        return self.bus.node_of(partition_id)

    def record_points(self, partition_id: str, delta: int) -> None:
        """Propagate a point-count change to the hosting node's storage accounting."""
        node_id = self.bus.node_of(partition_id)
        self.node(node_id).record_points(partition_id, delta)

    # -- messaging & cost accounting ----------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a message over the simulated network."""
        self.bus.send(message)

    def charge_work(self, partition_id: str, cost: float) -> None:
        """Charge local work to the partition (scaled by its node's processing cost)."""
        node_id = self.bus.node_of(partition_id)
        multiplier = self.node(node_id).processing_cost
        self.clock.charge(partition_id, cost * multiplier)

    def costs(self) -> CostSnapshot:
        """Snapshot of the accumulated simulated costs."""
        return self.clock.snapshot()

    def reset_costs(self) -> None:
        """Zero the simulated clock (e.g. between build and query phases)."""
        self.clock.reset()

    def __repr__(self) -> str:
        partitions = sum(len(node.partitions) for node in self.nodes)
        return (
            f"SimulatedCluster(nodes={self.node_count}, partitions={partitions}, "
            f"messages={self.clock.messages})"
        )
