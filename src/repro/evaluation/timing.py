"""Timing utilities for the efficiency experiments.

Two notions of time coexist in the reproduction (DESIGN.md):

* **wall-clock time** of the single-process execution, measured with
  :class:`WallClockTimer`;
* **simulated parallel time** (critical path) and **simulated total work**
  of the distributed runs, read from the cluster's
  :class:`~repro.cluster.clock.SimulatedClock` and wrapped in a
  :class:`TimingSample` alongside the wall clock, so every benchmark can
  report all three.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.cluster.cluster import SimulatedCluster

__all__ = ["WallClockTimer", "TimingSample", "measure"]


class WallClockTimer:
    """A context-manager stopwatch (``perf_counter`` based)."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallClockTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed * 1000.0


@dataclass(frozen=True, slots=True)
class TimingSample:
    """One timing observation of an operation.

    Attributes
    ----------
    wall_seconds:
        Wall-clock duration of the single-process execution.
    simulated_critical_path:
        Simulated parallel makespan (work units); ``None`` when the
        operation did not involve the simulated cluster.
    simulated_total_work:
        Simulated total (sequential-equivalent) work; ``None`` likewise.
    messages:
        Number of inter-partition messages exchanged; ``None`` likewise.
    """

    wall_seconds: float
    simulated_critical_path: Optional[float] = None
    simulated_total_work: Optional[float] = None
    messages: Optional[int] = None

    @property
    def wall_ms(self) -> float:
        """Wall-clock duration in milliseconds."""
        return self.wall_seconds * 1000.0


def measure(operation, *, cluster: SimulatedCluster | None = None,
            reset_costs: bool = True) -> TimingSample:
    """Run ``operation()`` and collect wall-clock plus simulated costs.

    Parameters
    ----------
    operation:
        A zero-argument callable.
    cluster:
        When given, its simulated clock is (optionally reset and) read after
        the operation, so the sample also carries the simulated costs.
    reset_costs:
        Reset the cluster clock before running the operation (default), so
        the sample reflects only this operation.
    """
    if cluster is not None and reset_costs:
        cluster.reset_costs()
    with WallClockTimer() as timer:
        operation()
    if cluster is None:
        return TimingSample(wall_seconds=timer.elapsed)
    snapshot = cluster.costs()
    return TimingSample(
        wall_seconds=timer.elapsed,
        simulated_critical_path=snapshot.critical_path,
        simulated_total_work=snapshot.total_work,
        messages=snapshot.messages,
    )
