"""Partition transports: how query front ends reach partition data.

Historically :class:`~repro.core.distributed.DistributedSemTree` talked to
:class:`~repro.cluster.cluster.SimulatedCluster` directly — every
cross-partition hop was a hand-built :class:`Message` and the only possible
deployment was the single-process simulation.  This module extracts that
coupling into two small interfaces so distribution can be *real*:

* :class:`PartitionRouter` — the seam the tree's own traversal algorithms
  use when an insertion or a guided search crosses a
  :class:`~repro.core.node.RemoteChild` pointer.  The traversal carries live
  Python state from partition to partition, so the router is implemented by
  the simulated bus (:class:`SimulatedBusRouter`), which keeps the paper's
  message counting and latency accounting intact.

* :class:`PartitionTransport` — the *scatter-gather* interface: one whole
  partition scanned per call (k-NN or range over the partition's local
  subtree only, remote links ignored).  Every partition scan is independent
  and carries nothing but plain query parameters and plain results, which is
  exactly what survives a process boundary.  Implementations:
  :class:`SimulatedClusterTransport` (scans delivered through the simulated
  message bus — the correctness/cost oracle) and
  :class:`repro.coordinator.transport.HttpShardTransport` (scans POSTed to
  per-partition shard servers — the real deployment).

The union of local partition scans covers every stored point exactly once
(each leaf lives in exactly one partition), so a front end that scans every
partition and merges through the paper's result-set rules answers
identically to the sequential traversal; see ``docs/cluster.md``.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Tuple

from repro.cluster.cluster import SimulatedCluster
from repro.cluster.message import Message, MessageKind
from repro.core.cost import SearchCost
from repro.core.knn import Neighbour
from repro.core.point import LabeledPoint
from repro.errors import PartitionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.distributed import DistributedSemTree

__all__ = [
    "PartitionScan",
    "PartitionTransport",
    "PartitionRouter",
    "SimulatedBusRouter",
    "SimulatedClusterTransport",
    "FRONT_END_ID",
]

#: Bus identity of a scatter-gather front end (not a real partition: it owns
#: no subtree, it only exchanges scan requests and results).
FRONT_END_ID = "@front-end"


@dataclass(frozen=True, slots=True)
class PartitionScan:
    """The result of scanning one partition's local subtree.

    ``neighbours`` are closest-first; for a k-NN scan they are the
    partition-local top-k (the global top-k can only contain points from
    partition-local top-k lists), for a range scan every local point within
    the radius.  The counters mirror the sequential search states so fan-out
    costs stay observable per partition.
    """

    partition_id: str
    neighbours: Tuple[Neighbour, ...]
    nodes_visited: int
    points_examined: int
    elapsed_seconds: float = 0.0
    cost: SearchCost = field(default_factory=SearchCost)


class PartitionTransport(Protocol):
    """Scatter-gather access to the partitions of one distributed index."""

    def partition_ids(self) -> Tuple[str, ...]:
        """Identifiers of every reachable partition, sorted."""
        ...

    def scan_knn(self, partition_id: str, query: LabeledPoint, k: int) -> PartitionScan:
        """The partition-local k nearest neighbours of ``query``."""
        ...

    def scan_range(self, partition_id: str, query: LabeledPoint,
                   radius: float) -> PartitionScan:
        """Every partition-local point within ``radius`` of ``query``."""
        ...

    def close(self) -> None:
        """Release connections/resources held by the transport."""
        ...


class PartitionRouter(Protocol):
    """The tree-traversal seam: forward an in-flight operation to a partition.

    Implementations deliver synchronously (the operation has completed in
    the target partition when the call returns) because the sequential
    algorithms of the paper interleave partition crossings with local work.
    """

    def continue_insert(self, source: str, target: str, point: LabeledPoint) -> None:
        """Hand an insertion descending into a remote child to its partition."""
        ...

    def continue_knn(self, source: str, target: str, state) -> None:
        """Continue a k-search in the partition hosting a remote child."""
        ...

    def continue_range(self, source: str, target: str, state) -> None:
        """Continue a range search in the partition hosting a remote child."""
        ...

    def reply_found(self, kind: MessageKind, source: str, target: str,
                    found: int) -> None:
        """Send the result-count reply of a continued search (cost accounting)."""
        ...

    def ship_subtree(self, source: str, target: str, points: int) -> None:
        """Account for moving a subtree into a freshly built partition."""
        ...


class SimulatedBusRouter:
    """:class:`PartitionRouter` over the simulated message bus.

    This is the original behaviour of the distributed tree, verbatim: every
    crossing becomes a :class:`Message` charged to the simulated network,
    delivery is synchronous, and the receiving partition's handler re-enters
    the tree's traversal code.
    """

    def __init__(self, cluster: SimulatedCluster):
        self.cluster = cluster

    def continue_insert(self, source: str, target: str, point: LabeledPoint) -> None:
        self.cluster.send(Message(
            kind=MessageKind.INSERT, source=source, target=target,
            payload={"point": point},
        ))

    def continue_knn(self, source: str, target: str, state) -> None:
        self.cluster.send(Message(
            kind=MessageKind.KNN_DESCEND, source=source, target=target,
            payload={"state": state},
        ))

    def continue_range(self, source: str, target: str, state) -> None:
        self.cluster.send(Message(
            kind=MessageKind.RANGE_DESCEND, source=source, target=target,
            payload={"state": state},
        ))

    def reply_found(self, kind: MessageKind, source: str, target: str,
                    found: int) -> None:
        self.cluster.send(Message(
            kind=kind, source=source, target=target, payload={"found": found},
        ))

    def ship_subtree(self, source: str, target: str, points: int) -> None:
        # One message to ship the subtree, one acknowledgement back.
        self.cluster.send(Message(
            kind=MessageKind.MOVE_LEAF, source=source, target=target,
            payload={"points": points},
        ))
        self.cluster.send(Message(
            kind=MessageKind.ACK, source=target, target=source,
        ))


class SimulatedClusterTransport:
    """:class:`PartitionTransport` over the simulated cluster.

    Scan requests and their results travel through the message bus — one
    ``SCAN_*`` request plus one ``SCAN_RESULT`` reply per partition scanned,
    charged with the configured network latencies — so the simulated cost
    model covers scatter-gather serving exactly like it covers the guided
    sequential traversal.  The scan itself runs in
    :meth:`DistributedSemTree.scan_partition_knn <repro.core.distributed.DistributedSemTree.scan_partition_knn>`
    / ``scan_partition_range``, the same code a shard server executes.
    """

    #: How many live transports share each bus's front-end registration —
    #: the endpoint is registered once per bus and unregistered only when
    #: the *last* transport over that bus closes (two transports over one
    #: tree must not break each other).
    _front_end_refs: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
    _refs_lock = threading.Lock()

    def __init__(self, tree: "DistributedSemTree"):
        self.tree = tree
        self._closed = False
        bus = tree.cluster.bus
        with self._refs_lock:
            count = self._front_end_refs.get(bus, 0)
            if count == 0:
                # The front end is a bus endpoint (so replies can be
                # addressed to it) but not a partition: it lives on a
                # synthetic node so it never competes for partition
                # placement, and every exchange with a real partition is
                # charged at remote latency.
                bus.register(FRONT_END_ID, lambda message: None, FRONT_END_ID)
            self._front_end_refs[bus] = count + 1

    def partition_ids(self) -> Tuple[str, ...]:
        return tuple(partition.partition_id for partition in self.tree.partitions)

    def scan_knn(self, partition_id: str, query: LabeledPoint, k: int) -> PartitionScan:
        return self._scan(MessageKind.SCAN_KNN, partition_id,
                          {"query": query, "k": k})

    def scan_range(self, partition_id: str, query: LabeledPoint,
                   radius: float) -> PartitionScan:
        return self._scan(MessageKind.SCAN_RANGE, partition_id,
                          {"query": query, "radius": radius})

    def _scan(self, kind: MessageKind, partition_id: str, payload: dict) -> PartitionScan:
        started = time.perf_counter()
        message = Message(kind=kind, source=FRONT_END_ID, target=partition_id,
                          payload=dict(payload))
        self.tree.cluster.send(message)
        scan = message.payload.get("scan")
        if not isinstance(scan, PartitionScan):  # pragma: no cover - defensive
            raise PartitionError(
                f"partition {partition_id!r} did not answer the scan request"
            )
        return PartitionScan(
            partition_id=scan.partition_id,
            neighbours=scan.neighbours,
            nodes_visited=scan.nodes_visited,
            points_examined=scan.points_examined,
            elapsed_seconds=time.perf_counter() - started,
            cost=scan.cost,
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        bus = self.tree.cluster.bus
        with self._refs_lock:
            count = self._front_end_refs.get(bus, 1) - 1
            if count <= 0:
                self._front_end_refs.pop(bus, None)
                bus.unregister(FRONT_END_ID)
            else:
                self._front_end_refs[bus] = count
