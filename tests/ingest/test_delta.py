"""Delta segment mechanics and exact tree ∪ delta merge semantics."""

from ingest_corpus import INSERT_TRIPLES, QUERY_TRIPLES, canonical
from repro.core import LabeledPoint
from repro.ingest import DeltaIndex, IngestingIndex


class TestDeltaIndex:
    def test_add_and_snapshot(self):
        delta = DeltaIndex()
        a = LabeledPoint.of([0.1, 0.2], label="a")
        b = LabeledPoint.of([0.3, 0.4], label="b")
        delta.add(a, 1)
        snapshot = delta.points()
        delta.add(b, 2)
        assert snapshot == (a,)          # snapshots are frozen
        assert delta.points() == (a, b)  # duplicates/later adds visible in new ones
        assert len(delta) == 2
        assert delta.last_seq == 2

    def test_drain_empties_and_reports_last_seq(self):
        delta = DeltaIndex()
        delta.add(LabeledPoint.of([0.1], label="a"), 4)
        delta.add(LabeledPoint.of([0.2], label="b"), 5)
        points, last_seq = delta.drain()
        assert len(points) == 2
        assert last_seq == 5
        assert len(delta) == 0

    def test_neighbour_helpers_measure_from_the_query(self):
        delta = DeltaIndex()
        delta.add(LabeledPoint.of([0.0, 0.0], label="origin"), 1)
        delta.add(LabeledPoint.of([3.0, 4.0], label="far"), 2)
        query = LabeledPoint.of([0.0, 0.0])
        distances = sorted(n.distance for n in delta.all_neighbours(query))
        assert distances == [0.0, 5.0]
        within = delta.neighbours_within(query, 1.0)
        assert [n.point.label for n in within] == ["origin"]


class TestMergedReadsEqualRebuild:
    """Merged tree ∪ delta answers must equal a from-scratch rebuilt index."""

    def _oracle(self, make_base, inserted):
        oracle = make_base()
        for triple in inserted:
            oracle.insert_triple(triple)
        return oracle

    def test_knn_equals_rebuild_at_every_prefix(self, make_base, tmp_path):
        ingesting = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                                   compaction_threshold=10_000)
        for prefix in range(len(INSERT_TRIPLES) + 1):
            if prefix:
                ingesting.insert(INSERT_TRIPLES[prefix - 1])
            oracle = self._oracle(make_base, INSERT_TRIPLES[:prefix])
            for query in QUERY_TRIPLES:
                for k in (1, 3, len(ingesting)):
                    assert canonical(ingesting.k_nearest(query, k)) == \
                        canonical(oracle.k_nearest(query, k)), (prefix, str(query), k)

    def test_range_equals_rebuild_at_every_prefix(self, make_base, tmp_path):
        ingesting = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                                   compaction_threshold=10_000)
        for prefix in range(len(INSERT_TRIPLES) + 1):
            if prefix:
                ingesting.insert(INSERT_TRIPLES[prefix - 1])
            oracle = self._oracle(make_base, INSERT_TRIPLES[:prefix])
            for query in QUERY_TRIPLES:
                for radius in (0.0, 0.1, 0.3, 1.0):
                    assert canonical(ingesting.range_query(query, radius)) == \
                        canonical(oracle.range_query(query, radius))

    def test_duplicate_inserts_surface_as_duplicate_matches(self, make_base, tmp_path):
        ingesting = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                                   compaction_threshold=10_000)
        triple = INSERT_TRIPLES[0]
        ingesting.insert(triple)
        ingesting.insert(triple)
        oracle = self._oracle(make_base, [triple, triple])
        assert canonical(ingesting.k_nearest(triple, 3)) == \
            canonical(oracle.k_nearest(triple, 3))
        assert canonical(ingesting.range_query(triple, 0.0)) == \
            canonical(oracle.range_query(triple, 0.0))

    def test_merge_spans_a_compaction_boundary(self, make_base, tmp_path):
        """Half the inserts folded into the tree, half still in the delta."""
        ingesting = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                                   compaction_threshold=10_000)
        half = len(INSERT_TRIPLES) // 2
        for triple in INSERT_TRIPLES[:half]:
            ingesting.insert(triple)
        assert ingesting.compact() == half
        for triple in INSERT_TRIPLES[half:]:
            ingesting.insert(triple)
        assert len(ingesting.delta) == len(INSERT_TRIPLES) - half
        oracle = self._oracle(make_base, INSERT_TRIPLES)
        for query in QUERY_TRIPLES:
            assert canonical(ingesting.k_nearest(query, 4)) == \
                canonical(oracle.k_nearest(query, 4))
            assert canonical(ingesting.range_query(query, 0.25)) == \
                canonical(oracle.range_query(query, 0.25))
