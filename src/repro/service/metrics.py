"""Serving metrics: QPS, latency percentiles, cache hit rate, partition load.

The module follows the style of :mod:`repro.evaluation.timing`: plain
counters plus immutable snapshots, no external dependencies.  The engine
records one observation per query result; :meth:`ServiceMetrics.snapshot`
turns the accumulated state into the flat dictionary the benchmarks print.

Latency samples are kept in a bounded deque (most recent ``max_samples``)
so a long-running service's metrics stay O(1) in memory; percentiles are
therefore over the recent window, which is what a serving dashboard wants
anyway.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Tuple

from repro.errors import EvaluationError

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

__all__ = ["COST_HISTOGRAM_BUCKETS", "IngestMetrics", "ServiceMetrics", "percentile"]

#: Count-scale buckets for per-query work histograms (distance computations
#: per executed query): powers of four from 1 to ~1M cover a handful-of-points
#: toy index through a multi-million-point deployment.
COST_HISTOGRAM_BUCKETS: Tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    1048576.0,
)


def percentile(samples: Iterable[float], fraction: float) -> float:
    """Linearly interpolated percentile of a sample set (``fraction`` in [0, 1]).

    Uses the standard "exclusive of bounds" interpolation (numpy's
    ``linear`` method): the rank ``fraction * (n - 1)`` is split into its
    integer neighbours and the two order statistics are blended.  An empty
    sample set yields ``0.0`` — serving dashboards want a zeroed latency
    block before traffic, not an exception — and a single sample is every
    percentile of itself.

    Raises
    ------
    EvaluationError
        If the fraction is out of range.
    """
    if not 0.0 <= fraction <= 1.0:
        raise EvaluationError(f"percentile fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = fraction * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def _latency_block(samples: list) -> Dict[str, float]:
    """The standard ``*_ms`` sub-dictionary over a list of seconds samples."""
    if not samples:
        return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "mean": sum(samples) / len(samples) * 1000.0,
        "p50": percentile(samples, 0.50) * 1000.0,
        "p90": percentile(samples, 0.90) * 1000.0,
        "p99": percentile(samples, 0.99) * 1000.0,
        "max": max(samples) * 1000.0,
    }


class ServiceMetrics:
    """Thread-safe accumulator of per-query serving observations."""

    def __init__(self, *, max_samples: int = 10_000,
                 clock: Callable[[], float] = time.monotonic):
        if max_samples < 1:
            raise EvaluationError("max_samples must be >= 1")
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._latencies: deque = deque(maxlen=max_samples)
        self._queue_waits: deque = deque(maxlen=max_samples)
        self._queries = 0
        self._executed = 0
        self._served_from_cache = 0
        self._timeouts = 0
        self._errors = 0
        self._by_kind: Counter = Counter()
        self._partition_loads: Counter = Counter()
        self._cost_totals: Counter = Counter()
        self._overlay_retries = 0
        self._degraded = 0
        self._latency_family = None
        self._queue_wait_histogram = None
        self._distance_family = None

    # -- recording ----------------------------------------------------------------------

    def record(self, kind: str, latency_seconds: float, *, cached: bool,
               timed_out: bool = False, failed: bool = False,
               visited_partitions: Iterable[str] = (),
               cost=None, degraded: bool = False) -> None:
        """Record one served query.

        ``visited_partitions`` are the identities of the partitions the tree
        search entered (empty for cache hits), feeding the per-partition
        load counters.  ``cost`` is the search's
        :class:`~repro.core.cost.SearchCost` (``None`` when no search ran —
        a cache hit or an in-batch duplicate); its counters accumulate into
        the per-process work totals and the distance-computation histogram.

        Only successfully *executed* queries contribute a latency sample:
        cache hits would flood the percentiles with ~0 values and mask the
        tree-search distribution, and a timed-out query has no completion
        time (counting it as 0 would make percentiles improve as timeouts
        increase).  Hits and timeouts are still counted in their own
        counters.
        """
        now = self._clock()
        with self._lock:
            if self._started_at is None:
                self._started_at = now
            self._queries += 1
            self._by_kind[kind] += 1
            if cached:
                self._served_from_cache += 1
            else:
                self._executed += 1
            if timed_out:
                self._timeouts += 1
            if failed:
                self._errors += 1
            if degraded:
                self._degraded += 1
            executed_ok = not cached and not timed_out and not failed
            if executed_ok:
                self._latencies.append(latency_seconds)
            for partition_id in visited_partitions:
                self._partition_loads[partition_id] += 1
            if cost is not None:
                for counter_name, value in cost.to_dict().items():
                    if value:
                        self._cost_totals[counter_name] += value
            latency_family = self._latency_family
            distance_family = self._distance_family
        if executed_ok and latency_family is not None:
            latency_family.labels(kind).observe(latency_seconds)
        if cost is not None and distance_family is not None:
            distance_family.labels(kind).observe(float(cost.distance_computations))

    def record_overlay_retry(self) -> None:
        """Record one overlay recheck: a compaction raced the read and the
        cached/stale tree-side matches had to be recomputed."""
        with self._lock:
            self._overlay_retries += 1

    def record_queue_wait(self, seconds: float) -> None:
        """Record how long one query waited for a pool worker to pick it up.

        Queue wait is the engine's saturation signal: execute time measures
        the tree search, queue wait measures everything the pool could not
        absorb.  Recorded per executed (non-cached) query.
        """
        with self._lock:
            self._queue_waits.append(seconds)
            histogram = self._queue_wait_histogram
        if histogram is not None:
            histogram.observe(seconds)

    # -- exposition ---------------------------------------------------------------------

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        """Mirror these counters into a Prometheus-style registry.

        Counters and per-kind/per-partition totals are callback-backed —
        every scrape re-reads the same locked state :meth:`snapshot`
        reports, so the JSON payload and the exposition cannot disagree.
        Latency and queue-wait distributions are additionally observed into
        fixed-bucket histograms (percentile-over-window has no faithful
        Prometheus equivalent).
        """
        def locked(attribute: str) -> Callable[[], float]:
            def read() -> float:
                with self._lock:
                    return float(getattr(self, attribute))
            return read

        registry.counter(
            "repro_queries_total", "Queries served, by query kind.", ("kind",),
        ).set_callback(self._kind_totals)
        registry.counter(
            "repro_queries_executed_total",
            "Queries that ran a tree search (cache misses).",
        ).set_function(locked("_executed"))
        registry.counter(
            "repro_queries_cached_total", "Queries served from the result cache.",
        ).set_function(locked("_served_from_cache"))
        registry.counter(
            "repro_query_timeouts_total", "Queries that missed their deadline.",
        ).set_function(locked("_timeouts"))
        registry.counter(
            "repro_query_errors_total", "Queries that failed with an error.",
        ).set_function(locked("_errors"))
        registry.counter(
            "repro_partition_visits_total",
            "Tree-search visits, by partition.", ("partition",),
        ).set_callback(self._partition_totals)
        registry.counter(
            "repro_query_cost_total",
            "Per-query work counters summed over executed searches, "
            "by cost counter.", ("counter",),
        ).set_callback(self._cost_counter_totals)
        registry.counter(
            "repro_overlay_retries_total",
            "Overlay rechecks forced by a compaction racing a read.",
        ).set_function(locked("_overlay_retries"))
        registry.counter(
            "repro_queries_degraded_total",
            "Queries answered partially (allow_partial) after shard failures.",
        ).set_function(locked("_degraded"))
        with self._lock:
            self._latency_family = registry.histogram(
                "repro_query_latency_seconds",
                "Latency of executed (non-cached) queries, by kind.", ("kind",),
            )
            self._queue_wait_histogram = registry.histogram(
                "repro_queue_wait_seconds",
                "Time an executed query waited for a pool worker.",
            ).labels()
            self._distance_family = registry.histogram(
                "repro_query_distance_computations",
                "Exact distance computations per executed query, by kind.",
                ("kind",), buckets=COST_HISTOGRAM_BUCKETS,
            )

    def _kind_totals(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return {(kind,): float(count) for kind, count in self._by_kind.items()}

    def _partition_totals(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return {(partition_id,): float(count)
                    for partition_id, count in self._partition_loads.items()}

    def _cost_counter_totals(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return {(counter_name,): float(total)
                    for counter_name, total in self._cost_totals.items()}

    # -- readings -----------------------------------------------------------------------

    @property
    def queries(self) -> int:
        """Total queries recorded."""
        with self._lock:
            return self._queries

    def partition_loads(self) -> Dict[str, int]:
        """Queries served per partition (how often each partition was searched)."""
        with self._lock:
            return dict(self._partition_loads)

    def snapshot(self) -> Dict[str, object]:
        """A flat dictionary of every serving metric (for reports and tests)."""
        with self._lock:
            elapsed = (self._clock() - self._started_at) if self._started_at is not None else 0.0
            latencies = list(self._latencies)
            queue_waits = list(self._queue_waits)
            queries = self._queries
            snapshot: Dict[str, object] = {
                "queries": queries,
                "executed": self._executed,
                "served_from_cache": self._served_from_cache,
                "timeouts": self._timeouts,
                "errors": self._errors,
                "degraded": self._degraded,
                "overlay_retries": self._overlay_retries,
                "wall_seconds": elapsed,
                "qps": queries / elapsed if elapsed > 0 else 0.0,
                "queries_by_kind": dict(self._by_kind),
                "partition_loads": dict(self._partition_loads),
                "cost": dict(self._cost_totals),
            }
        if latencies:
            snapshot["latency_ms"] = _latency_block(latencies)
        snapshot["queue_wait_ms"] = _latency_block(queue_waits)
        return snapshot

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ServiceMetrics(queries={self._queries}, executed={self._executed}, "
                f"served_from_cache={self._served_from_cache})"
            )


class IngestMetrics:
    """Thread-safe accumulator for the live-ingestion write path.

    The read path keeps its own :class:`ServiceMetrics`; this class covers
    the other half of a mixed workload: insert throughput (ingest QPS), WAL
    replays at recovery, and compactions (count, points folded, latency).
    Delta size is a gauge owned by the index itself —
    :meth:`repro.ingest.ingesting.IngestingIndex.statistics` merges it into
    this snapshot.
    """

    def __init__(self, *, max_samples: int = 1_000,
                 clock: Callable[[], float] = time.monotonic):
        if max_samples < 1:
            raise EvaluationError("max_samples must be >= 1")
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._inserts = 0
        self._replayed = 0
        self._compactions = 0
        self._points_compacted = 0
        self._compaction_seconds: deque = deque(maxlen=max_samples)
        self._compaction_histogram = None

    def record_insert(self, count: int = 1) -> None:
        """Record ``count`` accepted inserts."""
        now = self._clock()
        with self._lock:
            if self._started_at is None:
                self._started_at = now
            self._inserts += count

    def record_replay(self, count: int) -> None:
        """Record ``count`` WAL records replayed at recovery."""
        with self._lock:
            self._replayed += count

    def record_compaction(self, points: int, seconds: float) -> None:
        """Record one delta-into-tree fold of ``points`` points."""
        with self._lock:
            self._compactions += 1
            self._points_compacted += points
            self._compaction_seconds.append(seconds)
            histogram = self._compaction_histogram
        if histogram is not None:
            histogram.observe(seconds)

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        """Mirror the write-path counters into a Prometheus-style registry.

        Same contract as :meth:`ServiceMetrics.bind_registry`: counters are
        scrape-time reads of the locked state behind :meth:`snapshot`;
        compaction latency additionally feeds a histogram.
        """
        def locked(attribute: str) -> Callable[[], float]:
            def read() -> float:
                with self._lock:
                    return float(getattr(self, attribute))
            return read

        registry.counter(
            "repro_inserts_total", "Accepted triple inserts.",
        ).set_function(locked("_inserts"))
        registry.counter(
            "repro_wal_replayed_total", "WAL records replayed at recovery.",
        ).set_function(locked("_replayed"))
        registry.counter(
            "repro_compactions_total", "Delta-into-tree compactions.",
        ).set_function(locked("_compactions"))
        registry.counter(
            "repro_points_compacted_total", "Points folded into the tree by compactions.",
        ).set_function(locked("_points_compacted"))
        with self._lock:
            self._compaction_histogram = registry.histogram(
                "repro_compaction_seconds", "Duration of one compaction.",
            ).labels()

    @property
    def inserts(self) -> int:
        """Total inserts recorded."""
        with self._lock:
            return self._inserts

    @property
    def compactions(self) -> int:
        """Total compactions recorded."""
        with self._lock:
            return self._compactions

    def snapshot(self) -> Dict[str, object]:
        """A flat dictionary of every ingest metric (for reports and tests)."""
        with self._lock:
            elapsed = (self._clock() - self._started_at) if self._started_at is not None else 0.0
            samples = list(self._compaction_seconds)
            snapshot: Dict[str, object] = {
                "inserts": self._inserts,
                "replayed": self._replayed,
                "ingest_wall_seconds": elapsed,
                "ingest_qps": self._inserts / elapsed if elapsed > 0 else 0.0,
                "compactions": self._compactions,
                "points_compacted": self._points_compacted,
            }
        if samples:
            snapshot["compaction_ms"] = {
                "mean": sum(samples) / len(samples) * 1000.0,
                "max": max(samples) * 1000.0,
                "last": samples[-1] * 1000.0,
            }
        return snapshot

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"IngestMetrics(inserts={self._inserts}, "
                f"compactions={self._compactions}, replayed={self._replayed})"
            )
