"""Tests for the requirements data model."""

import pytest

from repro.errors import TripleError
from repro.rdf import Triple
from repro.requirements import Requirement, RequirementsDocument, collection_from_documents


@pytest.fixture
def requirement() -> Requirement:
    return Requirement(
        requirement_id="REQ001",
        sentences=["The component OBSW001 shall accept the command start-up."],
        triples=[Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")],
    )


class TestRequirement:
    def test_requires_identifier(self):
        with pytest.raises(TripleError):
            Requirement(requirement_id="")

    def test_text_joins_sentences(self, requirement):
        requirement.sentences.append("It shall also send the message heartbeat.")
        assert requirement.text.count(".") == 2

    def test_len_and_iteration(self, requirement):
        assert len(requirement) == 1
        assert list(requirement)[0].subject.name == "OBSW001"


class TestRequirementsDocument:
    def test_requires_identifier(self):
        with pytest.raises(TripleError):
            RequirementsDocument(document_id="")

    def test_add_and_lookup(self, requirement):
        document = RequirementsDocument(document_id="DOC001")
        document.add(requirement)
        assert len(document) == 1
        assert document.requirement("REQ001") is requirement
        with pytest.raises(KeyError):
            document.requirement("REQ999")

    def test_all_triples_in_order(self, requirement):
        second = Requirement("REQ002", triples=[Triple.of("OBSW002", "Fun:send_msg",
                                                          "MsgType:heartbeat")])
        document = RequirementsDocument(document_id="DOC001", requirements=[requirement, second])
        triples = document.all_triples()
        assert len(triples) == 2
        assert triples[0].subject.name == "OBSW001"

    def test_to_rdf_document(self, requirement):
        document = RequirementsDocument(document_id="DOC001", requirements=[requirement],
                                        title="Vol 1")
        rdf_document = document.to_rdf_document()
        assert rdf_document.document_id == "DOC001"
        assert rdf_document.triples == document.all_triples()
        assert rdf_document.metadata["title"] == "Vol 1"
        assert "start-up" in rdf_document.text


class TestCollectionConversion:
    def test_collection_from_documents(self, requirement):
        documents = [
            RequirementsDocument(document_id="DOC001", requirements=[requirement]),
            RequirementsDocument(document_id="DOC002"),
        ]
        collection = collection_from_documents(documents)
        assert len(collection) == 2
        assert collection.get("DOC001").triples == documents[0].all_triples()
