"""Synthetic requirements-corpus generator.

The paper's evaluation corpus — "several hundreds of documents from which
about 100,000 triples were extracted", written at CIRA about on-board
software — is proprietary.  This generator produces a synthetic corpus with
the same structure (see DESIGN.md, substitution table):

* a set of Actors (``OBSW001`` … software components, ``HWD001`` … hardware
  devices);
* a catalogue of function predicates with antinomy pairs (the requirements
  vocabulary of :mod:`repro.requirements.vocabulary`);
* parameter values per parameter type (commands, messages, inputs, ...);
* documents made of requirements, each requirement made of one or more
  controlled-English sentences, each sentence yielding one triple;
* a controlled fraction of *injected inconsistencies*: pairs of requirements
  about the same Actor and Parameter whose predicates are antinomic
  (``accept_cmd`` vs ``block_cmd``), which is exactly the paper's definition
  of an inconsistency;
* additionally, some (actor, parameter) pairs are restated across documents
  with the *same* predicate, so ground-truth sets have more than one element
  and the precision/recall trade-off of Fig. 8 is observable.

The generator is fully deterministic given its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.rdf.terms import Concept
from repro.rdf.triple import Triple
from repro.requirements.model import Requirement, RequirementsDocument
from repro.requirements.vocabulary import (
    FUNCTION_FAMILIES,
    FUNCTION_PREFIX,
    PARAMETER_PREFIXES,
)

__all__ = ["GeneratorConfig", "SyntheticCorpus", "RequirementsGenerator"]

#: Sentence template: subject sortal, verb phrase, object sortal, parameter.
_VERB_PHRASES: Dict[str, Tuple[str, bool]] = {
    # function name -> (verb, negated?)
    "accept_cmd": ("accept", False),
    "block_cmd": ("block", False),
    "send_msg": ("send", False),
    "suppress_msg": ("suppress", False),
    "acquire_in": ("acquire", False),
    "ignore_in": ("ignore", False),
    "enable_mode": ("enable", False),
    "disable_mode": ("disable", False),
    "start_proc": ("start", False),
    "stop_proc": ("stop", False),
    "transmit_tm": ("transmit", False),
    "withhold_tm": ("withhold", False),
    "raise_signal": ("raise", False),
    "clear_signal": ("clear", False),
}

#: Which parameter prefix (object vocabulary) each function family uses.
_FAMILY_PARAMETER_PREFIX: Dict[str, str] = {
    "command_handling": "CmdType",
    "messaging": "MsgType",
    "acquisition": "InType",
    "mode_management": "ModeType",
    "process_control": "ParType",
    "telemetry": "TmType",
    "signalling": "SigType",
}

_PARAMETER_WORDS: Dict[str, Sequence[str]] = {
    "CmdType": ("start-up", "shutdown", "reset", "self-test", "reboot", "calibrate",
                "arm", "disarm", "sync", "dump"),
    "MsgType": ("power-amplifier", "heartbeat", "status-report", "error-log",
                "telecommand-echo", "housekeeping", "event-report", "alarm"),
    "InType": ("pre-launch-phase", "ascent-phase", "cruise-phase", "descent-phase",
               "ground-test", "sensor-frame", "gps-fix", "imu-sample"),
    "ModeType": ("safe-mode", "nominal-mode", "survival-mode", "standby-mode",
                 "maintenance-mode", "diagnostic-mode"),
    "ParType": ("watchdog", "scheduler", "downlink", "uplink", "memory-scrub",
                "bus-controller", "thermal-control"),
    "TmType": ("temperature-frame", "voltage-frame", "attitude-frame",
               "pressure-frame", "current-frame"),
    "SigType": ("overcurrent-flag", "overtemperature-flag", "watchdog-alarm",
                "latch-up-flag", "undervoltage-flag"),
}

_SUBJECT_SORTAL = {"OBSW": "component", "HWD": "device"}


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Knobs of the synthetic corpus generator.

    Parameters
    ----------
    documents:
        Number of requirements documents.
    requirements_per_document:
        Requirements in each document.
    sentences_per_requirement:
        Sentences (= triples) per requirement.
    actors:
        Number of distinct Actors (80% software components, 20% hardware).
    inconsistency_rate:
        Fraction of requirements that get an injected antinomic counterpart.
    restatement_rate:
        Fraction of triples that are restated (same actor/function/parameter)
        in another requirement, enlarging ground-truth sets.
    seed:
        Seed of the deterministic pseudo-random generator.
    """

    documents: int = 20
    requirements_per_document: int = 10
    sentences_per_requirement: int = 3
    actors: int = 40
    inconsistency_rate: float = 0.2
    restatement_rate: float = 0.15
    seed: int = 7

    def __post_init__(self) -> None:
        if min(self.documents, self.requirements_per_document,
               self.sentences_per_requirement, self.actors) < 1:
            raise WorkloadError("documents, requirements, sentences and actors must be >= 1")
        for name in ("inconsistency_rate", "restatement_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1], got {value}")

    @property
    def total_triples(self) -> int:
        """Upper bound on the number of generated base triples."""
        return self.documents * self.requirements_per_document * self.sentences_per_requirement


@dataclass
class SyntheticCorpus:
    """The generator's output.

    Attributes
    ----------
    documents:
        The requirements documents.
    actor_names / parameter_values:
        The Actors and parameter values used, for vocabulary construction.
    injected_inconsistencies:
        Pairs ``(triple_a, triple_b)`` that were written to be inconsistent
        (same subject and object, antinomic predicates).
    """

    documents: List[RequirementsDocument]
    actor_names: List[str]
    parameter_values: Dict[str, List[str]]
    injected_inconsistencies: List[Tuple[Triple, Triple]] = field(default_factory=list)

    def all_triples(self) -> List[Triple]:
        """Every triple of the corpus, in document order."""
        return [
            triple
            for document in self.documents
            for requirement in document
            for triple in requirement
        ]

    def all_requirements(self) -> List[Requirement]:
        """Every requirement of the corpus, in document order."""
        return [requirement for document in self.documents for requirement in document]

    def __repr__(self) -> str:
        return (
            f"SyntheticCorpus(documents={len(self.documents)}, "
            f"triples={len(self.all_triples())}, "
            f"injected_inconsistencies={len(self.injected_inconsistencies)})"
        )


class RequirementsGenerator:
    """Deterministic generator of synthetic on-board-software requirements."""

    def __init__(self, config: GeneratorConfig | None = None):
        self.config = config or GeneratorConfig()
        self._rng = random.Random(self.config.seed)

    # -- public API ------------------------------------------------------------------------

    def generate(self) -> SyntheticCorpus:
        """Generate the corpus described by the configuration."""
        config = self.config
        actor_names = self._make_actors(config.actors)
        parameter_values = {prefix: list(values) for prefix, values in _PARAMETER_WORDS.items()}
        corpus = SyntheticCorpus(
            documents=[], actor_names=actor_names, parameter_values=parameter_values
        )

        requirement_counter = 0
        restatement_pool: List[Triple] = []
        for document_index in range(config.documents):
            document = RequirementsDocument(
                document_id=f"DOC{document_index + 1:03d}",
                title=f"On-board software requirements, volume {document_index + 1}",
            )
            for _ in range(config.requirements_per_document):
                requirement_counter += 1
                requirement = self._make_requirement(
                    f"REQ{requirement_counter:05d}", actor_names, restatement_pool
                )
                document.add(requirement)
                self._maybe_inject_inconsistency(document, requirement, corpus,
                                                 requirement_counter)
            corpus.documents.append(document)
        return corpus

    # -- pieces -----------------------------------------------------------------------------

    def _make_actors(self, count: int) -> List[str]:
        software = max(1, round(count * 0.8))
        hardware = max(0, count - software)
        names = [f"OBSW{i + 1:03d}" for i in range(software)]
        names += [f"HWD{i + 1:03d}" for i in range(hardware)]
        return names

    def _pick_function(self) -> Tuple[str, str, str]:
        """Return (family, function, parameter_prefix)."""
        family, positive, negative = self._rng.choice(FUNCTION_FAMILIES)
        function = positive if self._rng.random() < 0.7 else negative
        return family, function, _FAMILY_PARAMETER_PREFIX[family]

    def _make_triple(self, actor: str, function: str, prefix: str, parameter: str) -> Triple:
        return Triple(
            Concept(actor),
            Concept(function, FUNCTION_PREFIX),
            Concept(parameter, prefix),
        )

    def _make_sentence(self, actor: str, function: str, prefix: str, parameter: str) -> str:
        verb, _ = _VERB_PHRASES[function]
        sortal = PARAMETER_PREFIXES[prefix]
        subject_sortal = _SUBJECT_SORTAL.get(actor[:4].rstrip("0123456789"), "component")
        return f"The {subject_sortal} {actor} shall {verb} the {sortal} {parameter}."

    def _make_requirement(self, requirement_id: str, actor_names: List[str],
                          restatement_pool: List[Triple]) -> Requirement:
        config = self.config
        requirement = Requirement(requirement_id=requirement_id)
        actor = self._rng.choice(actor_names)
        for _ in range(config.sentences_per_requirement):
            reuse = (
                restatement_pool
                and self._rng.random() < config.restatement_rate
            )
            if reuse:
                base = self._rng.choice(restatement_pool)
                assert isinstance(base.predicate, Concept) and isinstance(base.object, Concept)
                triple = base
                actor_name = str(base.subject.name if isinstance(base.subject, Concept) else base.subject)
                sentence = self._make_sentence(
                    actor_name, base.predicate.name, base.object.prefix, base.object.name
                )
            else:
                family, function, prefix = self._pick_function()
                parameter = self._rng.choice(_PARAMETER_WORDS[prefix])
                triple = self._make_triple(actor, function, prefix, parameter)
                sentence = self._make_sentence(actor, function, prefix, parameter)
                restatement_pool.append(triple)
            requirement.triples.append(triple)
            requirement.sentences.append(sentence)
        return requirement

    def _maybe_inject_inconsistency(self, document: RequirementsDocument,
                                    requirement: Requirement, corpus: SyntheticCorpus,
                                    counter: int) -> None:
        """With probability ``inconsistency_rate``, add one to three requirements
        stating the antinomic counterpart of one of ``requirement``'s triples.

        The conflicting statements use spelling variants of the parameter
        ("start-up", "startup", "start_up"), which is what real corpora look
        like once several authors restate the same constraint; the
        ground-truth oracle treats those variants as the same object.
        """
        if self._rng.random() >= self.config.inconsistency_rate or not requirement.triples:
            return
        base = self._rng.choice(requirement.triples)
        assert isinstance(base.predicate, Concept) and isinstance(base.object, Concept)
        antonym = self._antonym_of(base.predicate.name)
        if antonym is None:
            return
        subject_name = base.subject.name if isinstance(base.subject, Concept) else str(base.subject)
        conflict_count = self._rng.randint(1, 3)
        for variant_index in range(conflict_count):
            parameter = self._spelling_variant(base.object.name, variant_index)
            conflicting = self._make_triple(subject_name, antonym, base.object.prefix, parameter)
            sentence = self._make_sentence(subject_name, antonym, base.object.prefix, parameter)
            conflicting_requirement = Requirement(
                requirement_id=f"REQ{counter:05d}-C{variant_index + 1}",
                sentences=[sentence],
                triples=[conflicting],
            )
            document.add(conflicting_requirement)
            corpus.injected_inconsistencies.append((base, conflicting))

    @staticmethod
    def _spelling_variant(parameter: str, variant_index: int) -> str:
        """Spelling variants of a hyphenated parameter name (variant 0 = original)."""
        if variant_index == 0:
            return parameter
        if variant_index == 1:
            return parameter.replace("-", "")
        return parameter.replace("-", "_")

    @staticmethod
    def _antonym_of(function: str) -> str | None:
        for _, positive, negative in FUNCTION_FAMILIES:
            if function == positive:
                return negative
            if function == negative:
                return positive
        return None
