"""Unit tests of the wire request/response schemas."""

from __future__ import annotations

import pytest

from server_corpus import BASE_TRIPLES
from repro.core.semtree import SemanticMatch
from repro.errors import SchemaError, VocabularyError
from repro.io.serialization import match_from_dict, match_to_dict, triple_to_dict
from repro.rdf import Triple
from repro.rdf.terms import Concept, Literal
from repro.server.schemas import (MAX_BATCH_QUERIES, error_body, parse_insert_request,
                                  parse_pattern, parse_query_request, parse_term,
                                  parse_triple, render_result, status_for)
from repro.service.engine import QueryResult
from repro.service.planner import QueryKind, QuerySpec


def wire_triple(triple: Triple) -> dict:
    return triple_to_dict(triple)


class TestTerms:
    def test_text_concept(self):
        assert parse_term("Fun:accept_cmd") == Concept("accept_cmd", "Fun")

    def test_text_literal(self):
        assert parse_term('"42"') == Literal("42")

    def test_dict_form(self):
        assert parse_term({"kind": "concept", "name": "x", "prefix": "Fun"}) == \
            Concept("x", "Fun")

    def test_empty_text_rejected(self):
        with pytest.raises(SchemaError, match="cannot be empty"):
            parse_term("  ")

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError, match="string or a term dictionary"):
            parse_term(42, field="queries[0].triple.subject")

    def test_bad_dict_rejected(self):
        with pytest.raises(SchemaError, match="invalid term dictionary"):
            parse_term({"kind": "wormhole"})

    def test_non_string_dict_fields_rejected(self):
        # A non-string name would pass Concept's truthiness check and blow
        # up deep in the distance layer — after an insert's WAL append.
        with pytest.raises(SchemaError, match="must be a string"):
            parse_term({"kind": "concept", "name": 123})
        with pytest.raises(SchemaError, match="must be a string"):
            parse_term({"kind": "literal", "value": ["x"]})


class TestTriples:
    def test_string_terms(self):
        triple = parse_triple({"subject": "OBSW001", "predicate": "Fun:send_msg",
                               "object": "MsgType:ping"})
        assert triple == Triple.of("OBSW001", "Fun:send_msg", "MsgType:ping")

    def test_dict_terms_round_trip(self):
        for triple in BASE_TRIPLES:
            assert parse_triple(wire_triple(triple)) == triple

    def test_missing_position(self):
        with pytest.raises(SchemaError, match="missing required field 'object'"):
            parse_triple({"subject": "a", "predicate": "b"})

    def test_unknown_field(self):
        with pytest.raises(SchemaError, match="unknown field"):
            parse_triple({"subject": "a", "predicate": "b", "object": "c", "graph": "g"})

    def test_variable_rejected(self):
        # "?x" parses to a Variable, which a stored triple cannot hold.
        with pytest.raises(SchemaError, match="variable"):
            parse_triple({"subject": "?x", "predicate": "b", "object": "c"})

    def test_non_object(self):
        with pytest.raises(SchemaError, match="expected a JSON object"):
            parse_triple(["s", "p", "o"])


class TestPatterns:
    def test_bound_subject(self):
        pattern = parse_pattern({"subject": "OBSW001"})
        assert pattern.matches(BASE_TRIPLES[0])
        assert not pattern.matches(BASE_TRIPLES[2])

    def test_star_is_wildcard(self):
        pattern = parse_pattern({"subject": "OBSW001", "predicate": "*"})
        assert pattern.predicate is None

    def test_all_wildcards_rejected(self):
        with pytest.raises(SchemaError, match="at least one bound position"):
            parse_pattern({"subject": "*"})


class TestQueryRequests:
    def test_single_knn_defaults(self):
        specs, batched = parse_query_request(
            {"triple": wire_triple(BASE_TRIPLES[0])}, QueryKind.KNN
        )
        assert not batched
        assert specs == [QuerySpec.k_nearest(BASE_TRIPLES[0], 3)]

    def test_single_range(self):
        specs, batched = parse_query_request(
            {"triple": wire_triple(BASE_TRIPLES[0]), "radius": 0.25}, QueryKind.RANGE
        )
        assert not batched
        assert specs[0].kind is QueryKind.RANGE and specs[0].radius == 0.25

    def test_batch_envelope(self):
        specs, batched = parse_query_request(
            {"queries": [{"triple": wire_triple(t), "k": 2} for t in BASE_TRIPLES]},
            QueryKind.KNN,
        )
        assert batched and len(specs) == len(BASE_TRIPLES)
        assert all(spec.k == 2 for spec in specs)

    def test_deadline_and_pattern(self):
        specs, _ = parse_query_request(
            {"triple": wire_triple(BASE_TRIPLES[0]), "k": 5,
             "pattern": {"subject": "OBSW001"}, "deadline": 0.5},
            QueryKind.KNN,
        )
        assert specs[0].deadline == 0.5 and specs[0].pattern is not None

    def test_range_requires_radius(self):
        with pytest.raises(SchemaError, match="missing required field 'radius'"):
            parse_query_request({"triple": wire_triple(BASE_TRIPLES[0])},
                                QueryKind.RANGE)

    def test_knn_rejects_radius(self):
        with pytest.raises(SchemaError, match="unknown field"):
            parse_query_request(
                {"triple": wire_triple(BASE_TRIPLES[0]), "radius": 0.2}, QueryKind.KNN
            )

    def test_bad_k(self):
        with pytest.raises(SchemaError, match="k must be >= 1"):
            parse_query_request({"triple": wire_triple(BASE_TRIPLES[0]), "k": 0},
                                QueryKind.KNN)
        with pytest.raises(SchemaError, match="expected an integer"):
            parse_query_request({"triple": wire_triple(BASE_TRIPLES[0]), "k": True},
                                QueryKind.KNN)

    def test_bad_deadline(self):
        with pytest.raises(SchemaError, match="positive"):
            parse_query_request(
                {"triple": wire_triple(BASE_TRIPLES[0]), "deadline": 0}, QueryKind.KNN
            )

    def test_field_path_points_into_batch(self):
        with pytest.raises(SchemaError, match=r"queries\[1\]"):
            parse_query_request(
                {"queries": [{"triple": wire_triple(BASE_TRIPLES[0])},
                             {"k": 3}]},
                QueryKind.KNN,
            )

    def test_empty_batch(self):
        with pytest.raises(SchemaError, match="at least one query"):
            parse_query_request({"queries": []}, QueryKind.KNN)

    def test_batch_cap(self):
        queries = [{"triple": wire_triple(BASE_TRIPLES[0])}] * (MAX_BATCH_QUERIES + 1)
        with pytest.raises(SchemaError, match="at most"):
            parse_query_request({"queries": queries}, QueryKind.KNN)


class TestInsertRequests:
    def test_single(self):
        inserts, batched = parse_insert_request(
            {"triple": wire_triple(BASE_TRIPLES[0]), "document_id": "d1"}
        )
        assert not batched
        assert inserts == [(BASE_TRIPLES[0], "d1")]

    def test_batch(self):
        inserts, batched = parse_insert_request(
            {"inserts": [{"triple": wire_triple(t)} for t in BASE_TRIPLES]}
        )
        assert batched
        assert [triple for triple, _ in inserts] == BASE_TRIPLES
        assert all(document_id is None for _, document_id in inserts)

    def test_document_id_type(self):
        with pytest.raises(SchemaError, match="document_id"):
            parse_insert_request({"triple": wire_triple(BASE_TRIPLES[0]),
                                  "document_id": 7})


class TestResponses:
    def test_render_result_shape(self):
        match = SemanticMatch(BASE_TRIPLES[0], 0.125, ("doc-1",))
        result = QueryResult(spec=QuerySpec.k_nearest(BASE_TRIPLES[0], 1),
                             matches=(match,), cached=True, latency_seconds=0.002)
        payload = render_result(result)
        assert payload["cached"] is True
        assert payload["timed_out"] is False
        assert payload["error"] is None
        assert payload["latency_ms"] == pytest.approx(2.0)
        assert payload["matches"][0]["text"] == str(BASE_TRIPLES[0])
        assert payload["matches"][0]["documents"] == ["doc-1"]

    def test_match_wire_round_trip(self):
        match = SemanticMatch(BASE_TRIPLES[1], 0.5, ("a", "b"))
        assert match_from_dict(match_to_dict(match)) == match


class TestErrors:
    def test_schema_error_is_400_with_field(self):
        error = SchemaError("boom", field="queries[0].k")
        assert status_for(error) == 400
        assert error_body(error)["error"] == {
            "type": "SchemaError", "message": "queries[0].k: boom",
            "field": "queries[0].k",
        }

    def test_domain_error_is_400(self):
        assert status_for(VocabularyError("unknown concept")) == 400

    def test_unexpected_error_is_500(self):
        error = ValueError("bug")
        assert status_for(error) == 500
        assert error_body(error)["error"] == {"type": "ValueError", "message": "bug"}
