"""End-to-end request tracing over the HTTP front end.

Locks the wire contract from ``docs/observability.md``: every response
echoes ``X-Trace-Id`` (client-supplied or generated), ``X-Debug-Trace``
opts into a ``debug.trace`` span tree, and the slow-query log correlates
with the request's trace id.
"""

from __future__ import annotations

import http.client
import json
import logging
import urllib.parse

from server_corpus import QUERY_TRIPLES
from repro.workloads import ServerClient


def raw_request(url, method, path, body=None, headers=None):
    """One verbatim round trip exposing status, headers, and payload."""
    parsed = urllib.parse.urlsplit(url)
    connection = http.client.HTTPConnection(parsed.hostname, parsed.port,
                                            timeout=10)
    try:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        connection.request(method, path, body=data,
                           headers={"Content-Type": "application/json",
                                    **(headers or {})})
        response = connection.getresponse()
        payload = json.loads(response.read())
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


def span_names(node):
    yield node["name"]
    for child in node["children"]:
        yield from span_names(child)


def covered_fraction(node):
    """Fraction of a span's duration covered by the union of its children."""
    intervals = sorted(
        (child["start_ms"], child["start_ms"] + child["duration_ms"])
        for child in node["children"]
    )
    covered = 0.0
    cursor = None
    for start, end in intervals:
        if cursor is None or start > cursor:
            covered += end - start
            cursor = end
        elif end > cursor:
            covered += end - cursor
            cursor = end
    return covered / node["duration_ms"] if node["duration_ms"] > 0 else 1.0


class TestTraceHeaders:
    def test_client_supplied_trace_id_is_echoed(self, make_server):
        server, _ = make_server()
        status, headers, _ = raw_request(
            server.url, "GET", "/v1/healthz",
            headers={"X-Trace-Id": "my-trace-123"})
        assert status == 200
        assert headers["X-Trace-Id"] == "my-trace-123"

    def test_missing_trace_id_gets_generated(self, make_server):
        server, _ = make_server()
        _, headers, _ = raw_request(server.url, "GET", "/v1/healthz")
        generated = headers["X-Trace-Id"]
        assert len(generated) == 32
        int(generated, 16)

    def test_garbage_trace_id_is_replaced_not_echoed(self, make_server):
        server, _ = make_server()
        _, headers, _ = raw_request(
            server.url, "GET", "/v1/healthz",
            headers={"X-Trace-Id": "bad header\twith control chars"})
        assert "\t" not in headers["X-Trace-Id"]
        assert headers["X-Trace-Id"] != "bad header\twith control chars"

    def test_error_responses_carry_the_trace_id(self, make_server):
        server, _ = make_server()
        status, headers, payload = raw_request(
            server.url, "POST", "/v1/knn", body={"nonsense": True},
            headers={"X-Trace-Id": "err-trace"})
        assert status == 400
        assert headers["X-Trace-Id"] == "err-trace"
        assert payload["error"]["type"]


class TestDebugTrace:
    def test_opt_in_returns_span_tree(self, make_server):
        server, _ = make_server()
        body = ServerClient.knn_payload(QUERY_TRIPLES[0], 3)
        _, _, payload = raw_request(
            server.url, "POST", "/v1/knn", body=body,
            headers={"X-Debug-Trace": "1", "X-Trace-Id": "debug-1"})
        trace = payload["debug"]["trace"]
        assert trace["trace_id"] == "debug-1"
        (request,) = trace["spans"]
        names = set(span_names(request))
        # the per-stage spans of one uncached single-server query
        assert {"request", "read_body", "handle", "parse", "plan",
                "cache_lookup", "queue_wait", "execute"} <= names

    def test_without_header_no_debug_section(self, make_server):
        _, client = make_server()
        payload = client.knn(QUERY_TRIPLES[0], 3)
        assert "debug" not in payload

    def test_cache_hit_trace_has_no_execute_span(self, make_server):
        server, client = make_server()
        client.knn(QUERY_TRIPLES[0], 3)
        body = ServerClient.knn_payload(QUERY_TRIPLES[0], 3)
        _, _, payload = raw_request(server.url, "POST", "/v1/knn", body=body,
                                    headers={"X-Debug-Trace": "1"})
        names = set(span_names(payload["debug"]["trace"]["spans"][0]))
        assert "cache_lookup" in names
        assert "execute" not in names

    def test_handle_span_children_cover_the_handle_time(self, make_server):
        server, _ = make_server()
        body = ServerClient.knn_payload(QUERY_TRIPLES[0], 3)
        _, _, payload = raw_request(server.url, "POST", "/v1/knn", body=body,
                                    headers={"X-Debug-Trace": "yes"})
        (request,) = payload["debug"]["trace"]["spans"]
        (handle,) = [child for child in request["children"]
                     if child["name"] == "handle"]
        assert covered_fraction(handle) >= 0.95

    def test_client_trace_sample_summary(self, make_server):
        from repro.workloads import generate_load

        server, _ = make_server()
        payloads = [("/v1/knn", ServerClient.knn_payload(QUERY_TRIPLES[0], 3))]
        summary = generate_load(server.url, payloads, threads=1,
                                trace_sample=True)
        sample = summary["trace_sample"]
        assert sample is not None
        assert "request" in set(span_names(sample["spans"][0]))

    def test_client_cost_sample_misses_the_cache(self, make_server):
        # The timed run caches every payload it sends; a verbatim replay
        # would be a cache hit and report no cost.  The sample must send
        # an uncached variant so its trace carries real cost counters.
        from repro.workloads import generate_load

        server, _ = make_server()
        payloads = [("/v1/knn", ServerClient.knn_payload(QUERY_TRIPLES[0], 3))]
        summary = generate_load(server.url, payloads, threads=1,
                                cost_sample=True)
        costs = summary["cost_sample"]
        assert costs, "cost sample hit the cache and reported no counters"
        assert any(entry["cost"].get("distance_computations", 0) > 0
                   for entry in costs)


class TestSlowQueryLog:
    def test_slow_queries_are_logged_with_trace_id(self, make_server, caplog):
        server, _ = make_server(slow_query_ms=0.0)   # everything is "slow"
        body = ServerClient.knn_payload(QUERY_TRIPLES[0], 3)
        with caplog.at_level(logging.WARNING, logger="repro.slow_query"):
            _, headers, _ = raw_request(server.url, "POST", "/v1/knn",
                                        body=body,
                                        headers={"X-Trace-Id": "slow-http-1"})
        records = [record for record in caplog.records
                   if record.name == "repro.slow_query"]
        assert records, "no slow-query record emitted"
        record = records[-1]
        assert record.kind == "knn"
        assert record.trace_id == "slow-http-1" == headers["X-Trace-Id"]
        assert record.visited_partitions

    def test_cache_hits_are_not_logged(self, make_server, caplog):
        _, client = make_server(slow_query_ms=0.0)
        with caplog.at_level(logging.WARNING, logger="repro.slow_query"):
            client.knn(QUERY_TRIPLES[0], 3)
            before = len(caplog.records)
            client.knn(QUERY_TRIPLES[0], 3)   # served from cache
        assert len(caplog.records) == before

    def test_disabled_by_default(self, make_server, caplog):
        _, client = make_server()
        with caplog.at_level(logging.WARNING, logger="repro.slow_query"):
            client.knn(QUERY_TRIPLES[0], 3)
        assert not [record for record in caplog.records
                    if record.name == "repro.slow_query"]
