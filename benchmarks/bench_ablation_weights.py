"""Ablation — the (α, β, γ) weights of the semantic distance (Eq. 1).

DESIGN.md calls out the distance weights as a design decision: the case
study uses α = γ = 0.4, β = 0.2 (subject and object dominate; the predicate
carries the antinomy signal).  This ablation sweeps several weight settings
and reports the effectiveness (precision/recall at K = 3) of the
inconsistency-retrieval task under each, demonstrating that

* ignoring the subject or the object hurts precision (unrelated statements
  about other actors/parameters crowd the result set), and
* the default weighting is at least as good as the uniform weighting.
"""

from __future__ import annotations

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.evaluation import Experiment, average_precision_recall, evaluate_retrieval
from repro.requirements import (
    GeneratorConfig,
    GroundTruthOracle,
    RequirementsGenerator,
    build_requirement_distance,
    build_requirement_vocabularies,
)
from repro.semantics import DistanceWeights

from .conftest import write_report

K = 3
QUERY_CASES = 60

#: (label, weights) — the ablated settings.
WEIGHT_SETTINGS = (
    ("default 0.4/0.2/0.4", DistanceWeights(0.4, 0.2, 0.4)),
    ("uniform 1/3 each", DistanceWeights(1 / 3, 1 / 3, 1 / 3)),
    ("subject only", DistanceWeights(1.0, 0.0, 0.0)),
    ("predicate heavy 0.2/0.6/0.2", DistanceWeights(0.2, 0.6, 0.2)),
)


def _corpus_and_cases():
    config = GeneratorConfig(
        documents=15, requirements_per_document=8, sentences_per_requirement=3,
        actors=30, inconsistency_rate=0.3, seed=21,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    oracle = GroundTruthOracle(corpus.all_triples(), vocabularies["Fun"])
    cases = oracle.build_cases(QUERY_CASES, seed=9)
    return corpus, vocabularies, cases


def _effectiveness(corpus, vocabularies, cases, weights: DistanceWeights):
    distance = build_requirement_distance(vocabularies, weights=weights)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=16, max_partitions=3, partition_capacity=96,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    per_query = [
        evaluate_retrieval(
            [match.triple for match in index.k_nearest(case.target_triple, K)],
            case.expected,
        )
        for case in cases
    ]
    return average_precision_recall(per_query)


@pytest.mark.benchmark(group="ablation-weights")
def test_report_ablation_weights(benchmark, results_dir):
    def run_sweep() -> Experiment:
        corpus, vocabularies, cases = _corpus_and_cases()
        experiment = Experiment(
            experiment_id="ablation_distance_weights",
            description=f"Effect of the Eq. (1) weights on effectiveness (K={K})",
            swept_parameter="setting",
        )
        for position, (label, weights) in enumerate(WEIGHT_SETTINGS):
            result = _effectiveness(corpus, vocabularies, cases, weights)
            experiment.record(label, position,
                              precision=result.precision, recall=result.recall, f1=result.f1)
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    def f1_of(label: str) -> float:
        return experiment.series[label].values("f1")[0]

    # The full triple signal beats relying on the subject alone.
    assert f1_of("default 0.4/0.2/0.4") > f1_of("subject only")
    # The default weighting is competitive with (not worse than ~5% below) uniform.
    assert f1_of("default 0.4/0.2/0.4") >= f1_of("uniform 1/3 each") - 0.05

    write_report(results_dir, experiment, ["precision", "recall", "f1"])
