"""Slow-client adversaries: slowloris, stalled readers, buffer bounds.

A correct transport treats a slow peer as that peer's problem: its
connection is strung along inside bounded memory and eventually reaped,
while every other connection keeps being served at full speed.  The
threaded transport gets this from its per-read socket timeout (one
misbehaving peer costs one parked thread); the event-loop transport from
its idle/request deadlines (one misbehaving peer costs one selector
registration).  Both are pinned here.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from server_corpus import BASE_TRIPLES
from repro.faults import FaultPlan, FaultSpec
from repro.obs.prometheus import parse_exposition
from repro.workloads import ServerClient

KNN_REQUEST_HEAD = b"POST /v1/knn HTTP/1.1\r\nHost: slow\r\n" \
                   b"Content-Type: application/json\r\n"


def _recv_closed_within(sock: socket.socket, seconds: float) -> bool:
    """True if the server closes ``sock`` within ``seconds``."""
    sock.settimeout(seconds)
    try:
        while True:
            if sock.recv(65536) == b"":
                return True
    except socket.timeout:
        return False
    except ConnectionError:
        return True


def _read_full_response(sock: socket.socket, timeout: float = 15.0) -> tuple:
    """(status, body bytes) — blocks until Content-Length bytes arrived."""
    sock.settimeout(timeout)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        assert chunk, f"closed mid-head: {data!r}"
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(body) < length:
        chunk = sock.recv(65536)
        assert chunk, "closed mid-body"
        body += chunk
    return status, body[:length]


class TestSlowloris:
    def test_threaded_reaps_a_stalled_sender(self, make_transport_server):
        """No bytes for longer than the read timeout → silent close."""
        server = make_transport_server(
            "threaded", server_kwargs={"request_timeout": 0.3})
        with socket.create_connection(server.server_address, timeout=5) as sock:
            sock.sendall(b"GET /v1/healthz HT")  # ... and then nothing
            assert _recv_closed_within(sock, 5.0), \
                "threaded transport kept a stalled sender past its timeout"
        with ServerClient(server.url) as client:
            assert client.health()["status"] == "ok"

    def test_async_reaps_a_dripping_sender(self, make_transport_server):
        """A drip that always beats the idle timeout still hits the
        whole-request deadline — progress alone must not pin a socket."""
        server = make_transport_server(
            "async", server_kwargs={"request_timeout": 1.0,
                                    "idle_timeout": 30.0})
        request = b"GET /v1/healthz HTTP/1.1\r\nHost: drip\r\n" + \
                  b"X-Drip: " + b"d" * 64 + b"\r\n\r\n"
        deadline = time.monotonic() + 10.0
        with socket.create_connection(server.server_address, timeout=5) as sock:
            closed = False
            for i in range(len(request)):
                try:
                    sock.sendall(request[i:i + 1])
                except (BrokenPipeError, ConnectionResetError):
                    closed = True
                    break
                time.sleep(0.05)  # steady progress, ~3.2s total > deadline
                if time.monotonic() > deadline:
                    break
            assert closed or _recv_closed_within(sock, 5.0), \
                "async transport let a dripping sender outlive its deadline"
        with ServerClient(server.url) as client:
            assert client.health()["status"] == "ok"

    def test_async_reaps_an_idle_connection(self, make_transport_server):
        server = make_transport_server(
            "async", server_kwargs={"idle_timeout": 0.3})
        with socket.create_connection(server.server_address, timeout=5) as sock:
            assert _recv_closed_within(sock, 5.0), \
                "async transport kept an idle connection past idle_timeout"

    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_victim_requests_are_served_during_the_attack(
            self, make_transport_server, transport):
        """Four slowloris connections; a well-behaved client sails through."""
        kwargs = ({"request_timeout": 2.0} if transport == "threaded"
                  else {"request_timeout": 2.0, "idle_timeout": 2.0})
        server = make_transport_server(transport, server_kwargs=kwargs)
        attackers = [socket.create_connection(server.server_address, timeout=5)
                     for _ in range(4)]
        try:
            for sock in attackers:
                sock.sendall(b"POST /v1/knn HTTP/1.1\r\nHost: lo")
            with ServerClient(server.url) as client:
                started = time.perf_counter()
                for _ in range(5):
                    client.knn(BASE_TRIPLES[0], 2)
                elapsed = time.perf_counter() - started
            assert elapsed < 1.5, \
                f"victim requests took {elapsed:.2f}s behind slow clients"
        finally:
            for sock in attackers:
                sock.close()


class TestBoundedBuffers:
    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_oversized_headers_are_rejected_mid_stream(
            self, make_transport_server, transport):
        """The 431 arrives long before the attacker finishes sending —
        the transport bounds its read buffer instead of hoarding bytes."""
        server = make_transport_server(transport)
        chunk = b"X-Flood: " + b"f" * 4087 + b"\r\n"  # 4 KiB per header line
        sent = 0
        with socket.create_connection(server.server_address, timeout=10) as sock:
            sock.sendall(b"GET /v1/healthz HTTP/1.1\r\n")
            status = None
            for _ in range(256):  # up to 1 MiB if the server let it through
                try:
                    sock.sendall(chunk)
                    sent += len(chunk)
                except (BrokenPipeError, ConnectionResetError):
                    break
                sock.settimeout(0.01)
                try:
                    peek = sock.recv(65536)
                except socket.timeout:
                    continue
                except ConnectionError:
                    break
                if peek:
                    status = int(peek.split(None, 2)[1])
                    break
            assert status == 431
            assert sent < 256 * len(chunk), \
                "the server read the whole flood before answering"

    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_open_connections_gauge_tracks_reaping(
            self, make_transport_server, transport):
        kwargs = ({"request_timeout": 0.5} if transport == "threaded"
                  else {"idle_timeout": 0.5})
        server = make_transport_server(transport, server_kwargs=kwargs)
        with ServerClient(server.url) as client:
            def gauge() -> float:
                families = parse_exposition(client.metrics_prometheus())
                (sample,) = families["repro_open_connections"].samples
                return sample.value

            idle = [socket.create_connection(server.server_address, timeout=5)
                    for _ in range(5)]
            try:
                assert gauge() >= 5
            finally:
                for sock in idle:
                    sock.close()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if gauge() <= 1:  # only the metrics client's own connection
                    break
                time.sleep(0.05)
            assert gauge() <= 1, "closed connections were never reaped"


class TestStalledReader:
    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_dripped_response_does_not_block_other_connections(
            self, make_transport_server, transport):
        """One response dripping via a slow_drip fault; a second client's
        requests complete while the first is still being strung along."""
        plan = FaultPlan([FaultSpec(operation="handle", target="/v1/knn",
                                    kind="slow_drip", latency=1.2,
                                    max_fires=1)])
        server = make_transport_server(
            transport, server_kwargs={"fault_plan": plan})
        request = (KNN_REQUEST_HEAD +
                   b"Content-Length: %d\r\n\r\n" % len(_knn_body()) +
                   _knn_body())
        with socket.create_connection(server.server_address,
                                      timeout=15) as stalled:
            stalled.sendall(request)
            started = time.perf_counter()
            # The stalled reader never calls recv while the drip is live;
            # the response trickles into its kernel buffer.
            with ServerClient(server.url) as client:
                for _ in range(5):
                    client.health()
                victim_elapsed = time.perf_counter() - started
            status, body = _read_full_response(stalled)
            drip_elapsed = time.perf_counter() - started
        assert status == 200 and b"matches" in body
        assert drip_elapsed >= 1.0, "the drip fault never paced the response"
        assert victim_elapsed < 1.0, \
            f"other connections waited {victim_elapsed:.2f}s behind the drip"


def _knn_body() -> bytes:
    return json.dumps(ServerClient.knn_payload(BASE_TRIPLES[0], 2)).encode()
