"""Context-local request tracing with per-stage spans.

One :class:`Trace` lives for the duration of one request.  The handler
activates it (:func:`activate`), after which any code on the same thread
can open named spans with the :func:`span` context manager — no plumbing
of trace objects through call signatures.  Crossing a thread pool is
explicit: the submitter calls :func:`capture_context` and the worker wraps
its body in :func:`resume_context`, which restores both the trace and the
parent span so worker-side spans hang off the right node of the tree.

When no trace is active every tracing entry point is a cheap no-op (one
``ContextVar.get``), which is what keeps the instrumentation overhead on
the warm query path within noise.

The wire contract (implemented by the HTTP layers, documented in
``docs/observability.md``): the trace id travels in the ``X-Trace-Id``
header and is echoed on every response; sending ``X-Debug-Trace: 1``
returns the recorded span tree in a ``debug.trace`` response section.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Trace",
    "activate",
    "annotate_span",
    "capture_context",
    "current_trace",
    "new_trace_id",
    "record_span",
    "resume_context",
    "span",
]

_CURRENT_TRACE: ContextVar[Optional["Trace"]] = ContextVar("repro_trace", default=None)
_CURRENT_SPAN: ContextVar[Optional[int]] = ContextVar("repro_span", default=None)

_TRACE_ID_MAX_LENGTH = 128


def new_trace_id() -> str:
    """A fresh 32-hex-character trace id."""
    return uuid.uuid4().hex


def sanitize_trace_id(candidate: Optional[str]) -> str:
    """A usable trace id: the client's if plausible, a fresh one otherwise.

    Client-supplied ids are untrusted header input headed for logs and
    response payloads, so anything empty, oversized, or containing
    non-printable/whitespace characters is replaced rather than rejected.
    """
    if candidate:
        candidate = candidate.strip()
        if (0 < len(candidate) <= _TRACE_ID_MAX_LENGTH
                and all(33 <= ord(char) < 127 for char in candidate)):
            return candidate
    return new_trace_id()


class _Span:
    __slots__ = ("span_id", "parent_id", "name", "started", "ended", "meta")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 started: float, meta: Optional[Dict[str, object]]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started = started
        self.ended: Optional[float] = None
        self.meta = meta


class Trace:
    """A per-request span recorder, safe to share across worker threads."""

    __slots__ = ("trace_id", "started", "_lock", "_spans", "_next_id")

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self.started = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[_Span] = []
        self._next_id = 0

    # -- recording ----------------------------------------------------------------------

    def begin(self, name: str, parent_id: Optional[int],
              meta: Optional[Dict[str, object]] = None) -> int:
        """Open a span; returns its id for :meth:`finish`."""
        now = time.perf_counter()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._spans.append(_Span(span_id, parent_id, name, now, meta))
        return span_id

    def finish(self, span_id: int) -> None:
        """Close the span opened by :meth:`begin`."""
        now = time.perf_counter()
        with self._lock:
            for recorded in reversed(self._spans):
                if recorded.span_id == span_id:
                    recorded.ended = now
                    return

    def add(self, name: str, started: float, ended: float,
            parent_id: Optional[int] = None,
            meta: Optional[Dict[str, object]] = None) -> int:
        """Record an already-measured interval (e.g. queue wait) as a span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            recorded = _Span(span_id, parent_id, name, started, meta)
            recorded.ended = ended
            self._spans.append(recorded)
        return span_id

    def annotate(self, span_id: int, meta: Dict[str, object]) -> None:
        """Merge extra metadata into an already-open (or closed) span.

        Some annotations — a search's cost counters, for instance — are only
        known after the span's body has run, when :meth:`begin` has already
        fixed the initial meta dict.  Unknown ids are ignored.
        """
        if not meta:
            return
        with self._lock:
            for recorded in reversed(self._spans):
                if recorded.span_id == span_id:
                    if recorded.meta is None:
                        recorded.meta = dict(meta)
                    else:
                        recorded.meta.update(meta)
                    return

    # -- reading ------------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The span tree, times in milliseconds relative to trace start.

        Spans still open when this is called are reported up to "now" and
        flagged ``in_progress`` — the serializer span, for instance, cannot
        observe its own completion.
        """
        now = time.perf_counter()
        with self._lock:
            spans = [(s.span_id, s.parent_id, s.name, s.started, s.ended, s.meta)
                     for s in self._spans]
        nodes: Dict[int, Dict[str, object]] = {}
        roots: List[Dict[str, object]] = []
        for span_id, parent_id, name, started, ended, meta in spans:
            node: Dict[str, object] = {
                "name": name,
                "start_ms": (started - self.started) * 1000.0,
                "duration_ms": ((ended if ended is not None else now) - started) * 1000.0,
            }
            if ended is None:
                node["in_progress"] = True
            if meta:
                node["meta"] = dict(meta)
            node["children"] = []
            nodes[span_id] = node
            parent = nodes.get(parent_id) if parent_id is not None else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return {
            "trace_id": self.trace_id,
            "duration_ms": (now - self.started) * 1000.0,
            "spans": roots,
        }

    def __repr__(self) -> str:
        with self._lock:
            return f"Trace({self.trace_id!r}, spans={len(self._spans)})"


def current_trace() -> Optional[Trace]:
    """The trace active on this thread, or ``None``."""
    return _CURRENT_TRACE.get()


@contextmanager
def activate(trace: Optional[Trace]):
    """Make ``trace`` the ambient trace for the duration of the block."""
    trace_token = _CURRENT_TRACE.set(trace)
    span_token = _CURRENT_SPAN.set(None)
    try:
        yield trace
    finally:
        _CURRENT_SPAN.reset(span_token)
        _CURRENT_TRACE.reset(trace_token)


@contextmanager
def span(name: str, **meta: object):
    """Record a named span around the block; a no-op when no trace is active."""
    trace = _CURRENT_TRACE.get()
    if trace is None:
        yield None
        return
    span_id = trace.begin(name, _CURRENT_SPAN.get(), meta or None)
    token = _CURRENT_SPAN.set(span_id)
    try:
        yield trace
    finally:
        _CURRENT_SPAN.reset(token)
        trace.finish(span_id)


def record_span(name: str, started: float, ended: float, **meta: object) -> None:
    """Record an already-measured interval under the current span (no-op untraced)."""
    trace = _CURRENT_TRACE.get()
    if trace is not None:
        trace.add(name, started, ended, _CURRENT_SPAN.get(), meta or None)


def annotate_span(**meta: object) -> None:
    """Merge metadata into the *current* span (no-op when untraced).

    Used for facts only known after the span body ran — e.g. the per-query
    cost counters a search accumulated inside an ``execute`` span.
    """
    trace = _CURRENT_TRACE.get()
    if trace is None:
        return
    span_id = _CURRENT_SPAN.get()
    if span_id is not None:
        trace.annotate(span_id, meta)


def capture_context() -> Tuple[Optional[Trace], Optional[int]]:
    """Snapshot ``(trace, parent span)`` for hand-off to a worker thread."""
    return _CURRENT_TRACE.get(), _CURRENT_SPAN.get()


@contextmanager
def resume_context(context: Tuple[Optional[Trace], Optional[int]]):
    """Restore a captured trace context inside a worker thread."""
    trace, span_id = context
    if trace is None:
        yield None
        return
    trace_token = _CURRENT_TRACE.set(trace)
    span_token = _CURRENT_SPAN.set(span_id)
    try:
        yield trace
    finally:
        _CURRENT_SPAN.reset(span_token)
        _CURRENT_TRACE.reset(trace_token)
