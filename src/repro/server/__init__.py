"""The process-level network front end over the serving stack.

Everything below this package runs in one Python process; ``repro.server``
is the layer that puts a socket in front of it, so the index can serve
clients that are not the process that built it:

* :mod:`repro.server.schemas` — wire request/response schemas: typed
  validation of query/insert payloads into :class:`QuerySpec` /
  :class:`Triple`, result rendering, structured JSON errors;
* :mod:`repro.server.app` — :class:`ServerApp`, the transport-free endpoint
  logic: queries through :class:`~repro.service.engine.QueryEngine`
  (batched, cached, deadline-bounded), inserts through
  :class:`~repro.ingest.ingesting.IngestingIndex` (WAL + delta), the
  unified ``/v1/metrics`` payload, graceful close with
  checkpoint-on-exit;
* :mod:`repro.server.protocol` — the transport-neutral framing and
  dispatch layer both HTTP front ends share: one incremental request
  parser, one error ladder, one access-log line;
* :mod:`repro.server.http` — :class:`SemTreeServer`, the threaded
  transport (``ThreadingHTTPServer``, one handler thread per connection);
* :mod:`repro.server.async_http` — :class:`AsyncSemTreeServer`, the
  event-loop transport (one ``selectors`` loop + a worker pool);
* :mod:`repro.server.factory` — :func:`create_server`, which picks a
  transport from the ``--transport`` flag / ``$REPRO_TRANSPORT`` (the
  event-loop transport is the default);
* :mod:`repro.server.bootstrap` — recovering a servable index (and the
  semantic distance) from a checkpoint snapshot + WAL on disk;
* :mod:`repro.server.__main__` — the ``python -m repro.server`` CLI.

The HTTP client lives with the other workload drivers:
:class:`repro.workloads.ServerClient`.  See ``docs/server.md`` for the API
reference and ``docs/architecture.md`` for where this layer sits.
"""

from repro.server.app import ServerApp
from repro.server.async_http import AsyncSemTreeServer
from repro.server.factory import (DEFAULT_TRANSPORT, TRANSPORT_ENV, TRANSPORTS,
                                  create_server, resolve_transport)
from repro.server.bootstrap import (derive_distance, harvest_triples, load_shard,
                                    recover_index)
from repro.server.http import SemTreeServer
from repro.server.schemas import (parse_insert_request, parse_query_request,
                                  parse_shard_scan_request, parse_triple,
                                  render_result)
from repro.server.shard import ShardApp

__all__ = [
    "ServerApp",
    "ShardApp",
    "SemTreeServer",
    "AsyncSemTreeServer",
    "create_server",
    "resolve_transport",
    "TRANSPORTS",
    "DEFAULT_TRANSPORT",
    "TRANSPORT_ENV",
    "derive_distance",
    "harvest_triples",
    "recover_index",
    "load_shard",
    "parse_triple",
    "parse_query_request",
    "parse_insert_request",
    "parse_shard_scan_request",
    "render_result",
]
