"""Points stored in SemTree.

SemTree indexes the FastMap image of each triple: a k-dimensional point.
:class:`LabeledPoint` couples the coordinates with an arbitrary *label* (in
the full pipeline, the originating :class:`~repro.rdf.triple.Triple` and its
document identifier), because queries must return the triples, not raw
coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_

__all__ = ["LabeledPoint", "euclidean_distance", "squared_euclidean_distance"]


@dataclass(frozen=True, slots=True)
class LabeledPoint:
    """An immutable point in the embedded space, with an attached label.

    Coordinates are stored as a tuple of floats so the point is hashable and
    safe to share between partitions; :meth:`as_array` returns a NumPy view
    when vectorised maths is needed.
    """

    coordinates: Tuple[float, ...]
    label: Any = None

    def __post_init__(self) -> None:
        if len(self.coordinates) == 0:
            raise IndexError_("a point needs at least one coordinate")
        object.__setattr__(
            self, "coordinates", tuple(float(value) for value in self.coordinates)
        )

    @classmethod
    def of(cls, coordinates: Iterable[float], label: Any = None) -> "LabeledPoint":
        """Build a point from any iterable of coordinates (list, array, ...)."""
        return cls(tuple(float(value) for value in coordinates), label)

    @property
    def dimensions(self) -> int:
        """Number of coordinates."""
        return len(self.coordinates)

    def __getitem__(self, index: int) -> float:
        """Coordinate access — ``point[Sr]`` in the paper's notation."""
        return self.coordinates[index]

    def as_array(self) -> np.ndarray:
        """Coordinates as a NumPy array (a fresh copy)."""
        return np.asarray(self.coordinates, dtype=float)

    def distance_to(self, other: "LabeledPoint") -> float:
        """Euclidean distance to another point of the same dimensionality."""
        return euclidean_distance(self, other)

    def __repr__(self) -> str:
        coords = ", ".join(f"{value:.3f}" for value in self.coordinates)
        return f"LabeledPoint(({coords}), label={self.label!r})"


#: ``math.sumprod`` (3.12+) runs the multiply-accumulate in C; older
#: interpreters fall back to an explicit loop.
_sumprod = getattr(math, "sumprod", None)


def squared_euclidean_distance(a: LabeledPoint | Sequence[float],
                               b: LabeledPoint | Sequence[float]) -> float:
    """Squared Euclidean distance between two points (or raw coordinate sequences).

    Computed as the sum of squared differences directly — no square root is
    ever taken, so callers comparing against a squared radius pay one pass
    and zero transcendental calls (the old implementation went through
    ``math.dist`` and squared the result, a sqrt computed only to be undone).
    """
    coords_a = a.coordinates if isinstance(a, LabeledPoint) else a
    coords_b = b.coordinates if isinstance(b, LabeledPoint) else b
    if len(coords_a) != len(coords_b):
        raise IndexError_(
            f"dimension mismatch: {len(coords_a)} vs {len(coords_b)}"
        )
    if _sumprod is not None:
        diffs = [x - y for x, y in zip(coords_a, coords_b)]
        return _sumprod(diffs, diffs)
    total = 0.0
    for x, y in zip(coords_a, coords_b):
        delta = x - y
        total += delta * delta
    return total


def euclidean_distance(a: LabeledPoint | Sequence[float],
                       b: LabeledPoint | Sequence[float]) -> float:
    """Euclidean distance between two points (or raw coordinate sequences).

    This is the hot path of every scalar leaf scan: ``math.dist`` runs the
    whole subtract-square-accumulate-sqrt loop in a single C pass, so it does
    *not* defer to :func:`squared_euclidean_distance` — building the
    intermediate difference list there would cost an extra Python-level pass
    that ``math.dist`` avoids.
    """
    coords_a = a.coordinates if isinstance(a, LabeledPoint) else a
    coords_b = b.coordinates if isinstance(b, LabeledPoint) else b
    if len(coords_a) != len(coords_b):
        raise IndexError_(
            f"dimension mismatch: {len(coords_a)} vs {len(coords_b)}"
        )
    return math.dist(coords_a, coords_b)
