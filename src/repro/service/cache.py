"""LRU + TTL result cache with generation-based invalidation.

Entries are keyed on the planner's cache key (embedded coordinates + query
parameters) and tagged with the index *generation* they were computed at
(:attr:`repro.core.semtree.SemTreeIndex.generation`).  Every mutation of the
built index bumps the generation, so a lookup that finds an entry from an
older generation treats it as a miss and drops it — stale k-NN answers are
never served after incremental inserts, without the mutation path having to
know which keys are affected.

Eviction is twofold: least-recently-used beyond ``capacity``, and
time-to-live expiry when a ``ttl`` is configured.  All operations are
guarded by a lock so the cache can be shared by the engine's worker
threads.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple

from repro.errors import QueryError

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counters of one cache's lifetime (immutable snapshot)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    __slots__ = ("value", "generation", "expires_at")

    def __init__(self, value: Any, generation: int, expires_at: Optional[float]):
        self.value = value
        self.generation = generation
        self.expires_at = expires_at


class ResultCache:
    """A bounded, thread-safe result cache.

    Parameters
    ----------
    capacity:
        Maximum number of entries retained (LRU beyond that).
    ttl:
        Optional time-to-live in seconds; entries older than this are
        expired lazily at lookup time.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, capacity: int = 1024, *, ttl: float | None = None,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise QueryError(f"cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise QueryError("the cache TTL must be a positive number of seconds")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[Hashable, ...], _Entry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0

    # -- lookups -----------------------------------------------------------------------

    def get(self, key: Tuple[Hashable, ...], generation: int) -> Optional[Any]:
        """Return the cached value, or ``None`` on miss/expiry/staleness.

        ``generation`` is the index's current generation; entries written at
        an older generation are dropped and counted as invalidations.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            if entry.generation != generation:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry.value

    def put(self, key: Tuple[Hashable, ...], value: Any, generation: int) -> None:
        """Store a value computed at ``generation``."""
        expires_at = self._clock() + self.ttl if self.ttl is not None else None
        with self._lock:
            self._entries[key] = _Entry(value, generation, expires_at)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    # -- maintenance -------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """An immutable snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                invalidations=self._invalidations,
                size=len(self._entries),
            )

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"ResultCache(size={stats.size}/{self.capacity}, hits={stats.hits}, "
            f"misses={stats.misses}, hit_rate={stats.hit_rate:.2f})"
        )
