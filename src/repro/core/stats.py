"""Structural statistics of SemTree instances.

The efficiency experiments of the paper hinge on structural properties of
the tree: depth, balance (balanced vs "totally unbalanced"), number of nodes
(its complexity analysis uses ``N = 2K/Bs`` nodes for ``K`` points and bucket
size ``Bs``), and how points are spread over partitions.  This module
computes those metrics for both the sequential :class:`~repro.core.kdtree.KDTree`
and the :class:`~repro.core.distributed.DistributedSemTree`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.distributed import DistributedSemTree
from repro.core.kdtree import KDTree

__all__ = ["TreeStats", "sequential_stats", "distributed_stats", "expected_nodes"]


@dataclass(frozen=True, slots=True)
class TreeStats:
    """Summary statistics of a tree (sequential or one partition's subtree)."""

    points: int
    nodes: int
    leaves: int
    routing_nodes: int
    depth: int
    optimal_depth: int
    balance_ratio: float
    mean_bucket_fill: float

    @property
    def is_degenerate(self) -> bool:
        """True when the tree is much deeper than a balanced tree would be."""
        return self.balance_ratio > 4.0


def expected_nodes(points: int, bucket_size: int) -> int:
    """The paper's node-count estimate ``N = 2K / Bs`` (Section III-C)."""
    if bucket_size <= 0:
        raise ValueError("bucket_size must be positive")
    return max(1, (2 * points) // bucket_size)


def _optimal_depth(points: int, bucket_size: int) -> int:
    leaves_needed = max(1, math.ceil(points / max(bucket_size, 1)))
    return max(0, math.ceil(math.log2(leaves_needed)))


def sequential_stats(tree: KDTree) -> TreeStats:
    """Compute :class:`TreeStats` for a sequential KD-tree."""
    points = len(tree)
    leaves = tree.leaf_count()
    nodes = tree.node_count()
    depth = tree.depth()
    optimal = _optimal_depth(points, tree.bucket_size)
    balance = depth / optimal if optimal > 0 else (1.0 if depth <= 1 else float(depth))
    fill = points / (leaves * tree.bucket_size) if leaves else 0.0
    return TreeStats(
        points=points,
        nodes=nodes,
        leaves=leaves,
        routing_nodes=nodes - leaves,
        depth=depth,
        optimal_depth=optimal,
        balance_ratio=balance,
        mean_bucket_fill=fill,
    )


def distributed_stats(tree: DistributedSemTree) -> Dict[str, object]:
    """Compute global and per-partition statistics for a distributed SemTree."""
    per_partition: Dict[str, Dict[str, float]] = {}
    total_nodes = 0
    total_leaves = 0
    for partition in tree.partitions:
        nodes = list(partition.local_nodes())
        leaves = [node for node in nodes if node.is_leaf]
        edge = [node for node in nodes if node.is_edge()]
        per_partition[partition.partition_id] = {
            "points": partition.point_count,
            "nodes": len(nodes),
            "leaves": len(leaves),
            "edge_nodes": len(edge),
            "routing_only": partition.is_routing_only,
        }
        total_nodes += len(nodes)
        total_leaves += len(leaves)
    counts = [partition.point_count for partition in tree.partitions if partition.point_count]
    imbalance = (max(counts) / max(min(counts), 1)) if counts else 1.0
    return {
        "points": len(tree),
        "partitions": tree.partition_count,
        "nodes": total_nodes,
        "leaves": total_leaves,
        "expected_nodes": expected_nodes(len(tree), tree.config.bucket_size),
        "per_partition": per_partition,
        "data_partition_imbalance": imbalance,
        "messages": tree.cluster.clock.messages,
    }
