"""Exception hierarchy shared by every ``repro`` subsystem.

Keeping all exceptions in one module lets callers catch the broad
:class:`ReproError` when they only care about "something in the library
failed", while still being able to catch precise subclasses (for instance
:class:`VocabularyError` when a concept is missing from a taxonomy).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class TripleError(ReproError):
    """Raised for malformed triples or terms (e.g. empty subject)."""


class ParseError(ReproError):
    """Raised when a Turtle-like document cannot be parsed.

    Attributes
    ----------
    line:
        One-based line number at which the problem was found, or ``None``
        when the error is not attached to a specific line.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class NamespaceError(ReproError):
    """Raised for unknown or conflicting namespace prefixes."""


class VocabularyError(ReproError):
    """Raised when a concept or relation is missing from a vocabulary."""


class TaxonomyError(ReproError):
    """Raised for malformed taxonomies (cycles, unknown concepts, ...)."""


class DistanceError(ReproError):
    """Raised for invalid distance configurations (e.g. weights not summing to 1)."""


class EmbeddingError(ReproError):
    """Raised when FastMap cannot embed the requested objects."""


class IndexError_(ReproError):
    """Raised for invalid index operations (named with a trailing underscore
    to avoid shadowing the built-in :class:`IndexError`)."""


class PartitionError(ReproError):
    """Raised for partition-management failures (no capacity, unknown id, ...)."""


class ClusterError(ReproError):
    """Raised by the simulated cluster (unknown node, undeliverable message)."""


class QueryError(ReproError):
    """Raised for invalid queries (negative k, negative radius, ...)."""


class ExtractionError(ReproError):
    """Raised when the NLP pipeline cannot extract triples from a sentence."""


class EvaluationError(ReproError):
    """Raised for malformed evaluation inputs (empty ground truth, ...)."""


class WorkloadError(ReproError):
    """Raised when a synthetic workload cannot be generated as requested."""


class ObservabilityError(ReproError):
    """Raised for invalid metric registrations or malformed expositions."""


class SchemaError(ReproError):
    """Raised when a wire payload does not match the server's request schema.

    Attributes
    ----------
    field:
        Dotted path of the offending field (e.g. ``"queries[2].k"``), or
        ``None`` when the problem is not attached to a specific field.
    """

    def __init__(self, message: str, field: str | None = None):
        self.field = field
        if field is not None:
            message = f"{field}: {message}"
        super().__init__(message)


class ServerClosingError(ReproError):
    """Raised when a request reaches a server that is shutting down.

    Mapped to HTTP 503 (not a client error): the request was well-formed
    and a retry against a healthy instance would succeed.
    """


class ShardError(ReproError):
    """Raised when shard servers cannot answer a partition scan.

    Carries the structured partial-failure report of a scatter-gather: which
    partitions failed (and why) and which completed, so a caller knows
    exactly how much of the fan-out succeeded.  Mapped to HTTP 502 — the
    coordinator is healthy, a backend behind it is not.

    Attributes
    ----------
    details:
        ``{"failed": {partition_id: reason}, "completed": [partition_id]}``.
    """

    def __init__(self, message: str, *, failed: dict | None = None,
                 completed: list | None = None):
        self.details = {
            "failed": dict(failed or {}),
            "completed": list(completed or ()),
        }
        super().__init__(message)


class AdmissionError(ReproError):
    """Raised when admission control rejects a query before execution.

    Mapped to HTTP 503 with a ``Retry-After`` header: the request was
    well-formed but the server is shedding load (queue full, the predicted
    queue wait exceeds the query's deadline, or the client is over its
    rate limit) and retrying later is the right move.

    Attributes
    ----------
    reason:
        Why the query was shed: ``"queue_full"``, ``"deadline"`` or
        ``"rate_limit"``.
    retry_after:
        Seconds the client should wait before retrying (the value of the
        ``Retry-After`` response header).
    """

    def __init__(self, message: str, *, reason: str = "queue_full",
                 retry_after: float = 1.0):
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(message)


class ServerError(ReproError):
    """Raised by the HTTP client when the server reports a failure.

    Attributes
    ----------
    status:
        The HTTP status code of the response.
    kind:
        The error type the server reported (e.g. ``"SchemaError"``), or
        ``None`` when the response carried no structured error payload.
    retry_after:
        Seconds the server asked the client to wait before retrying (the
        ``Retry-After`` response header), or ``None`` when absent.
    """

    def __init__(self, message: str, status: int = 500, kind: str | None = None,
                 retry_after: float | None = None):
        self.status = status
        self.kind = kind
        self.retry_after = retry_after
        super().__init__(message)
