"""Typed metric instruments and the registry that owns them.

The registry is the single source of truth behind *both* metric formats a
server exposes: the JSON payload reads the underlying domain counters
directly, while the Prometheus exposition reads them through scrape-time
callbacks registered here — so the two views can never disagree.

Three instrument types, modelled on the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (``inc``), or
  callback-backed so a scrape reads a live domain counter.
* :class:`Gauge` — point-in-time values (``set`` / ``set_function``).
* :class:`Histogram` — fixed-bucket latency distributions (``observe``),
  rendered as cumulative ``_bucket`` series plus ``_sum`` / ``_count``.

Instruments with label dimensions are *families*: ``family.labels(x)``
returns (creating on first use) the child for one label-value tuple.
Families of counters and gauges additionally accept a family-level
callback returning ``{label_values: value}`` so dynamic label sets
(partition ids, endpoint names) are re-enumerated at every scrape.

Everything is stdlib-only and thread-safe under one registry lock; the
hot-path cost of ``observe`` is a bisect plus two additions.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
]

#: Default latency buckets (seconds): 0.5 ms up to 10 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Sample:
    """One exposed time series: a name, a label set, and a value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:
        return f"Sample({self.name!r}, {dict(self.labels)!r}, {self.value!r})"


def _check_label_values(labelnames: Sequence[str], values: Sequence[object]) -> Tuple[str, ...]:
    if len(values) != len(labelnames):
        raise ObservabilityError(
            f"expected {len(labelnames)} label value(s) for {tuple(labelnames)}, "
            f"got {len(values)}"
        )
    return tuple(str(value) for value in values)


class Counter:
    """A monotonically increasing total, or a scrape-time view of one."""

    __slots__ = ("_lock", "_value", "_function")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ObservabilityError(f"counters can only increase, got {amount}")
        with self._lock:
            self._value += amount

    def set_function(self, function: Callable[[], float]) -> None:
        """Read the value from ``function()`` at scrape time instead."""
        with self._lock:
            self._function = function

    def get(self) -> float:
        """Current value (calls the backing function when one is set)."""
        with self._lock:
            function = self._function
            value = self._value
        return float(function()) if function is not None else value


class Gauge:
    """A point-in-time value that can go up and down."""

    __slots__ = ("_lock", "_value", "_function")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def set_function(self, function: Callable[[], float]) -> None:
        """Read the value from ``function()`` at scrape time instead."""
        with self._lock:
            self._function = function

    def get(self) -> float:
        """Current value (calls the backing function when one is set)."""
        with self._lock:
            function = self._function
            value = self._value
        return float(function()) if function is not None else value


class Histogram:
    """A fixed-bucket distribution of observations.

    Buckets are cumulative at collection time (Prometheus semantics); the
    per-observation cost is one bisect over the upper bounds plus two
    additions, cheap enough for the query hot path.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]):
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ObservabilityError("histograms need at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ObservabilityError(f"bucket bounds must be strictly increasing: {bounds}")
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    @property
    def bounds(self) -> Tuple[float, ...]:
        """The finite bucket upper bounds (``+Inf`` is implicit)."""
        return self._bounds

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self._bounds, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            self._sum += value
            self._count += 1

    def get(self) -> Tuple[List[int], float, int]:
        """``(per-bucket counts, sum, count)`` — counts are *not* cumulative."""
        with self._lock:
            return list(self._counts), self._sum, self._count


class MetricFamily:
    """All time series sharing one metric name, type, and help string."""

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Sequence[str], lock: threading.Lock,
                 buckets: Optional[Sequence[float]] = None):
        if not _METRIC_NAME.match(name):
            raise ObservabilityError(f"invalid metric name: {name!r}")
        for labelname in labelnames:
            if not _LABEL_NAME.match(labelname) or labelname.startswith("__"):
                raise ObservabilityError(f"invalid label name: {labelname!r}")
        if kind == "histogram" and "le" in labelnames:
            raise ObservabilityError("'le' is reserved on histograms")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = lock
        self._children: Dict[Tuple[str, ...], object] = {}
        self._callback: Optional[Callable[[], Mapping[Sequence[object], float]]] = None

    def _make_child(self):
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        return Histogram(self._lock, self.buckets or DEFAULT_LATENCY_BUCKETS)

    def labels(self, *values: object):
        """The child instrument for one label-value tuple (created on first use)."""
        key = _check_label_values(self.labelnames, values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    # Convenience for label-less families: act directly as the single child.

    def inc(self, amount: float = 1.0) -> None:
        """Shorthand for ``family.labels().inc(amount)`` on label-less families."""
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        """Shorthand for ``family.labels().set(value)`` on label-less families."""
        self.labels().set(value)

    def observe(self, value: float) -> None:
        """Shorthand for ``family.labels().observe(value)`` on label-less families."""
        self.labels().observe(value)

    def set_function(self, function: Callable[[], float]) -> None:
        """Shorthand for ``family.labels().set_function(fn)`` on label-less families."""
        self.labels().set_function(function)

    def set_callback(self, callback: Callable[[], Mapping[Sequence[object], float]]) -> None:
        """Enumerate ``{label_values: value}`` at scrape time.

        For counter/gauge families whose label sets are data-driven
        (partition ids, endpoint names): the callback re-reads the live
        domain counters on every scrape, replacing any static children.
        """
        if self.kind == "histogram":
            raise ObservabilityError("histogram families cannot be callback-backed")
        with self._lock:
            self._callback = callback

    # -- collection ---------------------------------------------------------------------

    def _label_tuple(self, values: Sequence[str],
                     extra: Tuple[Tuple[str, str], ...] = ()) -> Tuple[Tuple[str, str], ...]:
        return tuple(zip(self.labelnames, values)) + extra

    def collect(self) -> List[Sample]:
        """Flatten the family into exposition samples (histograms cumulative)."""
        with self._lock:
            callback = self._callback
            children = list(self._children.items())
        samples: List[Sample] = []
        if callback is not None:
            for raw_key, value in sorted(callback().items(), key=lambda kv: tuple(map(str, kv[0]))):
                key = _check_label_values(
                    self.labelnames,
                    raw_key if isinstance(raw_key, (tuple, list)) else (raw_key,))
                samples.append(Sample(self.name, self._label_tuple(key), float(value)))
            return samples
        for key, child in sorted(children, key=lambda kv: kv[0]):
            if self.kind in ("counter", "gauge"):
                samples.append(Sample(self.name, self._label_tuple(key), child.get()))
                continue
            counts, total, count = child.get()
            cumulative = 0
            for bound, bucket_count in zip(child.bounds, counts):
                cumulative += bucket_count
                samples.append(Sample(
                    f"{self.name}_bucket",
                    self._label_tuple(key, (("le", _format_bound(bound)),)),
                    float(cumulative),
                ))
            samples.append(Sample(f"{self.name}_bucket",
                                  self._label_tuple(key, (("le", "+Inf"),)),
                                  float(count)))
            samples.append(Sample(f"{self.name}_sum", self._label_tuple(key), total))
            samples.append(Sample(f"{self.name}_count", self._label_tuple(key), float(count)))
        return samples


def _format_bound(bound: float) -> str:
    """Bucket bound as Prometheus renders it (integral bounds without '.0')."""
    if bound == int(bound):
        return str(int(bound)) + ".0"
    return repr(bound)


class MetricsRegistry:
    """A process-local set of metric families, collected for exposition.

    Registration is idempotent: asking for an existing name with the same
    type and label names returns the existing family, while a mismatch
    raises :class:`~repro.errors.ObservabilityError`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _register(self, name: str, kind: str, help_text: str,
                  labelnames: Sequence[str],
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(labelnames):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            family = MetricFamily(name, kind, help_text, labelnames,
                                  threading.Lock(), buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help_text, labelnames)

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> MetricFamily:
        """Register (or fetch) a histogram family with fixed ``buckets``."""
        return self._register(name, "histogram", help_text, labelnames, buckets)

    def collect(self) -> List[MetricFamily]:
        """Every registered family, in name order."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render(self) -> str:
        """The registry as Prometheus text exposition v0.0.4."""
        from repro.obs.prometheus import render_exposition
        return render_exposition(self)
