"""K-nearest search state — Table I of the paper.

The distributed k-nearest search algorithm is described by the paper through
its input parameters (Table I):

=============  =====  =======================================================
Field          Ref.   Possible values
=============  =====  =======================================================
Node Status    S      Not Visited (Nv); Left Visited (Lv); Right Visited (Rv);
                      All Visited (Av)
Number of      K      the number of points we have to find
points
Distance       D      the distance between the interested point and the most
                      distant one in the result set
Result-set     Rs     a structure able to store in memory the k points of
                      interest found
Point          P      the point of interest
=============  =====  =======================================================

This module implements those pieces: :class:`NodeStatus`, the bounded
:class:`ResultSet` (``Rs``), and :class:`KSearchState` which bundles ``K``,
``P``, ``Rs`` and exposes the two sub-conditions of the backward visit
(distance comparison and replenishment check).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, List, Optional, Set, Tuple

import numpy as np

from repro.core.cost import SearchCost
from repro.core.point import LabeledPoint, euclidean_distance
from repro.errors import QueryError

__all__ = ["NodeStatus", "Neighbour", "ResultSet", "KSearchState"]


class NodeStatus(Enum):
    """Visit status of a node during the backward phase of k-search (Table I)."""

    NOT_VISITED = "Nv"
    LEFT_VISITED = "Lv"
    RIGHT_VISITED = "Rv"
    ALL_VISITED = "Av"


@dataclass(frozen=True, slots=True)
class Neighbour:
    """One entry of the result set: a stored point and its distance to ``P``."""

    point: LabeledPoint
    distance: float

    @property
    def label(self) -> Any:
        """Convenience accessor for the stored point's label."""
        return self.point.label


class ResultSet:
    """The paper's ``Rs``: a bounded max-heap of the ``k`` closest points found.

    ``D`` (Table I) is the distance between the query point and the most
    distant point currently in the result set; it is exposed by
    :attr:`current_radius`.
    """

    def __init__(self, k: int):
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self.k = k
        # Max-heap via negated distances.  The negated arrival counter makes
        # ties fully first-come-first-retained: an incoming candidate equal
        # to the current radius is rejected (strict ``<`` below), and when a
        # closer candidate displaces the worst entry, the *latest-offered* of
        # equally-distant maxima is evicted first.  Together these give one
        # invariant — among equal distances, the earliest offer always
        # survives — which is exactly what the vectorized kernel's stable
        # top-k preselection reproduces.
        self._heap: List[Tuple[float, int, Neighbour]] = []
        self._counter = itertools.count()

    def offer(self, point: LabeledPoint, distance: float) -> bool:
        """Offer a candidate; returns True when it enters the result set."""
        if distance < 0:
            raise QueryError("distances must be non-negative")
        neighbour = Neighbour(point, distance)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, -next(self._counter), neighbour))
            return True
        if distance < self.current_radius:
            heapq.heapreplace(self._heap, (-distance, -next(self._counter), neighbour))
            return True
        return False

    @property
    def current_radius(self) -> float:
        """``D``: distance to the farthest retained point (∞ while not full)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    @property
    def is_full(self) -> bool:
        """True once ``k`` points have been retained (Rs.length() >= K)."""
        return len(self._heap) >= self.k

    def __len__(self) -> int:
        return len(self._heap)

    def neighbours(self) -> List[Neighbour]:
        """The retained neighbours, closest first."""
        return sorted((entry[2] for entry in self._heap), key=lambda n: n.distance)

    def points(self) -> List[LabeledPoint]:
        """The retained points, closest first."""
        return [neighbour.point for neighbour in self.neighbours()]

    def labels(self) -> List[Any]:
        """The labels of the retained points, closest first."""
        return [neighbour.label for neighbour in self.neighbours()]

    def merge(self, other: "ResultSet") -> None:
        """Fold another result set into this one (used when merging partition results)."""
        for neighbour in other.neighbours():
            self.offer(neighbour.point, neighbour.distance)

    def __repr__(self) -> str:
        return f"ResultSet(k={self.k}, found={len(self)}, radius={self.current_radius:.3f})"


@dataclass
class KSearchState:
    """The bundled state of one k-nearest search (the paper's Table I).

    Attributes
    ----------
    query:
        ``P``, the point of interest.
    k:
        ``K``, the number of points to find.
    results:
        ``Rs``, the bounded result set.
    nodes_visited / points_examined / partitions_visited:
        Reproduction-side counters used by tests and benchmarks.
    cost:
        Fine-grained work counters (:class:`~repro.core.cost.SearchCost`):
        exact distance computations, prefilter prunes, kernel batches.
    """

    query: LabeledPoint
    k: int
    results: ResultSet = field(init=False)
    nodes_visited: int = 0
    points_examined: int = 0
    partitions_visited: int = 0
    cost: SearchCost = field(default_factory=SearchCost)
    visited_partition_ids: List[str] = field(default_factory=list)
    _visited_partition_set: Set[str] = field(default_factory=set, init=False, repr=False)
    _query_array: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.results = ResultSet(self.k)
        self._visited_partition_set = set(self.visited_partition_ids)

    def query_array(self) -> np.ndarray:
        """``P``'s coordinates as a NumPy vector, built once per search.

        The vectorized leaf kernels subtract this from every bucket matrix;
        caching it here keeps the per-leaf fixed cost down.
        """
        if self._query_array is None:
            self._query_array = np.asarray(self.query.coordinates, dtype=np.float64)
        return self._query_array

    def note_partition(self, partition_id: str) -> None:
        """Record the identity of a partition the search entered.

        ``partitions_visited`` keeps the paper's plain counter; the identities
        feed the serving layer's per-partition load metrics.  The membership
        check runs against a set (a deep search re-enters partitions many
        times); ``visited_partition_ids`` preserves first-seen order.
        """
        if partition_id not in self._visited_partition_set:
            self._visited_partition_set.add(partition_id)
            self.visited_partition_ids.append(partition_id)

    # -- the two sub-conditions of the backward visit --------------------------------

    def must_visit_other_side(self, split_index: int, split_value: float) -> bool:
        """The paper's disjunction deciding whether to descend the unvisited subtree.

        The former sub-condition compares distances
        (``|max(Rs[SI]) - P[SI]| > |P[SI] - Sv|`` — i.e. the splitting plane
        is closer than the current worst neighbour), the latter checks the
        replenishment of ``Rs`` against ``k`` (``Rs.length() < K``).
        """
        if not self.results.is_full:
            return True
        plane_distance = abs(self.query[split_index] - split_value)
        return plane_distance < self.results.current_radius

    def examine(self, point: LabeledPoint) -> bool:
        """Offer one stored point to the result set; returns True if retained."""
        self.points_examined += 1
        self.cost.distance_computations += 1
        return self.results.offer(point, euclidean_distance(self.query, point))

    def examine_bucket(self, points: List[LabeledPoint]) -> int:
        """Offer every point of a leaf bucket; returns how many were retained.

        This is the ``"scalar"`` scan kernel — the per-point correctness
        oracle.  The vectorized path is :func:`repro.core.kernels.knn_scan_node`.
        """
        self.cost.buckets_scanned += 1
        self.cost.scalar_fallbacks += 1
        return sum(1 for point in points if self.examine(point))
