"""Service throughput — batched vs sequential execution, cache-hit speedup.

The serving layer's pitch is that batching queries over a worker pool plus a
result cache beats issuing them one at a time against the bare index.  This
benchmark builds a requirements corpus, runs a 256-query mixed k-NN/range
workload through the :class:`~repro.service.engine.QueryEngine` and reports

* sequential QPS (the ``execute_sequential`` baseline, no cache),
* cold batched QPS (first batch, worker pool, cache misses),
* warm batched QPS (identical repeat batch, all cache hits),

while sweeping the worker count.  Expected shape: warm beats cold by a wide
margin (a cache hit skips the tree entirely), results are bit-identical to
the sequential baseline everywhere, and the repeated workload reports a
non-zero cache hit rate.

A second report (``service_observability_overhead``) prices the deep
observability machinery with interleaved A/B rounds:

* warm batches with no profiler, with an *idle* (constructed, never
  started) :class:`~repro.obs.profile.SamplingProfiler`, and with the
  profiler actively sampling;
* the range-scan kernel with per-query cost accounting on
  (``cost=SearchCost()``) versus off (``cost=None`` — the kernels skip the
  counters entirely), which is the one code path where the accounting has
  a real off-switch (k-NN accounting is unconditional).

The CI perf-smoke gate fails if cost accounting costs more than 5% of the
scan throughput or if an idle profiler is measurable at all (same 5%
noise allowance) on the warm serving path.

Quick mode (``SERVICE_BENCH_QUICK=1``, used by the CI perf-smoke job)
shrinks the sweep and the round counts so the whole module stays fast.
"""

from __future__ import annotations

import os
import statistics
from typing import Dict, List

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.core.cost import SearchCost
from repro.core.kdtree import KDTree
from repro.evaluation import Experiment, measure
from repro.obs.profile import SamplingProfiler
from repro.requirements import (GeneratorConfig, RequirementsGenerator,
                                build_requirement_distance,
                                build_requirement_vocabularies)
from repro.service import QueryEngine
from repro.workloads import mixed_query_specs

from .conftest import write_report

QUICK = bool(os.environ.get("SERVICE_BENCH_QUICK"))
WORKER_COUNTS = (1, 2) if QUICK else (1, 2, 4, 8)
BATCH_SIZE = 64 if QUICK else 256
BENCH_WORKERS = 4

#: Interleaved A/B rounds for the overhead report; medians go in the
#: committed series, the gates compare best-of-round (noise-robust).
OVERHEAD_ROUNDS = 3 if QUICK else 9
WARM_REPEATS = 2 if QUICK else 6
RANGE_REPEATS = 2 if QUICK else 6
RANGE_RADIUS = 0.3
OVERHEAD_BUDGET = 0.05


def _build_index() -> tuple:
    config = GeneratorConfig(
        documents=8, requirements_per_document=6, sentences_per_requirement=3,
        actors=16, inconsistency_rate=0.2, restatement_rate=0.2, seed=29,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=4, partition_capacity=48,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    triples = list(dict.fromkeys(corpus.all_triples()))
    return index, triples


def _workload(triples):
    return mixed_query_specs(triples, BATCH_SIZE, k=3, radius=0.15,
                             repeat_fraction=0.3, seed=17)


def _measure_engine(index, specs, workers: int) -> Dict[str, float]:
    with QueryEngine(index, workers=workers) as engine:
        sequential = measure(lambda: engine.execute_sequential(specs))
        cold = measure(lambda: engine.execute_batch(specs))
        warm = measure(lambda: engine.execute_batch(specs))
        hit_rate = engine.cache.stats.hit_rate
    return {
        "sequential_qps": len(specs) / max(sequential.wall_seconds, 1e-9),
        "cold_qps": len(specs) / max(cold.wall_seconds, 1e-9),
        "warm_qps": len(specs) / max(warm.wall_seconds, 1e-9),
        "cache_hit_rate": hit_rate,
    }


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.benchmark(group="service-throughput")
def test_batched_execution(benchmark):
    index, triples = _build_index()
    specs = _workload(triples)
    with QueryEngine(index, workers=BENCH_WORKERS) as engine:
        results = benchmark(lambda: engine.execute_batch(specs))
    assert len(results) == BATCH_SIZE


@pytest.mark.benchmark(group="service-throughput")
def test_sequential_execution(benchmark):
    index, triples = _build_index()
    specs = _workload(triples)
    with QueryEngine(index, workers=1) as engine:
        results = benchmark.pedantic(
            lambda: engine.execute_sequential(specs), rounds=3, iterations=1
        )
    assert len(results) == BATCH_SIZE


# -- the report itself --------------------------------------------------------------------

def test_report_service_throughput(results_dir):
    index, triples = _build_index()
    specs = _workload(triples)

    # Correctness first: batched results must equal sequential results.
    with QueryEngine(index, workers=BENCH_WORKERS) as engine:
        batched = engine.execute_batch(specs)
        sequential = engine.execute_sequential(specs)
    assert all(a.matches == b.matches for a, b in zip(batched, sequential))

    experiment = Experiment(
        experiment_id="service_throughput",
        description="QueryEngine throughput: sequential vs cold batch vs warm batch "
                    f"({BATCH_SIZE} mixed k-NN/range queries)",
        swept_parameter="workers",
    )
    experiment.run_sweep(
        "engine", WORKER_COUNTS, lambda workers: _measure_engine(index, specs, int(workers))
    )

    series = experiment.series["engine"]
    # A repeated workload must actually hit the cache ...
    assert all(rate > 0.0 for rate in series.values("cache_hit_rate"))
    # ... and serving hits must beat re-searching the tree, at every worker count.
    for warm, cold in zip(series.values("warm_qps"), series.values("cold_qps")):
        assert warm > cold

    write_report(results_dir, experiment,
                 ["sequential_qps", "cold_qps", "warm_qps", "cache_hit_rate"])


# -- instrumentation overhead -------------------------------------------------------------

def _measure_profiler_overhead(index, specs) -> Dict[str, List[float]]:
    """Warm-batch wall times, interleaved: no profiler / idle / sampling.

    "Idle" means constructed but never started — the gate below pins down
    that merely wiring the profiler into the process costs nothing on the
    serving path (and would catch a future change that hooks an inactive
    profiler into query execution).
    """
    times: Dict[str, List[float]] = {"off": [], "idle": [], "sampling": []}
    with QueryEngine(index, workers=BENCH_WORKERS) as engine:
        engine.execute_batch(specs)                 # populate the cache once

        def warm():
            for _ in range(WARM_REPEATS):
                engine.execute_batch(specs)

        idle = SamplingProfiler()
        sampler = SamplingProfiler()
        for _ in range(OVERHEAD_ROUNDS):
            times["off"].append(measure(warm).wall_seconds)
            assert not idle.running
            times["idle"].append(measure(warm).wall_seconds)
            sampler.start()
            try:
                times["sampling"].append(measure(warm).wall_seconds)
            finally:
                sampler.stop()
    return times


def _measure_cost_accounting_overhead(index) -> Dict[str, List[float]]:
    """Range-scan wall times, interleaved: accounting on versus off.

    The range kernels skip every counter when ``cost is None``, so this is
    an honest A/B of the same traversal with and without accounting.
    """
    points = index.tree.points()
    tree = KDTree.build_balanced(points, bucket_size=index.config.bucket_size,
                                 scan_kernel=index.config.scan_kernel)
    queries = points[::3][:48]

    def scan(accounted: bool):
        def run():
            for _ in range(RANGE_REPEATS):
                for query in queries:
                    cost = SearchCost() if accounted else None
                    tree.range_query_state(query, RANGE_RADIUS, cost=cost)
        return run

    times: Dict[str, List[float]] = {"bare": [], "accounted": []}
    for _ in range(OVERHEAD_ROUNDS):
        times["bare"].append(measure(scan(False)).wall_seconds)
        times["accounted"].append(measure(scan(True)).wall_seconds)
    return times


def test_report_observability_overhead(results_dir):
    """The CI gate: observability must be (nearly) free when not in use.

    Fails when per-query cost accounting costs more than
    ``OVERHEAD_BUDGET`` of the range-scan throughput, or when an idle
    profiler shows up at all on the warm serving path.  The gates compare
    best-of-round throughput (interleaved rounds, so drift hits both arms
    alike); the committed series carries every round for trend tracking.
    """
    index, triples = _build_index()
    specs = _workload(triples)

    profiler_times = _measure_profiler_overhead(index, specs)
    cost_times = _measure_cost_accounting_overhead(index)

    warm_queries = WARM_REPEATS * len(specs)
    warm_qps = {mode: [warm_queries / max(t, 1e-9) for t in samples]
                for mode, samples in profiler_times.items()}
    scan_queries = RANGE_REPEATS * 48
    scan_qps = {mode: [scan_queries / max(t, 1e-9) for t in samples]
                for mode, samples in cost_times.items()}

    experiment = Experiment(
        experiment_id="service_observability_overhead",
        description="Instrumentation overhead: warm-batch QPS with the profiler "
                    "off/idle/sampling, range-scan QPS with cost accounting on/off "
                    f"({OVERHEAD_ROUNDS} interleaved rounds)",
        swept_parameter="round",
    )
    series = experiment.series_named("overhead")
    for i in range(OVERHEAD_ROUNDS):
        series.add(
            i,
            warm_qps_profiler_off=warm_qps["off"][i],
            warm_qps_profiler_idle=warm_qps["idle"][i],
            warm_qps_profiler_sampling=warm_qps["sampling"][i],
            range_qps_cost_accounted=scan_qps["accounted"][i],
            range_qps_cost_bare=scan_qps["bare"][i],
        )

    floor = 1.0 - OVERHEAD_BUDGET
    # Gate 1: an idle profiler must not be measurable on the warm path.
    assert max(warm_qps["idle"]) >= floor * max(warm_qps["off"]), (
        f"idle profiler is measurable: "
        f"{max(warm_qps['idle']):.0f} vs {max(warm_qps['off']):.0f} warm QPS")
    # Gate 2: cost accounting stays within budget on the real scan path.
    assert max(scan_qps["accounted"]) >= floor * max(scan_qps["bare"]), (
        f"cost accounting over budget: "
        f"{max(scan_qps['accounted']):.0f} vs {max(scan_qps['bare']):.0f} scan QPS")
    # An actively sampling profiler is allowed to cost something; report the
    # median overhead so the trajectory is visible in the committed JSON.
    sampling_overhead = 1.0 - (statistics.median(warm_qps["sampling"])
                               / statistics.median(warm_qps["off"]))
    print(f"\nsampling profiler overhead on warm batches: "
          f"{sampling_overhead:+.1%} (informational)")

    write_report(results_dir, experiment,
                 ["warm_qps_profiler_off", "warm_qps_profiler_idle",
                  "warm_qps_profiler_sampling",
                  "range_qps_cost_accounted", "range_qps_cost_bare"])
