"""Deterministic triples and helpers shared by the live-ingestion tests."""

from __future__ import annotations

from repro.rdf import Triple

ACTORS = ["OBSW001", "OBSW002", "OBSW003", "OBSW004"]

BASE_TRIPLES = [
    Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
    Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"),
    Triple.of("OBSW002", "Fun:enable_mode", "ModeType:safe-mode"),
    Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:shutdown"),
    Triple.of("OBSW003", "Fun:withhold_tm", "TmType:volt-frame"),
]

INSERT_TRIPLES = [
    Triple.of("OBSW003", "Fun:acquire_in", "InType:gps"),
    Triple.of("OBSW003", "Fun:send_msg", "MsgType:pong"),
    Triple.of("OBSW003", "Fun:transmit_tm", "TmType:new-frame"),
    Triple.of("OBSW004", "Fun:accept_cmd", "CmdType:reset"),
    Triple.of("OBSW004", "Fun:enable_mode", "ModeType:survival-mode"),
    Triple.of("OBSW004", "Fun:block_cmd", "CmdType:start-up"),
    Triple.of("OBSW004", "Fun:send_msg", "MsgType:ping"),
    Triple.of("OBSW004", "Fun:transmit_tm", "TmType:temp-frame"),
]

QUERY_TRIPLES = [
    Triple.of("OBSW003", "Fun:transmit_tm", "TmType:new-frame"),
    Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
    Triple.of("OBSW004", "Fun:enable_mode", "ModeType:safe-mode"),
    Triple.of("OBSW002", "Fun:send_msg", "MsgType:heartbeat"),
]


def canonical(matches):
    """Order-insensitive-for-ties canonical form of a match list.

    Distances are rounded to 9 decimals and equal-distance ties are sorted
    by the triple's text, so two exact-merge-equivalent result lists compare
    equal regardless of which tied candidate a traversal happened to keep
    first.
    """
    return sorted(
        ((round(match.distance, 9), str(match.triple)) for match in matches)
    )
