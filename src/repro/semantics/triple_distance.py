"""The weighted semantic distance between triples — Eq. (1) of the paper.

.. math::

    d(t_i, t_j) = \\alpha \\cdot d_s(t_i^s, t_j^s)
                + \\beta  \\cdot d_p(t_i^p, t_j^p)
                + \\gamma \\cdot d_o(t_i^o, t_j^o),
    \\qquad \\alpha + \\beta + \\gamma = 1

where the sub-distances compare the projections of the two triples on the
subject, predicate and object position:

* two literals/constants of the same type → a string distance (Levenshtein
  in the paper, normalised here so the result stays in ``[0, 1]``);
* two concepts → a taxonomy-based dissimilarity (``1 - Wu&Palmer`` by
  default), looked up in the vocabulary that owns the concept's prefix;
* a literal against a concept (not discussed in the paper) → the distance
  falls back to a normalised string distance over their textual forms,
  which keeps the function total and symmetric.

The resulting :class:`TripleDistance` is a proper callable ``(Triple,
Triple) → float`` and is what FastMap and the linear-scan baselines consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.errors import DistanceError
from repro.rdf.terms import Concept, Literal, Term
from repro.rdf.triple import Triple
from repro.semantics.similarity import ConceptSimilarity, WuPalmerSimilarity
from repro.semantics.string_distance import StringDistance, normalised_levenshtein
from repro.semantics.vocabulary import Vocabulary

__all__ = ["DistanceWeights", "TermDistance", "TripleDistance"]

_WEIGHT_TOLERANCE = 1e-9


@dataclass(frozen=True, slots=True)
class DistanceWeights:
    """The (α, β, γ) weights of Eq. (1); they must be non-negative and sum to 1."""

    alpha: float = 1.0 / 3.0
    beta: float = 1.0 / 3.0
    gamma: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        for name, value in (("alpha", self.alpha), ("beta", self.beta), ("gamma", self.gamma)):
            if value < 0:
                raise DistanceError(f"weight {name} must be non-negative, got {value}")
        total = self.alpha + self.beta + self.gamma
        if abs(total - 1.0) > 1e-6:
            raise DistanceError(
                f"weights must sum to 1 (alpha+beta+gamma = {total:.6f})"
            )

    @classmethod
    def normalised(cls, alpha: float, beta: float, gamma: float) -> "DistanceWeights":
        """Build weights from arbitrary non-negative values, normalising their sum to 1."""
        total = alpha + beta + gamma
        if total <= 0:
            raise DistanceError("at least one weight must be positive")
        return cls(alpha / total, beta / total, gamma / total)

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.alpha, self.beta, self.gamma)


class TermDistance:
    """Distance between two terms (one projection of Eq. (1)).

    Dispatches on the term kinds:

    * concept vs concept → vocabulary/taxonomy dissimilarity,
    * literal vs literal → normalised string distance,
    * mixed → normalised string distance over the textual forms.

    Concepts whose prefix has no registered vocabulary (or that are missing
    from their vocabulary) also fall back to the string distance, so the
    distance is total over any pair of terms.
    """

    def __init__(self,
                 vocabularies: Mapping[str, Vocabulary] | None = None,
                 *,
                 concept_similarity_factory: Callable[..., ConceptSimilarity] = WuPalmerSimilarity,
                 string_distance: StringDistance = normalised_levenshtein):
        self._vocabularies: Dict[str, Vocabulary] = dict(vocabularies or {})
        self._string_distance = string_distance
        self._similarity_factory = concept_similarity_factory
        self._similarity_cache: Dict[str, ConceptSimilarity] = {}

    # -- vocabulary wiring ----------------------------------------------------------

    def register_vocabulary(self, prefix: str, vocabulary: Vocabulary) -> None:
        """Attach a vocabulary to a concept prefix (``""`` = default vocabulary)."""
        self._vocabularies[prefix] = vocabulary
        self._similarity_cache.pop(prefix, None)

    def vocabulary_for(self, prefix: str) -> Optional[Vocabulary]:
        """Return the vocabulary registered for a prefix, if any."""
        return self._vocabularies.get(prefix)

    def _similarity_for(self, prefix: str) -> Optional[ConceptSimilarity]:
        vocabulary = self._vocabularies.get(prefix)
        if vocabulary is None:
            return None
        measure = self._similarity_cache.get(prefix)
        if measure is None:
            measure = self._similarity_factory(vocabulary.taxonomy)
            self._similarity_cache[prefix] = measure
        return measure

    # -- the distance proper ----------------------------------------------------------

    def distance(self, term_a: Term, term_b: Term) -> float:
        """Normalised distance in ``[0, 1]`` between two terms."""
        if term_a == term_b:
            return 0.0
        if isinstance(term_a, Concept) and isinstance(term_b, Concept):
            return self._concept_distance(term_a, term_b)
        return self._string_distance(self._text_of(term_a), self._text_of(term_b))

    def _concept_distance(self, concept_a: Concept, concept_b: Concept) -> float:
        if concept_a.prefix == concept_b.prefix:
            measure = self._similarity_for(concept_a.prefix)
            vocabulary = self._vocabularies.get(concept_a.prefix)
            if (
                measure is not None
                and vocabulary is not None
                and concept_a.name in vocabulary.taxonomy
                and concept_b.name in vocabulary.taxonomy
            ):
                return measure.distance(concept_a.name, concept_b.name)
        # Different prefixes, no vocabulary, or unknown concepts: fall back to
        # a string distance on the qualified names.
        return self._string_distance(concept_a.qname, concept_b.qname)

    @staticmethod
    def _text_of(term: Term) -> str:
        if isinstance(term, Literal):
            return term.value
        if isinstance(term, Concept):
            return term.qname
        return str(term)

    def __call__(self, term_a: Term, term_b: Term) -> float:
        return self.distance(term_a, term_b)


class TripleDistance:
    """The weighted triple distance of Eq. (1).

    The callable returns a value in ``[0, 1]`` (each sub-distance is
    normalised, and the weights sum to 1).  Distances are symmetric and
    ``d(t, t) = 0``.
    """

    def __init__(self,
                 term_distance: TermDistance | None = None,
                 weights: DistanceWeights | None = None):
        self.term_distance = term_distance or TermDistance()
        self.weights = weights or DistanceWeights()

    def distance(self, triple_a: Triple, triple_b: Triple) -> float:
        """Compute ``d(triple_a, triple_b)`` per Eq. (1)."""
        if triple_a == triple_b:
            return 0.0
        alpha, beta, gamma = self.weights.as_tuple()
        subject_distance = self.term_distance(triple_a.subject, triple_b.subject)
        predicate_distance = self.term_distance(triple_a.predicate, triple_b.predicate)
        object_distance = self.term_distance(triple_a.object, triple_b.object)
        return (
            alpha * subject_distance
            + beta * predicate_distance
            + gamma * object_distance
        )

    def components(self, triple_a: Triple, triple_b: Triple) -> Dict[str, float]:
        """Return the three unweighted sub-distances, keyed by position name."""
        return {
            "subject": self.term_distance(triple_a.subject, triple_b.subject),
            "predicate": self.term_distance(triple_a.predicate, triple_b.predicate),
            "object": self.term_distance(triple_a.object, triple_b.object),
        }

    def with_weights(self, weights: DistanceWeights) -> "TripleDistance":
        """Return a new distance sharing the term distance but with other weights."""
        return TripleDistance(self.term_distance, weights)

    def __call__(self, triple_a: Triple, triple_b: Triple) -> float:
        return self.distance(triple_a, triple_b)

    def __repr__(self) -> str:
        alpha, beta, gamma = self.weights.as_tuple()
        return f"TripleDistance(alpha={alpha:.3f}, beta={beta:.3f}, gamma={gamma:.3f})"
