"""The HTTP shard transport: partition scans over real sockets, fault-tolerantly.

:class:`HttpShardTransport` implements the
:class:`~repro.cluster.transport.PartitionTransport` protocol against a
:class:`~repro.coordinator.topology.ShardTopology` of live shard servers,
with one :class:`~repro.workloads.ServerClient` per *replica* (each holding
one persistent keep-alive connection per thread).

Fault tolerance (see ``docs/robustness.md``):

* **Per-replica circuit breakers** — every replica carries a
  :class:`~repro.coordinator.replica.CircuitBreaker`; consecutive failures
  trip it open, after which scans skip the replica instantly instead of
  eating a connect timeout, and a half-open probe closes it once the
  backend answers again.
* **Failover retry** — a failed scan attempt is retried on the next
  healthy replica (scans are idempotent reads) with capped exponential
  backoff + deterministic jitter between attempts
  (:class:`~repro.coordinator.replica.BackoffPolicy`).
* **Hedging (opt-in)** — with ``hedge_delay`` set and a second healthy
  replica available, a scan that has not answered within the delay gets a
  duplicate sent to the next replica; the first successful answer wins and
  the loser is abandoned.  Exactness is unaffected — both replicas serve
  the same immutable snapshot partition.
* **Fault injection (opt-in)** — a :class:`~repro.faults.FaultPlan`
  consulted before every attempt (operation ``"scan"``, target
  ``"partition@url"``), so chaos tests can break precisely this layer.

Only when *every* replica of a partition has failed does the scan raise
:class:`~repro.errors.ShardError` naming the partition and each replica's
failure, for the scatter layer's structured partial-failure report.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.transport import PartitionScan
from repro.core.cost import SearchCost
from repro.core.knn import Neighbour
from repro.core.point import LabeledPoint
from repro.coordinator.replica import BackoffPolicy, CircuitBreaker, ReplicaSet, ReplicaState
from repro.coordinator.topology import ShardTopology
from repro.errors import ServerError, ShardError
from repro.faults import FaultPlan, InjectedFault
from repro.io.serialization import triple_from_dict
from repro.workloads.http_client import ServerClient

__all__ = ["HttpShardTransport"]


class HttpShardTransport:
    """Scatter-gather scans against per-partition shard replica sets.

    Parameters
    ----------
    topology:
        Which replicas serve which partition (first listed = preferred).
    timeout:
        Per-attempt HTTP timeout in seconds.
    failure_threshold / reset_timeout:
        Per-replica circuit-breaker tuning: consecutive failures that trip
        a replica's circuit open, and how long it sheds before a half-open
        probe (see :class:`CircuitBreaker`).
    backoff:
        The :class:`BackoffPolicy` applied between failover attempts
        (default: 50 ms base, doubling, 2 s cap, 50 % jitter).
    hedge_delay:
        Seconds after which a scan still in flight is hedged to the next
        healthy replica (``None`` disables hedging — the default).
    fault_plan:
        Optional :class:`FaultPlan` injected into every scan attempt.
    clock / sleep:
        Injectable time sources so tests can run the retry schedule
        without real waiting.
    """

    def __init__(self, topology: ShardTopology, *, timeout: float = 10.0,
                 failure_threshold: int = 3, reset_timeout: float = 5.0,
                 backoff: Optional[BackoffPolicy] = None,
                 hedge_delay: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        if hedge_delay is not None and hedge_delay < 0:
            raise ShardError("hedge_delay must be non-negative")
        self.topology = topology
        self.timeout = timeout
        self.hedge_delay = hedge_delay
        self.backoff = backoff or BackoffPolicy()
        self.fault_plan = fault_plan
        self._sleep = sleep
        self._replica_sets: Dict[str, ReplicaSet] = {
            partition_id: ReplicaSet(
                partition_id, topology.replicas_of(partition_id),
                breaker_factory=lambda: CircuitBreaker(
                    failure_threshold=failure_threshold,
                    reset_timeout=reset_timeout, clock=clock,
                ),
            )
            for partition_id in topology.partition_ids
        }
        self._clients: Dict[Tuple[str, str], ServerClient] = {
            (partition_id, replica.url): ServerClient(replica.url, timeout=timeout)
            for partition_id, replica_set in self._replica_sets.items()
            for replica in replica_set.replicas
        }
        self._counters_lock = threading.Lock()
        self._counters: Dict[str, Counter] = {
            name: Counter()
            for name in ("retries", "failovers", "hedges", "hedge_wins",
                         "circuit_shed", "exhausted")
        }
        # The hedge pool exists only when hedging is on; its threads issue
        # the duplicate requests so the scatter thread can race the two.
        self._hedge_pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=max(4, 2 * len(self._replica_sets)),
                               thread_name_prefix="semtree-hedge")
            if hedge_delay is not None else None
        )

    # -- PartitionTransport -------------------------------------------------------------

    def partition_ids(self) -> Tuple[str, ...]:
        return self.topology.partition_ids

    def scan_knn(self, partition_id: str, query: LabeledPoint, k: int) -> PartitionScan:
        started = time.perf_counter()
        payload = self._scan(
            partition_id, "shard_knn",
            lambda client: client.shard_knn(query.coordinates, k))
        return self._scan_from_payload(partition_id, payload,
                                       time.perf_counter() - started)

    def scan_range(self, partition_id: str, query: LabeledPoint,
                   radius: float) -> PartitionScan:
        started = time.perf_counter()
        payload = self._scan(
            partition_id, "shard_range",
            lambda client: client.shard_range(query.coordinates, radius))
        return self._scan_from_payload(partition_id, payload,
                                       time.perf_counter() - started)

    def close(self) -> None:
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=False)
        # close_all, not close: the persistent sockets live in the scatter
        # pool's worker threads, not in the thread tearing the transport down.
        for client in self._clients.values():
            client.close_all()

    # -- health / stats read surfaces ---------------------------------------------------

    def replica_health(self) -> Dict[str, Dict[str, object]]:
        """Per-partition replica health for ``/v1/healthz`` and ``/v1/topology``.

        ``{partition: {replicas, healthy, open, half_open, detail: [...]}}``
        where ``detail`` lists each replica's URL, breaker state and
        success/failure counters.
        """
        health: Dict[str, Dict[str, object]] = {}
        for partition_id, replica_set in sorted(self._replica_sets.items()):
            entry = replica_set.health()
            entry["detail"] = [replica.to_dict() for replica in replica_set.replicas]
            health[partition_id] = entry
        return health

    def failover_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-partition failover counters (retries, hedges, circuit opens)."""
        with self._counters_lock:
            counters = {name: dict(counter)
                        for name, counter in self._counters.items()}
        stats: Dict[str, Dict[str, int]] = {}
        for partition_id, replica_set in self._replica_sets.items():
            stats[partition_id] = {
                name: counters[name].get(partition_id, 0) for name in counters
            }
            stats[partition_id]["circuit_opens"] = sum(
                replica.breaker.opens for replica in replica_set.replicas
            )
        return stats

    def client_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-partition transport counters, summed over the replicas.

        Surfaces whether the fan-out actually rides keep-alive sockets: a
        healthy steady state shows ``requests_reused`` tracking ``requests``
        and ``connections_opened`` stuck near the thread count.
        """
        totals: Dict[str, Counter] = {}
        for (partition_id, _url), client in self._clients.items():
            totals.setdefault(partition_id, Counter()).update(client.stats())
        return {partition_id: dict(counter)
                for partition_id, counter in totals.items()}

    def _count(self, name: str, partition_id: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[name][partition_id] += amount

    # -- the scan retry/hedge loop ------------------------------------------------------

    def _scan(self, partition_id: str, operation: str,
              issue: Callable[[ServerClient], Dict]) -> Dict:
        """One partition scan: try replicas in health order until one answers.

        Scans are idempotent reads, so failing over to the next replica is
        always safe.  Failures accumulate into one ShardError raised only
        when every candidate has been tried.
        """
        replica_set = self._replica_sets.get(partition_id)
        if replica_set is None:
            raise ShardError(
                f"no shard serves partition {partition_id!r} "
                f"(topology covers: {', '.join(self.topology.partition_ids)})",
                failed={partition_id: "not in topology"},
            )
        candidates = replica_set.candidates()
        failures: List[str] = []
        attempt = 0
        index = 0
        while index < len(candidates):
            replica = candidates[index]
            if not replica.breaker.allow():
                # Open circuit (or a half-open probe already in flight):
                # shed instantly and move on — no connect timeout burned.
                self._count("circuit_shed", partition_id)
                failures.append(f"{replica.url}: circuit open")
                index += 1
                continue
            if attempt > 0:
                self._count("retries", partition_id)
                if index > 0:
                    self._count("failovers", partition_id)
                self._sleep(self.backoff.delay(attempt - 1))
            hedge_candidates = candidates[index + 1:]
            try:
                if self._hedge_pool is not None and hedge_candidates:
                    payload = self._attempt_hedged(
                        partition_id, operation, issue, replica, hedge_candidates)
                else:
                    payload = self._attempt(partition_id, operation, issue, replica)
            except (ServerError, InjectedFault) as error:
                failures.append(f"{replica.url}: {error}")
                attempt += 1
                index += 1
                continue
            return payload
        self._count("exhausted", partition_id)
        raise ShardError(
            f"{operation} on partition {partition_id} failed on every replica "
            f"[{'; '.join(failures)}]",
            failed={partition_id: "; ".join(failures)},
        )

    def _attempt(self, partition_id: str, operation: str,
                 issue: Callable[[ServerClient], Dict],
                 replica: ReplicaState) -> Dict:
        """One request against one replica, with breaker + fault bookkeeping."""
        if self.fault_plan is not None:
            fault = self.fault_plan.decide("scan", f"{partition_id}@{replica.url}")
            if fault is not None:
                if fault.latency:
                    self._sleep(fault.latency)
                if fault.kind == "error":
                    replica.failures += 1
                    replica.breaker.record_failure()
                    raise InjectedFault(
                        f"injected connection reset talking to {replica.url}")
                if fault.kind == "http_5xx":
                    replica.failures += 1
                    replica.breaker.record_failure()
                    raise InjectedFault(
                        f"injected HTTP {fault.status} from {replica.url}")
        client = self._clients[(partition_id, replica.url)]
        try:
            payload = issue(client)
        except ServerError as error:
            if 400 <= error.status < 500:
                # The replica answered: it is healthy, the *request* is bad.
                # Fail the scan without poisoning the breaker or failing
                # over — every replica would reject it identically.
                replica.breaker.record_success()
                raise ShardError(
                    f"{operation} on partition {partition_id} via {replica.url} "
                    f"rejected: {error}",
                    failed={partition_id: str(error)},
                ) from error
            replica.failures += 1
            replica.breaker.record_failure()
            raise
        replica.successes += 1
        replica.breaker.record_success()
        return payload

    def _attempt_hedged(self, partition_id: str, operation: str,
                        issue: Callable[[ServerClient], Dict],
                        replica: ReplicaState,
                        alternates: List[ReplicaState]) -> Dict:
        """Race the replica against a late-started duplicate on the next one.

        The primary request is given ``hedge_delay`` seconds to answer; past
        that, a duplicate goes to the first alternate whose breaker allows
        it, and whichever request *succeeds* first wins.  The loser is
        cancelled if still queued, abandoned (its worker finishes into a
        discarded future) if already on the wire — its breaker bookkeeping
        still happens in :meth:`_attempt`, so a slow-loser failure counts.
        """
        assert self._hedge_pool is not None
        primary: Future = self._hedge_pool.submit(
            self._attempt, partition_id, operation, issue, replica)
        try:
            return primary.result(timeout=self.hedge_delay)
        except TimeoutError:
            pass
        except (ServerError, InjectedFault):
            raise
        hedge_replica = next(
            (candidate for candidate in alternates if candidate.breaker.allow()),
            None)
        if hedge_replica is None:
            return primary.result()
        self._count("hedges", partition_id)
        hedge: Future = self._hedge_pool.submit(
            self._attempt, partition_id, operation, issue, hedge_replica)
        in_flight = {primary, hedge}
        first_error: Optional[Exception] = None
        while in_flight:
            done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                error = future.exception()
                if error is None:
                    for loser in in_flight:
                        loser.cancel()
                    if future is hedge:
                        self._count("hedge_wins", partition_id)
                    return future.result()
                if first_error is None:
                    first_error = error  # surface the primary-ish failure
        assert first_error is not None
        raise first_error

    # -- payload plumbing ---------------------------------------------------------------

    def _scan_from_payload(self, partition_id: str, payload: Dict,
                           elapsed_seconds: float) -> PartitionScan:
        served = payload.get("partition_id")
        if served != partition_id:
            # A misconfigured topology (shard booted with the wrong --shard)
            # would silently double-count one partition and drop another.
            raise ShardError(
                f"topology mismatch: a replica of partition {partition_id!r} "
                f"serves partition {served!r}",
                failed={partition_id: f"shard serves {served!r}"},
            )
        neighbours = tuple(
            Neighbour(
                LabeledPoint.of(match["coordinates"],
                                label=triple_from_dict(match["triple"])),
                float(match["distance"]),
            )
            for match in payload.get("matches", ())
        )
        # elapsed_seconds is the *coordinator-observed* round trip (network
        # hop, retries and hedges included), matching what
        # SimulatedClusterTransport reports — the per-shard latency gauges
        # must point an operator at a slow shard path, not just at its
        # server-side scan time (which the shard still reports in its own
        # payload as latency_ms).
        return PartitionScan(
            partition_id=partition_id,
            neighbours=neighbours,
            nodes_visited=int(payload.get("nodes_visited", 0)),
            points_examined=int(payload.get("points_examined", 0)),
            elapsed_seconds=elapsed_seconds,
            # Absent from older shards' payloads: from_dict reads missing
            # keys as zero, so a mixed-version fleet degrades to undercounting
            # instead of failing the scan.
            cost=SearchCost.from_dict(payload.get("cost")),
        )

    def __repr__(self) -> str:
        return (f"HttpShardTransport(partitions={len(self._replica_sets)}, "
                f"replicas={len(self._clients)}, timeout={self.timeout}, "
                f"hedge_delay={self.hedge_delay})")
