"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper's
evaluation (see DESIGN.md, experiment index).  Each module contains

* pytest-benchmark cases that time a representative configuration of the
  experiment (so ``pytest benchmarks/ --benchmark-only`` produces a timing
  table), and
* one ``test_report_*`` case that runs the full parameter sweep, prints the
  same series the paper plots, and writes the table to
  ``benchmarks/results/<experiment>.txt`` so it can be pasted into
  EXPERIMENTS.md.

Absolute numbers are not expected to match the paper (different hardware,
simulated cluster); the *shape* assertions of each report test encode what
must hold.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.evaluation import Experiment, format_experiment

#: Where the report tests drop their plain-text tables.
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: pathlib.Path, experiment: Experiment,
                 metrics: list[str]) -> str:
    """Format an experiment, print it and persist it under ``results/``."""
    text = format_experiment(experiment, metrics)
    path = results_dir / f"{experiment.experiment_id}.txt"
    path.write_text(text + "\n")
    print("\n" + text)
    return text
