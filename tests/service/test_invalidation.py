"""Incremental insertion vs the result cache: no stale answers, consistent counters."""

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.rdf import Triple
from repro.requirements import build_requirement_distance, build_requirement_vocabularies
from repro.service import QueryEngine, QuerySpec


@pytest.fixture
def small_index():
    vocabularies = build_requirement_vocabularies(["OBSW001", "OBSW002", "OBSW003"])
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(dimensions=3, bucket_size=4,
                                                 max_partitions=2, partition_capacity=8))
    index.add_triples([
        Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
        Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"),
        Triple.of("OBSW002", "Fun:enable_mode", "ModeType:safe-mode"),
        Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:shutdown"),
    ])
    index.build()
    return index


class TestGenerationCounter:
    def test_build_bumps_the_generation(self, small_index):
        assert small_index.generation == 1

    def test_every_insert_bumps_the_generation(self, small_index):
        before = small_index.generation
        small_index.insert_triple(Triple.of("OBSW003", "Fun:acquire_in", "InType:gps"))
        small_index.insert_triple(Triple.of("OBSW003", "Fun:send_msg", "MsgType:pong"))
        assert small_index.generation == before + 2


class TestCountersStayConsistent:
    def test_insert_triple_does_not_touch_pending(self, small_index):
        size_before = len(small_index)
        assert small_index.pending_triples == 0
        small_index.insert_triple(Triple.of("OBSW003", "Fun:block_cmd", "CmdType:reset"))
        assert small_index.pending_triples == 0
        assert len(small_index) == size_before + 1

    def test_add_triple_after_build_stays_pending(self, small_index):
        size_before = len(small_index)
        small_index.add_triple(Triple.of("OBSW003", "Fun:block_cmd", "CmdType:reset"))
        assert small_index.pending_triples == 1
        assert len(small_index) == size_before  # not indexed until the next build

    def test_insert_triples_many(self, small_index):
        size_before = len(small_index)
        generation_before = small_index.generation
        small_index.insert_triples([
            Triple.of("OBSW003", "Fun:accept_cmd", "CmdType:a"),
            Triple.of("OBSW003", "Fun:accept_cmd", "CmdType:b"),
        ])
        assert len(small_index) == size_before + 2
        assert small_index.generation == generation_before + 2


class TestNoStaleAnswers:
    def test_insert_invalidates_cached_knn_results(self, small_index):
        """The satellite's core assertion: a cached k-NN answer must not be
        served once an insert makes a strictly better answer exist."""
        query = Triple.of("OBSW003", "Fun:transmit_tm", "TmType:new-frame")
        with QueryEngine(small_index, workers=2) as engine:
            stale = engine.execute(QuerySpec.k_nearest(query, 1))
            assert stale.matches[0].triple != query
            # warm cache: the same spec is now served from the cache
            assert engine.execute(QuerySpec.k_nearest(query, 1)).cached

            small_index.insert_triple(query)

            fresh = engine.execute(QuerySpec.k_nearest(query, 1))
            assert not fresh.cached, "stale entry must not be served after an insert"
            assert fresh.matches[0].triple == query
            assert fresh.matches[0].distance == pytest.approx(0.0, abs=1e-9)
            assert engine.cache.stats.invalidations >= 1

    def test_insert_invalidates_cached_range_results(self, small_index):
        query = Triple.of("OBSW003", "Fun:withhold_tm", "TmType:volt-frame")
        with QueryEngine(small_index, workers=2) as engine:
            before = engine.execute(QuerySpec.range_query(query, 0.05))
            assert all(match.triple != query for match in before.matches)
            engine.execute(QuerySpec.range_query(query, 0.05))  # cache it

            small_index.insert_triple(query)

            after = engine.execute(QuerySpec.range_query(query, 0.05))
            assert not after.cached
            assert any(match.triple == query for match in after.matches)

    def test_unrelated_cache_entries_survive_only_within_a_generation(self, small_index):
        """Generation invalidation is coarse by design: *every* entry written
        before the insert is dropped, trading recomputation for correctness."""
        query = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        with QueryEngine(small_index, workers=2) as engine:
            engine.execute(QuerySpec.k_nearest(query, 2))
            small_index.insert_triple(
                Triple.of("OBSW003", "Fun:send_msg", "MsgType:unrelated")
            )
            refreshed = engine.execute(QuerySpec.k_nearest(query, 2))
            assert not refreshed.cached
