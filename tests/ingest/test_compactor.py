"""Threshold policy and the background compaction thread."""

import time

from ingest_corpus import INSERT_TRIPLES
from repro.ingest import BackgroundCompactor, Compactor, IngestingIndex


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestCompactor:
    def test_maybe_compact_respects_the_threshold(self, make_base, tmp_path):
        index = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                               compaction_threshold=3)
        compactor = Compactor(index)
        index.insert(INSERT_TRIPLES[0])
        index.insert(INSERT_TRIPLES[1])
        assert not compactor.should_compact()
        assert compactor.maybe_compact() == 0
        index.insert(INSERT_TRIPLES[2])
        assert compactor.should_compact()
        assert compactor.maybe_compact() == 3
        assert len(index.delta) == 0


class TestBackgroundCompactor:
    def test_folds_when_the_threshold_is_crossed(self, make_base, tmp_path):
        index = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                               compaction_threshold=3)
        with BackgroundCompactor(index, poll_interval=0.01):
            generation = index.generation
            for triple in INSERT_TRIPLES[:3]:
                index.insert(triple)
            assert wait_until(lambda: index.generation == generation + 1)
            assert wait_until(lambda: len(index.delta) == 0)
        assert index.metrics.compactions >= 1

    def test_queries_stay_correct_while_it_runs(self, make_base, tmp_path):
        index = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                               compaction_threshold=2)
        query = INSERT_TRIPLES[2]
        with BackgroundCompactor(index, poll_interval=0.01):
            for triple in INSERT_TRIPLES:
                index.insert(triple)
                (best,) = index.k_nearest(triple, 1)
                assert best.triple == triple  # the fresh insert always wins
            assert wait_until(lambda: len(index.delta) < index.compaction_threshold)
        (best,) = index.k_nearest(query, 1)
        assert best.triple == query

    def test_stop_with_final_compact_drains_the_delta(self, make_base, tmp_path):
        index = IngestingIndex(make_base(), tmp_path / "wal.jsonl",
                               compaction_threshold=1_000)
        compactor = BackgroundCompactor(index).start()
        assert compactor.is_running
        index.insert(INSERT_TRIPLES[0])
        compactor.stop(final_compact=True)
        assert not compactor.is_running
        assert len(index.delta) == 0

    def test_start_is_idempotent(self, make_base, tmp_path):
        index = IngestingIndex(make_base(), tmp_path / "wal.jsonl")
        compactor = BackgroundCompactor(index).start()
        thread_before = compactor._thread
        compactor.start()
        assert compactor._thread is thread_before
        compactor.stop()
