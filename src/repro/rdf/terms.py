"""RDF-style terms.

The paper models document semantics as a set of
``(subject, predicate, object)`` statements "as in the RDF model".  Each
element of a statement is a *term*.  The reproduction distinguishes three
kinds of terms:

``Concept``
    A named resource whose meaning is defined by a vocabulary (possibly
    namespaced with a prefix, written ``Prefix:local`` in the paper's
    Turtle-like listings, e.g. ``Fun:accept_cmd``).  Distances between two
    concepts are computed with taxonomy-based similarity measures.

``Literal``
    A plain constant (string, number, ...).  Distances between two literals
    of the same type are computed with string distances (e.g. Levenshtein).

``Variable``
    A placeholder used only in query patterns (``?x``); it never appears in
    stored data.

Terms are immutable value objects: they hash and compare by value, so they
can be used as dictionary keys and set members throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import TripleError

__all__ = ["Term", "Concept", "Literal", "Variable", "term_from_text"]


@dataclass(frozen=True, slots=True)
class Concept:
    """A named resource, optionally qualified by a vocabulary prefix.

    Parameters
    ----------
    name:
        The local name of the concept (e.g. ``"accept_cmd"``).
    prefix:
        The vocabulary prefix (e.g. ``"Fun"``).  An empty string means the
        standard (default) vocabulary, matching the paper's convention "if X
        is not specified, we use a standard vocabulary".
    """

    name: str
    prefix: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise TripleError("a Concept requires a non-empty name")

    @property
    def qname(self) -> str:
        """Qualified name, ``prefix:name`` or just ``name`` for the default vocabulary."""
        if self.prefix:
            return f"{self.prefix}:{self.name}"
        return self.name

    def with_prefix(self, prefix: str) -> "Concept":
        """Return a copy of this concept under a different prefix."""
        return Concept(self.name, prefix)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.qname

    def __repr__(self) -> str:
        return f"Concept({self.qname!r})"


@dataclass(frozen=True, slots=True)
class Literal:
    """A constant value with an optional datatype tag.

    The paper's sub-distance definition only distinguishes "literals of the
    same type" (string distance applies) from concept/concept pairs, so the
    datatype is a plain string tag (``"string"``, ``"integer"``, ...).
    """

    value: str
    datatype: str = "string"

    def __post_init__(self) -> None:
        if not isinstance(self.value, str):
            # Normalise numerics eagerly so equality/hashing stay value-based.
            object.__setattr__(self, "value", str(self.value))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f'"{self.value}"'

    def __repr__(self) -> str:
        return f"Literal({self.value!r}, {self.datatype!r})"


@dataclass(frozen=True, slots=True)
class Variable:
    """A query-pattern placeholder such as ``?req`` (never stored in data)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise TripleError("a Variable requires a non-empty name")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"?{self.name}"

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


Term = Union[Concept, Literal, Variable]


def term_from_text(text: str) -> Term:
    """Parse a single term from its textual form.

    The accepted syntax mirrors the paper's Turtle-like listings:

    * ``"quoted text"`` → :class:`Literal`
    * ``?name``         → :class:`Variable`
    * ``Prefix:name``   → :class:`Concept` with that prefix
    * ``name``          → :class:`Concept` in the default vocabulary

    Raises
    ------
    TripleError
        If the text is empty.
    """
    text = text.strip()
    if not text:
        raise TripleError("cannot parse an empty term")
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return Literal(text[1:-1])
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return Literal(text[1:-1])
    if text.startswith("?"):
        return Variable(text[1:])
    if ":" in text:
        prefix, _, name = text.partition(":")
        if not name:
            raise TripleError(f"malformed prefixed concept: {text!r}")
        return Concept(name, prefix)
    return Concept(text)
