"""Tests for inconsistency detection (definition, target triples, detector)."""

import pytest

from repro.errors import VocabularyError
from repro.rdf import Concept, Triple
from repro.requirements import (
    InconsistencyDetector,
    are_inconsistent,
    make_target_triple,
)


class TestAreInconsistent:
    def test_definition_holds_for_antinomic_pair(self, function_vocabulary):
        a = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        b = Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up")
        assert are_inconsistent(a, b, function_vocabulary)
        assert are_inconsistent(b, a, function_vocabulary)

    def test_different_subject_is_not_inconsistent(self, function_vocabulary):
        a = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        b = Triple.of("OBSW002", "Fun:block_cmd", "CmdType:start-up")
        assert not are_inconsistent(a, b, function_vocabulary)

    def test_different_object_is_not_inconsistent(self, function_vocabulary):
        a = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        b = Triple.of("OBSW001", "Fun:block_cmd", "CmdType:shutdown")
        assert not are_inconsistent(a, b, function_vocabulary)

    def test_non_antinomic_predicates_are_not_inconsistent(self, function_vocabulary):
        a = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        b = Triple.of("OBSW001", "Fun:send_msg", "CmdType:start-up")
        assert not are_inconsistent(a, b, function_vocabulary)

    def test_identical_triples_are_not_inconsistent(self, function_vocabulary):
        a = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        assert not are_inconsistent(a, a, function_vocabulary)

    def test_literal_predicates_are_never_inconsistent(self, function_vocabulary):
        a = Triple.of("OBSW001", "'accept'", "CmdType:start-up")
        b = Triple.of("OBSW001", "'block'", "CmdType:start-up")
        assert not are_inconsistent(a, b, function_vocabulary)

    def test_unknown_predicates_are_never_inconsistent(self, function_vocabulary):
        a = Triple.of("OBSW001", "Fun:launch", "CmdType:start-up")
        b = Triple.of("OBSW001", "Fun:abort", "CmdType:start-up")
        assert not are_inconsistent(a, b, function_vocabulary)


class TestMakeTargetTriple:
    def test_swaps_predicate_with_antonym(self, function_vocabulary):
        source = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        target = make_target_triple(source, function_vocabulary)
        assert target.subject == source.subject
        assert target.object == source.object
        assert target.predicate == Concept("block_cmd", "Fun")

    def test_target_is_inconsistent_with_its_source(self, function_vocabulary):
        source = Triple.of("OBSW004", "Fun:transmit_tm", "TmType:voltage-frame")
        target = make_target_triple(source, function_vocabulary)
        assert are_inconsistent(source, target, function_vocabulary)

    def test_predicate_without_antonym_raises(self, function_vocabulary):
        source = Triple.of("OBSW001", "Fun:command_handling", "CmdType:start-up")
        with pytest.raises(VocabularyError):
            make_target_triple(source, function_vocabulary)

    def test_literal_predicate_raises(self, function_vocabulary):
        source = Triple.of("OBSW001", "'accept'", "CmdType:start-up")
        with pytest.raises(VocabularyError):
            make_target_triple(source, function_vocabulary)


class TestInconsistencyDetector:
    def test_probe_finds_the_injected_conflict(self, built_requirements_index):
        index, vocabularies, corpus = built_requirements_index
        detector = InconsistencyDetector(index, vocabularies["Fun"], k=5)
        base, conflicting = corpus.injected_inconsistencies[0]
        report = detector.probe(base)
        assert report.target_triple.subject == base.subject
        assert report.retrieved
        retrieved = report.retrieved_triples()
        assert any(
            candidate.subject == base.subject
            and vocabularies["Fun"].are_antonyms(candidate.predicate, base.predicate)
            for candidate in retrieved
        )

    def test_probe_confirmed_subset_satisfies_definition(self, built_requirements_index):
        index, vocabularies, corpus = built_requirements_index
        detector = InconsistencyDetector(index, vocabularies["Fun"], k=8)
        for base, _ in corpus.injected_inconsistencies[:5]:
            report = detector.probe(base)
            for match in report.confirmed:
                assert are_inconsistent(base, match.triple, vocabularies["Fun"])

    def test_scan_skips_triples_without_antonyms(self, built_requirements_index):
        index, vocabularies, _ = built_requirements_index
        detector = InconsistencyDetector(index, vocabularies["Fun"], k=3)
        odd_triple = Triple.of("OBSW001", "Fun:command_handling", "CmdType:start-up")
        reports = detector.scan([odd_triple])
        assert reports == []

    def test_conflicting_pairs_deduplicated(self, built_requirements_index):
        index, vocabularies, corpus = built_requirements_index
        detector = InconsistencyDetector(index, vocabularies["Fun"], k=5)
        sample = corpus.all_triples()[:40]
        pairs = detector.conflicting_pairs(sample + sample)
        assert len(pairs) == len(set(pairs))

    def test_probe_with_explicit_k(self, built_requirements_index):
        index, vocabularies, corpus = built_requirements_index
        detector = InconsistencyDetector(index, vocabularies["Fun"], k=2)
        base = corpus.all_triples()[0]
        report = detector.probe(base, k=7)
        assert len(report.retrieved) == 7
