"""Plain-text reporting of experiment results.

The benchmark harness prints, for every figure of the paper, the same rows
or series the paper plots.  Since the environment has no plotting stack, the
output is an aligned text table (one column per series) that can be pasted
into EXPERIMENTS.md or fed to any plotting tool later.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.evaluation.runner import Experiment

__all__ = ["format_series_table", "format_experiment", "format_key_values"]


def _format_number(value: float) -> str:
    if value is None:  # pragma: no cover - defensive
        return "-"
    if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
        return f"{value:.3e}"
    return f"{value:.3f}"


def format_series_table(experiment: Experiment, metric: str, *,
                        x_label: Optional[str] = None) -> str:
    """Render one metric of every series of an experiment as an aligned table.

    Rows are the swept parameter values (the union across series); columns
    are the series.  Missing observations show as ``-``.
    """
    x_label = x_label or experiment.swept_parameter
    series_names = sorted(experiment.series)
    all_xs: List[float] = sorted({
        point.x for series in experiment.series.values() for point in series.points
    })
    header = [x_label] + series_names
    rows: List[List[str]] = []
    for x in all_xs:
        row = [_format_number(x)]
        for name in series_names:
            series = experiment.series[name]
            match = next((p for p in series.points if p.x == x), None)
            row.append(_format_number(match.metric(metric)) if match is not None
                       and metric in match.metrics else "-")
        rows.append(row)
    widths = [max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
              for i in range(len(header))]
    lines = [
        "  ".join(header[i].rjust(widths[i]) for i in range(len(header))),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_experiment(experiment: Experiment, metrics: Sequence[str]) -> str:
    """Render an experiment: a header plus one table per requested metric."""
    blocks = [f"== {experiment.experiment_id}: {experiment.description} =="]
    for metric in metrics:
        blocks.append(f"-- metric: {metric} --")
        blocks.append(format_series_table(experiment, metric))
    return "\n".join(blocks)


def format_key_values(title: str, values: Dict[str, float]) -> str:
    """Render a flat mapping of metric name → value (used for summary blocks)."""
    width = max((len(key) for key in values), default=0)
    lines = [f"== {title} =="]
    for key in sorted(values):
        lines.append(f"{key.ljust(width)} : {_format_number(values[key])}")
    return "\n".join(lines)
