"""Table I — input parameters of the distributed k-search.

Table I of the paper is definitional (it lists the state carried by the
k-nearest search: node status S, number of points K, distance D, result set
Rs, point P).  This bench documents the reproduction of that state
(:class:`repro.core.knn.KSearchState`) and measures the cost of its two hot
operations: feeding candidate points into the bounded result set ``Rs`` and
evaluating the backward-visit condition.
"""

from __future__ import annotations

import random

import pytest

from repro.core import KSearchState, LabeledPoint, NodeStatus
from repro.evaluation import Experiment

from .conftest import write_report

CANDIDATES = 5_000
DIMENSIONS = 4


def _candidate_points(count: int) -> list[LabeledPoint]:
    rng = random.Random(0)
    return [
        LabeledPoint.of([rng.random() for _ in range(DIMENSIONS)], label=index)
        for index in range(count)
    ]


@pytest.mark.benchmark(group="table1-ksearch-state")
def test_result_set_offer_throughput(benchmark):
    """Time filling Rs (K = 3) with a stream of candidate points."""
    points = _candidate_points(CANDIDATES)
    query = LabeledPoint.of([0.5] * DIMENSIONS)

    def run():
        state = KSearchState(query=query, k=3)
        state.examine_bucket(points)
        return state.results.current_radius

    radius = benchmark(run)
    assert radius < 1.0


@pytest.mark.benchmark(group="table1-ksearch-state")
def test_backward_visit_condition_throughput(benchmark):
    """Time the paper's disjunction (distance comparison OR |Rs| < K)."""
    points = _candidate_points(64)
    query = LabeledPoint.of([0.5] * DIMENSIONS)
    state = KSearchState(query=query, k=3)
    state.examine_bucket(points)

    def run():
        visits = 0
        for split_value in (0.1, 0.3, 0.5, 0.7, 0.9):
            for split_index in range(DIMENSIONS):
                if state.must_visit_other_side(split_index, split_value):
                    visits += 1
        return visits

    assert benchmark(run) >= 0


@pytest.mark.benchmark(group="table1-ksearch-state")
def test_report_table1(benchmark, results_dir):
    """Document Table I: the state fields and their reproduction counterparts."""

    def run_sweep() -> Experiment:
        experiment = Experiment(
            experiment_id="table1_ksearch_parameters",
            description="Input parameters of K-search (Table I) exercised on a sample stream",
            swept_parameter="K",
        )
        points = _candidate_points(1_000)
        query = LabeledPoint.of([0.5] * DIMENSIONS)
        for k in (1, 3, 5, 10, 20):
            state = KSearchState(query=query, k=k)
            state.examine_bucket(points)
            experiment.record(
                "ksearch-state", k,
                final_radius_D=state.results.current_radius,
                result_set_size=len(state.results),
                points_examined=state.points_examined,
            )
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Table I invariants: Rs never exceeds K, D grows with K (more points kept).
    series = experiment.series_named("ksearch-state")
    assert all(point.metric("result_set_size") <= point.x for point in series.points)
    assert series.is_non_decreasing("final_radius_D")
    # the four node-status values of Table I exist
    assert {status.value for status in NodeStatus} == {"Nv", "Lv", "Rv", "Av"}
    write_report(results_dir, experiment,
                 ["final_radius_D", "result_set_size", "points_examined"])
