"""The HTTP shard transport: partition scans over real sockets.

:class:`HttpShardTransport` implements the
:class:`~repro.cluster.transport.PartitionTransport` protocol against a
:class:`~repro.coordinator.topology.ShardTopology` of live shard servers.
Each shard gets one :class:`~repro.workloads.ServerClient`, whose
keep-alive transport holds one persistent connection per (shard, thread)
pair — the scatter pool's threads each reuse their own sockets, so a
fan-out of N scans costs N round trips, not N handshakes.

Failures — connection refused, timeouts, non-2xx shard responses — surface
as :class:`~repro.errors.ShardError` naming the partition and shard URL, so
the scatter layer can assemble a structured partial-failure report.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from repro.cluster.transport import PartitionScan
from repro.core.cost import SearchCost
from repro.core.knn import Neighbour
from repro.core.point import LabeledPoint
from repro.coordinator.topology import ShardTopology
from repro.errors import ServerError, ShardError
from repro.io.serialization import triple_from_dict
from repro.workloads.http_client import ServerClient

__all__ = ["HttpShardTransport"]


class HttpShardTransport:
    """Scatter-gather scans against per-partition shard servers.

    Parameters
    ----------
    topology:
        Which shard serves which partition.
    timeout:
        Per-scan HTTP timeout in seconds.  A shard that cannot answer
        within it fails that scan with a :class:`ShardError` (the
        coordinator reports the query as a partial failure rather than
        hanging the whole fan-out).
    """

    def __init__(self, topology: ShardTopology, *, timeout: float = 10.0):
        self.topology = topology
        self.timeout = timeout
        self._clients: Dict[str, ServerClient] = {
            partition_id: ServerClient(url, timeout=timeout)
            for partition_id, url in topology.shards.items()
        }

    # -- PartitionTransport -------------------------------------------------------------

    def partition_ids(self) -> Tuple[str, ...]:
        return self.topology.partition_ids

    def scan_knn(self, partition_id: str, query: LabeledPoint, k: int) -> PartitionScan:
        started = time.perf_counter()
        payload = self._call(partition_id, "shard_knn",
                             lambda client: client.shard_knn(query.coordinates, k))
        return self._scan_from_payload(partition_id, payload,
                                       time.perf_counter() - started)

    def scan_range(self, partition_id: str, query: LabeledPoint,
                   radius: float) -> PartitionScan:
        started = time.perf_counter()
        payload = self._call(partition_id, "shard_range",
                             lambda client: client.shard_range(query.coordinates, radius))
        return self._scan_from_payload(partition_id, payload,
                                       time.perf_counter() - started)

    def close(self) -> None:
        # close_all, not close: the persistent sockets live in the scatter
        # pool's worker threads, not in the thread tearing the transport down.
        for client in self._clients.values():
            client.close_all()

    def client_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-partition transport counters (requests, reuse, retries).

        Surfaces whether the fan-out actually rides keep-alive sockets: a
        healthy steady state shows ``requests_reused`` tracking ``requests``
        and ``connections_opened`` stuck near the thread count.
        """
        return {partition_id: client.stats()
                for partition_id, client in self._clients.items()}

    # -- plumbing -----------------------------------------------------------------------

    def _call(self, partition_id: str, operation: str, call) -> Dict:
        client = self._clients.get(partition_id)
        if client is None:
            raise ShardError(
                f"no shard serves partition {partition_id!r} "
                f"(topology covers: {', '.join(self.topology.partition_ids)})",
                failed={partition_id: "not in topology"},
            )
        try:
            return call(client)
        except ServerError as error:
            raise ShardError(
                f"{operation} on partition {partition_id} via {client.base_url} "
                f"failed: {error}",
                failed={partition_id: str(error)},
            ) from error

    def _scan_from_payload(self, partition_id: str, payload: Dict,
                           elapsed_seconds: float) -> PartitionScan:
        served = payload.get("partition_id")
        if served != partition_id:
            # A misconfigured topology (shard booted with the wrong --shard)
            # would silently double-count one partition and drop another.
            raise ShardError(
                f"topology mismatch: the shard at "
                f"{self._clients[partition_id].base_url} serves partition "
                f"{served!r}, not {partition_id!r}",
                failed={partition_id: f"shard serves {served!r}"},
            )
        neighbours = tuple(
            Neighbour(
                LabeledPoint.of(match["coordinates"],
                                label=triple_from_dict(match["triple"])),
                float(match["distance"]),
            )
            for match in payload.get("matches", ())
        )
        # elapsed_seconds is the *coordinator-observed* round trip (network
        # hop included), matching what SimulatedClusterTransport reports —
        # the per-shard latency gauges must point an operator at a slow
        # shard path, not just at its server-side scan time (which the
        # shard still reports in its own payload as latency_ms).
        return PartitionScan(
            partition_id=partition_id,
            neighbours=neighbours,
            nodes_visited=int(payload.get("nodes_visited", 0)),
            points_examined=int(payload.get("points_examined", 0)),
            elapsed_seconds=elapsed_seconds,
            # Absent from older shards' payloads: from_dict reads missing
            # keys as zero, so a mixed-version fleet degrades to undercounting
            # instead of failing the scan.
            cost=SearchCost.from_dict(payload.get("cost")),
        )

    def __repr__(self) -> str:
        return f"HttpShardTransport(shards={len(self._clients)}, timeout={self.timeout})"
