"""Failover cost — replicated fleet throughput, healthy vs one replica down.

The robustness question the replica story must answer with numbers: what
does running two replicas per partition cost when nothing fails, and what
does it buy when something does?  For each replica count this benchmark

1. checkpoints the requirements corpus index and boots a **real fleet** —
   ``replicas`` shard processes per data partition plus a ``python -m
   repro.coordinator`` with a one-strike circuit breaker,
2. measures the steady-state mixed k-NN/range wire workload
   (``healthy`` series),
3. SIGKILLs one partition's primary replica and replays a fresh workload
   (``one_replica_down`` series) with ``allow_partial`` set, recording how
   many answers came back degraded and how many scans were retried.

Shape expectations encoded below: with two replicas the kill is invisible
— zero degraded answers (failover re-scans the survivor, answers stay
exact) at the price of counted retries; with one replica the same kill
turns every query over the dead partition into a degraded answer.  Either
way availability stays 1.0 — ``generate_load`` raises on any failed
request, so the report completing *is* the availability floor.

Quick mode (``FAILOVER_BENCH_QUICK=1``, used by the CI chaos-smoke job)
shrinks the corpus and workload so the file doubles as a degraded-mode
smoke test of the replicated fleet.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.coordinator import (launch_coordinator, launch_replica_fleet,
                               shutdown_processes)
from repro.evaluation import Experiment
from repro.ingest import IngestingIndex
from repro.requirements import (GeneratorConfig, RequirementsGenerator,
                                build_requirement_distance,
                                build_requirement_vocabularies)
from repro.server.bootstrap import vocabulary_hints
from repro.workloads import ServerClient, generate_load, query_payloads

from .conftest import write_report

QUICK = bool(os.environ.get("FAILOVER_BENCH_QUICK"))

REPLICA_COUNTS: Tuple[int, ...] = (1, 2)
REQUEST_COUNT = 48 if QUICK else 240
CLIENT_THREADS = 4


def _build_corpus_index() -> Tuple[SemTreeIndex, List]:
    config = GeneratorConfig(
        documents=4 if QUICK else 8, requirements_per_document=6,
        sentences_per_requirement=3, actors=16, inconsistency_rate=0.2,
        restatement_rate=0.2, seed=31,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    index = SemTreeIndex(build_requirement_distance(vocabularies), SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=4, partition_capacity=48,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    triples = list(dict.fromkeys(corpus.all_triples()))
    return index, triples


def _checkpoint(index: SemTreeIndex, triples, tmp_path):
    actors, parameters = vocabulary_hints(triples)
    live = IngestingIndex(
        index, tmp_path / "wal.jsonl",
        vocabulary_hints={"actors": actors, "parameters": parameters},
    )
    snapshot = tmp_path / "snapshot.json"
    live.checkpoint(snapshot)
    live.close()
    return snapshot


def _partial_payloads(payloads):
    """The same workload with ``allow_partial`` set on every request."""
    return [(path, {**body, "allow_partial": True}) for path, body in payloads]


def _launch_fleet(snapshot, index, replicas: int):
    """``replicas`` shard processes per data partition + coordinator."""
    data_partitions = [
        partition.partition_id for partition in index.tree.partitions
        if partition.point_count > 0
    ]
    fleet = launch_replica_fleet(snapshot, data_partitions, replicas=replicas)
    processes = [managed for group in fleet.values() for managed in group]
    coordinator = launch_coordinator(
        snapshot,
        {pid: [managed.url for managed in group]
         for pid, group in fleet.items()},
        extra_args=["--failure-threshold", "1"],
    )
    processes.append(coordinator)
    return fleet, coordinator, processes


def _run_counted(url: str, payloads) -> Dict[str, float]:
    """One load run, additionally counting degraded answers and retries."""
    degraded = [0]

    def tally(result):
        if result.get("degraded"):
            degraded[0] += 1

    summary = generate_load(url, payloads, threads=CLIENT_THREADS,
                            on_result=tally)
    summary["degraded_answers"] = float(degraded[0])
    summary["availability"] = 1.0  # generate_load raised otherwise
    with ServerClient(url) as client:
        failover = client.metrics()["shards"]["failover"]
    summary["shard_retries"] = float(
        sum(entry["retries"] for entry in failover.values()))
    summary["circuit_opens"] = float(
        sum(entry["circuit_opens"] for entry in failover.values()))
    return summary


def _measure(snapshot, index, replicas: int, *, kill: bool,
             seed: int) -> Dict[str, float]:
    fleet, coordinator, processes = _launch_fleet(snapshot, index, replicas)
    try:
        triples = _TRIPLES_CACHE[id(index)]
        payloads = query_payloads(triples, REQUEST_COUNT, k=3, radius=0.15,
                                  repeat_fraction=0.0, seed=seed)
        if kill:
            victim_partition = sorted(fleet)[0]
            fleet[victim_partition][0].kill()
            payloads = _partial_payloads(payloads)
        summary = _run_counted(coordinator.url, payloads)
        summary["replica_processes"] = float(
            sum(len(group) for group in fleet.values()))
        return summary
    finally:
        shutdown_processes(processes)


#: ``_measure`` needs the triple list matching each index; keyed by id()
#: because SemTreeIndex is not hashable.
_TRIPLES_CACHE: Dict[int, List] = {}


# -- pytest-benchmark case ----------------------------------------------------------------

@pytest.mark.benchmark(group="failover")
def test_replicated_fleet_round_trips(benchmark, tmp_path):
    index, triples = _build_corpus_index()
    snapshot = _checkpoint(index, triples, tmp_path)
    payloads = query_payloads(triples, REQUEST_COUNT, k=3, radius=0.15,
                              repeat_fraction=0.0, seed=47)
    _, coordinator, processes = _launch_fleet(snapshot, index, replicas=2)
    try:
        benchmark.pedantic(
            lambda: generate_load(coordinator.url, payloads,
                                  threads=CLIENT_THREADS),
            rounds=2 if QUICK else 3, iterations=1,
        )
    finally:
        shutdown_processes(processes)


# -- the report itself --------------------------------------------------------------------

def test_report_failover(results_dir, tmp_path):
    experiment = Experiment(
        experiment_id="failover",
        description="Replicated fleet under failure: steady-state throughput "
                    "and a mid-fleet replica SIGKILL, vs replicas per "
                    f"partition, over {REQUEST_COUNT} mixed k-NN/range "
                    "requests",
        swept_parameter="replicas_per_partition",
    )
    index, triples = _build_corpus_index()
    _TRIPLES_CACHE[id(index)] = triples
    snapshot = _checkpoint(index, triples, tmp_path)

    experiment.run_sweep(
        "healthy", REPLICA_COUNTS,
        lambda count: _measure(snapshot, index, int(count), kill=False,
                               seed=61),
    )
    experiment.run_sweep(
        "one_replica_down", REPLICA_COUNTS,
        lambda count: _measure(snapshot, index, int(count), kill=True,
                               seed=67),
    )

    healthy = experiment.series["healthy"]
    degraded = experiment.series["one_replica_down"]
    assert all(count == REQUEST_COUNT for count in healthy.values("requests"))
    assert all(qps > 0 for qps in healthy.values("qps"))
    assert all(value == 1.0 for value in degraded.values("availability"))
    # One replica: the killed partition's scans have nowhere to go — every
    # query over it degrades.  Two replicas: failover hides the kill
    # completely (zero degraded answers) at the price of counted retries.
    by_replicas = dict(zip(degraded.values("replica_processes"),
                           zip(degraded.values("degraded_answers"),
                               degraded.values("shard_retries"))))
    solo_degraded, _ = by_replicas[min(by_replicas)]
    duo_degraded, duo_retries = by_replicas[max(by_replicas)]
    assert solo_degraded > 0, "a dead un-replicated shard must degrade answers"
    assert duo_degraded == 0, "two replicas must absorb the kill exactly"
    assert duo_retries >= 1, "the absorption must show up as retries"

    write_report(results_dir, experiment,
                 ["qps", "latency_ms_p99", "availability",
                  "degraded_answers", "shard_retries", "circuit_opens"])
