"""Exhaustive linear-scan baselines.

The paper defers a comparison with other RDF indexing systems to future
work, but every efficiency and effectiveness figure still needs a ground
truth and a lower-bound comparator.  Two scanners are provided:

* :class:`LinearScanIndex` — scans the *embedded points* with the Euclidean
  distance: the exact answer the KD-tree is supposed to return, so it doubles
  as the correctness oracle in tests.
* :class:`SemanticLinearScan` — scans the *raw triples* with the semantic
  distance of Eq. (1), i.e. the answer an un-embedded, un-indexed system
  would return; comparing it with SemTree quantifies the loss introduced by
  the FastMap approximation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core import kernels
from repro.core.kernels import DEFAULT_SCAN_KERNEL, validate_scan_kernel
from repro.core.knn import Neighbour
from repro.core.point import LabeledPoint
from repro.errors import QueryError
from repro.rdf.triple import Triple
from repro.semantics.triple_distance import TripleDistance

__all__ = ["LinearScanIndex", "SemanticLinearScan"]


class LinearScanIndex:
    """Brute-force k-NN / range search over embedded points (exact answers).

    With the default ``"numpy"`` scan kernel every query is a single matrix
    pass over a lazily-built coordinate matrix (rebuilt after inserts); the
    ``"scalar"`` kernel keeps the per-point loop as the correctness oracle.
    Both return tie-insensitive-identical answers.
    """

    def __init__(self, points: Iterable[LabeledPoint] | None = None,
                 scan_kernel: str = DEFAULT_SCAN_KERNEL):
        self._points: List[LabeledPoint] = list(points) if points else []
        self.scan_kernel = validate_scan_kernel(scan_kernel)
        self._matrix: Optional[np.ndarray] = None

    def insert(self, point: LabeledPoint) -> None:
        """Add one point."""
        self._points.append(point)
        self._matrix = None

    def insert_all(self, points: Iterable[LabeledPoint]) -> None:
        """Add many points."""
        self._points.extend(points)
        self._matrix = None

    def __len__(self) -> int:
        return len(self._points)

    def _coordinate_matrix(self) -> Optional[np.ndarray]:
        if self.scan_kernel != "numpy":
            return None  # the scalar oracle never needs the matrix
        if self._matrix is None:
            self._matrix = kernels.coordinate_matrix(self._points)
        return self._matrix

    def k_nearest(self, query: LabeledPoint, k: int) -> List[Neighbour]:
        """The exact ``k`` nearest points, closest first."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        return kernels.linear_knn(self._points, query, k, self._coordinate_matrix(),
                                  kernel=self.scan_kernel)

    def range_query(self, query: LabeledPoint, radius: float) -> List[Neighbour]:
        """Every point within ``radius``, closest first."""
        if radius < 0:
            raise QueryError("radius must be non-negative")
        return kernels.linear_range(self._points, query, radius,
                                    self._coordinate_matrix(),
                                    kernel=self.scan_kernel)

    def points(self) -> List[LabeledPoint]:
        """The stored points, in insertion order."""
        return list(self._points)


class SemanticLinearScan:
    """Brute-force retrieval over raw triples with the semantic distance of Eq. (1).

    This is the "no index, no embedding" comparator: exact with respect to
    the semantic distance, but linear in the corpus size for every query.
    """

    def __init__(self, distance: TripleDistance, triples: Iterable[Triple] | None = None):
        self.distance = distance
        self._triples: List[Triple] = list(triples) if triples else []

    def add(self, triple: Triple) -> None:
        """Add one triple to the scanned corpus."""
        self._triples.append(triple)

    def add_all(self, triples: Iterable[Triple]) -> None:
        """Add many triples."""
        self._triples.extend(triples)

    def __len__(self) -> int:
        return len(self._triples)

    def k_nearest(self, query: Triple, k: int) -> List[tuple[Triple, float]]:
        """The ``k`` semantically closest triples, closest first."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        scored = [(triple, self.distance(query, triple)) for triple in self._triples]
        scored.sort(key=lambda pair: pair[1])
        return scored[:k]

    def range_query(self, query: Triple, radius: float) -> List[tuple[Triple, float]]:
        """Every triple within semantic distance ``radius``, closest first."""
        if radius < 0:
            raise QueryError("radius must be non-negative")
        found = [
            (triple, self.distance(query, triple))
            for triple in self._triples
            if self.distance(query, triple) <= radius
        ]
        found.sort(key=lambda pair: pair[1])
        return found

    def triples(self) -> List[Triple]:
        """The scanned triples, in insertion order."""
        return list(self._triples)
