"""Tests for the taxonomy-based similarity measures."""

import pytest

from repro.errors import DistanceError
from repro.semantics import (
    JiangConrathSimilarity,
    LeacockChodorowSimilarity,
    LinSimilarity,
    PathSimilarity,
    ResnikSimilarity,
    WuPalmerSimilarity,
    similarity_by_name,
)

ALL_MEASURES = [
    WuPalmerSimilarity,
    PathSimilarity,
    LeacockChodorowSimilarity,
    ResnikSimilarity,
    LinSimilarity,
    JiangConrathSimilarity,
]


@pytest.mark.parametrize("measure_class", ALL_MEASURES)
class TestCommonProperties:
    def test_identical_concepts_have_similarity_one(self, measure_class, small_taxonomy):
        measure = measure_class(small_taxonomy)
        assert measure.similarity("dog", "dog") == pytest.approx(1.0)

    def test_similarity_in_unit_interval(self, measure_class, small_taxonomy):
        measure = measure_class(small_taxonomy)
        for a in ("sports_car", "dog", "bicycle", "entity"):
            for b in ("cat", "truck", "car", "animal"):
                assert 0.0 <= measure.similarity(a, b) <= 1.0

    def test_symmetry(self, measure_class, small_taxonomy):
        measure = measure_class(small_taxonomy)
        assert measure.similarity("car", "dog") == pytest.approx(measure.similarity("dog", "car"))

    def test_distance_is_one_minus_similarity(self, measure_class, small_taxonomy):
        measure = measure_class(small_taxonomy)
        assert measure.distance("car", "truck") == pytest.approx(
            1.0 - measure.similarity("car", "truck")
        )

    def test_close_concepts_more_similar_than_distant_ones(self, measure_class, small_taxonomy):
        measure = measure_class(small_taxonomy)
        assert measure.similarity("car", "truck") > measure.similarity("car", "dog")

    def test_callable_interface(self, measure_class, small_taxonomy):
        measure = measure_class(small_taxonomy)
        assert measure("car", "truck") == measure.similarity("car", "truck")


class TestWuPalmer:
    def test_exact_formula(self, small_taxonomy):
        # depth(car)=3, depth(truck)=3, lcs=vehicle with depth 2 -> 2*2/(3+3)
        measure = WuPalmerSimilarity(small_taxonomy)
        assert measure.similarity("car", "truck") == pytest.approx(4 / 6)

    def test_parent_child(self, small_taxonomy):
        # lcs(car, sports_car)=car depth 3; depths 3 and 4 -> 6/7
        measure = WuPalmerSimilarity(small_taxonomy)
        assert measure.similarity("car", "sports_car") == pytest.approx(6 / 7)

    def test_top_level_siblings_have_low_similarity(self, small_taxonomy):
        measure = WuPalmerSimilarity(small_taxonomy)
        # lcs(vehicle-branch, animal-branch) = entity (depth 1)
        assert measure.similarity("vehicle", "animal") == pytest.approx(2 / 4)


class TestPathSimilarity:
    def test_exact_formula(self, small_taxonomy):
        measure = PathSimilarity(small_taxonomy)
        assert measure.similarity("dog", "cat") == pytest.approx(1 / 3)   # path length 2
        assert measure.similarity("dog", "dog") == pytest.approx(1.0)


class TestInformationContentMeasures:
    def test_resnik_uses_lcs_ic(self, small_taxonomy):
        measure = ResnikSimilarity(small_taxonomy)
        # lcs(dog, cat) = animal; intrinsic IC of animal is positive
        assert measure.similarity("dog", "cat") > 0.0

    def test_resnik_with_corpus_ic(self, small_taxonomy):
        ic = {concept: 1.0 for concept in small_taxonomy}
        ic["animal"] = 3.0
        measure = ResnikSimilarity(small_taxonomy, information_content=ic)
        assert measure.similarity("dog", "cat") == pytest.approx(1.0)

    def test_lin_is_one_for_equal_ic_triple(self, small_taxonomy):
        measure = LinSimilarity(small_taxonomy)
        assert measure.similarity("sports_car", "sports_car") == 1.0

    def test_jiang_conrath_distant_pairs_less_similar(self, small_taxonomy):
        measure = JiangConrathSimilarity(small_taxonomy)
        assert measure.similarity("sports_car", "cat") < measure.similarity("sports_car", "truck")


class TestRegistry:
    @pytest.mark.parametrize("name", [
        "wu-palmer", "path", "leacock-chodorow", "resnik", "lin", "jiang-conrath",
    ])
    def test_lookup_by_name(self, name, small_taxonomy):
        measure = similarity_by_name(name, small_taxonomy)
        assert measure.similarity("car", "car") == pytest.approx(1.0)

    def test_unknown_name_raises(self, small_taxonomy):
        with pytest.raises(DistanceError):
            similarity_by_name("cosine", small_taxonomy)
