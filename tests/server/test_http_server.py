"""End-to-end tests: a real server on an ephemeral port, stdlib client."""

from __future__ import annotations

import json
import urllib.request

import pytest

from server_corpus import BASE_TRIPLES, INSERT_TRIPLES, QUERY_TRIPLES, canonical
from repro.errors import ServerError
from repro.rdf import Triple, TriplePattern
from repro.service.planner import QuerySpec
from repro.workloads import ServerClient


class TestQueries:
    def test_knn_equals_direct_engine(self, make_server):
        server, client = make_server()
        for triple in QUERY_TRIPLES:
            wire = client.knn(triple, 3)
            direct = server.app.engine.execute_sequential(
                [QuerySpec.k_nearest(triple, 3)]
            )[0]
            assert canonical(wire["matches"]) == canonical(direct.matches)
            assert wire["error"] is None and not wire["timed_out"]

    def test_range_equals_direct_engine(self, make_server):
        server, client = make_server()
        for triple in QUERY_TRIPLES:
            wire = client.range(triple, 0.4)
            direct = server.app.engine.execute_sequential(
                [QuerySpec.range_query(triple, 0.4)]
            )[0]
            assert canonical(wire["matches"]) == canonical(direct.matches)

    def test_batched_equals_sequential(self, make_server):
        server, client = make_server()
        payloads = [ServerClient.knn_payload(t, 3) for t in QUERY_TRIPLES] * 2
        results = client.knn_batch(payloads)
        assert len(results) == len(payloads)
        sequential = server.app.engine.execute_sequential(
            [QuerySpec.k_nearest(t, 3) for t in QUERY_TRIPLES] * 2
        )
        for wire, direct in zip(results, sequential):
            assert canonical(wire["matches"]) == canonical(direct.matches)
        # the second half of the batch duplicates the first: served as cached
        assert any(result["cached"] for result in results)

    def test_pattern_filter(self, make_server):
        _, client = make_server()
        result = client.knn(QUERY_TRIPLES[1], 5,
                            pattern=TriplePattern.of("OBSW002", None, None))
        assert result["matches"], "the pattern-filtered result should not be empty"
        for match in result["matches"]:
            assert match["text"].startswith("(OBSW002")

    def test_pattern_round_trip_is_lossless(self, make_server):
        # The client ships pattern terms in the dictionary form: a literal's
        # datatype and exotic concept names survive, where str(term) would
        # not (the server-side match is strict equality).
        from repro.rdf.terms import Concept
        _, client = make_server()
        pattern = TriplePattern(subject=Concept("OBSW002"))
        result = client.knn(QUERY_TRIPLES[1], 5, pattern=pattern)
        assert result["matches"]
        for match in result["matches"]:
            assert match["triple"]["subject"]["name"] == "OBSW002"

    def test_generous_deadline_is_not_a_timeout(self, make_server):
        _, client = make_server()
        result = client.knn(QUERY_TRIPLES[0], 3, deadline=30.0)
        assert not result["timed_out"] and result["matches"]

    def test_single_vs_batch_response_shape(self, make_server):
        _, client = make_server()
        single = client.knn(QUERY_TRIPLES[0], 2)
        assert "matches" in single and "results" not in single
        batch = client.request(
            "POST", "/v1/knn",
            {"queries": [ServerClient.knn_payload(QUERY_TRIPLES[0], 2)]},
        )
        assert "results" in batch and len(batch["results"]) == 1


class TestInserts:
    def test_insert_is_immediately_queryable(self, make_server):
        _, client = make_server()
        triple = INSERT_TRIPLES[0]
        response = client.insert(triple, document_id="doc-9")
        assert response["seq"] == 1 and response["delta_points"] == 1
        result = client.knn(triple, 1)
        assert result["matches"][0]["text"] == str(triple)
        assert result["matches"][0]["distance"] == pytest.approx(0.0)
        assert result["matches"][0]["documents"] == ["doc-9"]

    def test_batch_insert(self, make_server):
        server, client = make_server()
        summary = client.insert_many(INSERT_TRIPLES)
        assert summary == {"accepted": len(INSERT_TRIPLES), "first_seq": 1,
                           "last_seq": len(INSERT_TRIPLES)}
        assert len(server.app.index) == len(BASE_TRIPLES) + len(INSERT_TRIPLES)

    def test_inserts_hit_the_wal(self, make_server, tmp_path):
        _, client = make_server()
        client.insert_many(INSERT_TRIPLES[:3])
        records = [json.loads(line) for line in
                   (tmp_path / "wal.jsonl").read_text().splitlines()]
        assert [record["seq"] for record in records] == [1, 2, 3]

    def test_mid_batch_failure_reports_applied_prefix(self, make_server):
        from repro.server.schemas import PartialInsertError, error_body, status_for
        server, _ = make_server()
        app = server.app
        real_insert = app.index.insert
        calls = []

        def failing_insert(triple, *, document_id=None):
            if len(calls) == 2:
                raise OSError("disk full")
            calls.append(triple)
            return real_insert(triple, document_id=document_id)

        app.index.insert = failing_insert
        try:
            with pytest.raises(PartialInsertError) as excinfo:
                app.handle_insert({"inserts": [
                    {"triple": {"subject": str(t.subject), "predicate": str(t.predicate),
                                "object": str(t.object)}}
                    for t in INSERT_TRIPLES[:4]
                ]})
        finally:
            app.index.insert = real_insert
        error = excinfo.value
        assert status_for(error) == 500
        assert error.details == {"accepted": 2, "first_seq": 1, "last_seq": 2}
        assert error_body(error)["error"]["details"]["accepted"] == 2
        # the applied prefix is durable and queryable
        assert len(app.index) == len(BASE_TRIPLES) + 2

    def test_compaction_behind_inserts(self, make_server):
        server, client = make_server(compaction_threshold=4)
        client.insert_many(INSERT_TRIPLES)
        deadline_metrics = client.metrics()
        assert deadline_metrics["ingest"]["inserts"] == len(INSERT_TRIPLES)
        # the background compactor folds once the threshold is crossed;
        # answers stay exact either way, so only assert the counters move.
        assert deadline_metrics["index"]["points"] == \
            len(BASE_TRIPLES) + len(INSERT_TRIPLES)


class TestObservability:
    def test_healthz(self, make_server):
        _, client = make_server()
        health = client.health()
        assert health["status"] == "ok"
        assert health["points"] == len(BASE_TRIPLES)
        assert health["uptime_seconds"] >= 0.0

    def test_index_info(self, make_server):
        _, client = make_server()
        info = client.index_info()
        assert info["points"] == len(BASE_TRIPLES)
        assert info["kernel"] in ("numpy", "scalar")
        assert info["config"]["dimensions"] == 3
        assert info["config"]["bucket_size"] == 4
        assert info["generation"] >= 1

    def test_metrics_track_requests(self, make_server):
        _, client = make_server()
        client.knn(QUERY_TRIPLES[0], 2)
        client.knn(QUERY_TRIPLES[0], 2)
        client.range(QUERY_TRIPLES[0], 0.3)
        metrics = client.metrics()
        assert metrics["serving"]["queries"] == 3
        assert metrics["serving"]["queries_by_kind"] == {"knn": 2, "range": 1}
        assert metrics["cache"]["hits"] >= 1
        assert metrics["server"]["requests"] == {"knn": 2, "range": 1, "metrics": 1}


class TestTransportErrors:
    def test_unknown_endpoint_404(self, make_server):
        _, client = make_server()
        with pytest.raises(ServerError) as excinfo:
            client.request("GET", "/v1/unknown")
        assert excinfo.value.status == 404 and excinfo.value.kind == "NotFound"

    def test_wrong_method_405(self, make_server):
        _, client = make_server()
        with pytest.raises(ServerError) as excinfo:
            client.request("GET", "/v1/knn")
        assert excinfo.value.status == 405 and excinfo.value.kind == "MethodNotAllowed"

    def test_invalid_json_400(self, make_server):
        server, _ = make_server()
        request = urllib.request.Request(
            f"{server.url}/v1/knn", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["type"] == "InvalidJSON"

    def test_wrong_content_type_415(self, make_server):
        server, _ = make_server()
        request = urllib.request.Request(
            f"{server.url}/v1/knn", data=b"x=1",
            headers={"Content-Type": "application/x-www-form-urlencoded"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 415

    def test_schema_violation_400(self, make_server):
        _, client = make_server()
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/v1/knn", {"k": 3})
        assert excinfo.value.status == 400 and excinfo.value.kind == "SchemaError"

    def test_missing_content_length_411(self, make_server):
        import http.client
        server, _ = make_server()
        connection = http.client.HTTPConnection("127.0.0.1", server.bound_port,
                                                timeout=10)
        try:
            # Hand-rolled request: a body-less POST with no Content-Length.
            connection.putrequest("POST", "/v1/knn")
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 411
            assert json.loads(response.read())["error"]["type"] == "LengthRequired"
        finally:
            connection.close()

    def test_keep_alive_not_desynced_by_unread_bodies(self, make_server):
        # Error paths that skip reading a request body (415, routing errors)
        # must close the connection; otherwise the unread bytes are parsed
        # as the next request line on the keep-alive socket and every
        # subsequent exchange desyncs.
        import http.client
        server, _ = make_server()
        connection = http.client.HTTPConnection("127.0.0.1", server.bound_port,
                                                timeout=10)
        try:
            for path, content_type, expected in (
                ("/v1/knn", "text/plain", 415),       # wrong media type
                ("/v1/nowhere", "application/json", 404),  # unknown endpoint
            ):
                connection.request("POST", path, body=b'{"k": 1}',
                                   headers={"Content-Type": content_type})
                response = connection.getresponse()
                assert response.status == expected
                assert response.getheader("Connection") == "close"
                response.read()
                # a follow-up on the (transparently reopened) connection
                # must still parse cleanly
                connection.request("GET", "/v1/healthz")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_chunked_transfer_encoding_501(self, make_server):
        import http.client
        server, _ = make_server()
        connection = http.client.HTTPConnection("127.0.0.1", server.bound_port,
                                                timeout=10)
        try:
            connection.putrequest("POST", "/v1/knn")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 501
            # the connection must be closed: unread chunked bytes would
            # otherwise desync the next request on this socket
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_unknown_terms_degrade_without_erroring(self, make_server):
        # Concepts outside the vocabularies fall back to a string distance
        # (see TermDistance), so a query about an unseen actor still answers.
        _, client = make_server()
        result = client.knn(Triple.of("GHOST9", "Fun:send_msg", "MsgType:ping"), 2)
        assert result["error"] is None and len(result["matches"]) == 2


class TestLifecycle:
    def test_close_checkpoints_and_refuses(self, make_server, tmp_path):
        server, client = make_server()
        client.insert_many(INSERT_TRIPLES[:2])
        wal_seq = server.close()
        assert wal_seq == 2
        assert (tmp_path / "snapshot.json").exists()
        with pytest.raises(ServerError):
            client.health()  # the socket is gone

    def test_close_is_idempotent(self, make_server):
        server, _ = make_server()
        assert server.close(checkpoint=False) is None
        assert server.app.close() is None

    def test_closed_app_is_503(self, make_server):
        from repro.errors import ServerClosingError
        from repro.server.schemas import status_for
        server, _ = make_server()
        server.app.close(checkpoint=False)
        with pytest.raises(ServerClosingError) as excinfo:
            server.app.handle_knn({"triple": {"subject": "a", "predicate": "b",
                                              "object": "c"}})
        assert status_for(excinfo.value) == 503
