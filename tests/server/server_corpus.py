"""Deterministic triples and helpers shared by the server test suite."""

from __future__ import annotations

from repro.rdf import Triple

ACTORS = ["OBSW001", "OBSW002", "OBSW003", "OBSW004"]

BASE_TRIPLES = [
    Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
    Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"),
    Triple.of("OBSW002", "Fun:enable_mode", "ModeType:safe-mode"),
    Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:shutdown"),
    Triple.of("OBSW003", "Fun:withhold_tm", "TmType:volt-frame"),
]

INSERT_TRIPLES = [
    Triple.of("OBSW003", "Fun:acquire_in", "InType:gps"),
    Triple.of("OBSW003", "Fun:send_msg", "MsgType:pong"),
    Triple.of("OBSW003", "Fun:transmit_tm", "TmType:new-frame"),
    Triple.of("OBSW004", "Fun:accept_cmd", "CmdType:reset"),
    Triple.of("OBSW004", "Fun:enable_mode", "ModeType:survival-mode"),
    Triple.of("OBSW004", "Fun:block_cmd", "CmdType:start-up"),
    Triple.of("OBSW004", "Fun:send_msg", "MsgType:ping"),
    Triple.of("OBSW004", "Fun:transmit_tm", "TmType:temp-frame"),
]

QUERY_TRIPLES = [
    Triple.of("OBSW003", "Fun:transmit_tm", "TmType:new-frame"),
    Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
    Triple.of("OBSW004", "Fun:enable_mode", "ModeType:safe-mode"),
    Triple.of("OBSW002", "Fun:send_msg", "MsgType:heartbeat"),
]

#: The pool the concurrent-client storm draws inserts from: distinct triples
#: over signal values that are part of the shared vocabulary hints below, so
#: a distance derived from the on-disk state after any prefix of the storm
#: agrees with the suite's distance (Wu–Palmer depths are insensitive to
#: sibling concepts that happen not to have been inserted yet).
STREAM_TRIPLES = [
    Triple.of(ACTORS[index % len(ACTORS)],
              "Fun:raise_signal" if index % 2 == 0 else "Fun:clear_signal",
              f"SigType:sig-{index:02d}")
    for index in range(48)
]

#: Every triple any server test may store — the input to the vocabulary
#: hints the suite's distance is built from.
ALL_TRIPLES = BASE_TRIPLES + INSERT_TRIPLES + STREAM_TRIPLES


def canonical(matches):
    """Tie-insensitive canonical form, over engine matches or wire payloads."""
    rows = []
    for match in matches:
        if isinstance(match, dict):
            rows.append((round(match["distance"], 9), match["text"]))
        else:
            rows.append((round(match.distance, 9), str(match.triple)))
    return sorted(rows)
