"""Tests for the FastMap embedding algorithm."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import FastMap, FastMapSpace
from repro.errors import EmbeddingError


def euclidean(a, b):
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


@pytest.fixture
def planar_objects():
    """Points that already live in a 2-D Euclidean space (FastMap should be near-exact)."""
    return [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (0.5, 0.5),
            (2.0, 0.0), (0.0, 2.0), (2.0, 2.0), (1.5, 0.5), (0.25, 1.75)]


class TestFit:
    def test_produces_requested_dimensions(self, planar_objects):
        space = FastMap(euclidean, dimensions=2, seed=0).fit(planar_objects)
        assert space.dimensions == 2
        assert space.coordinates.shape == (len(planar_objects), 2)

    def test_euclidean_input_distances_preserved(self, planar_objects):
        space = FastMap(euclidean, dimensions=2, seed=0).fit(planar_objects)
        for i in range(len(planar_objects)):
            for j in range(i + 1, len(planar_objects)):
                original = euclidean(planar_objects[i], planar_objects[j])
                embedded = float(np.linalg.norm(space.coordinates[i] - space.coordinates[j]))
                assert embedded == pytest.approx(original, abs=1e-6)

    def test_fewer_than_two_objects_rejected(self):
        with pytest.raises(EmbeddingError):
            FastMap(euclidean, dimensions=2).fit([(0.0, 0.0)])

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(EmbeddingError):
            FastMap(euclidean, dimensions=0)

    def test_invalid_pivot_iterations_rejected(self):
        with pytest.raises(EmbeddingError):
            FastMap(euclidean, dimensions=2, pivot_iterations=0)

    def test_negative_distance_rejected(self):
        space_builder = FastMap(lambda a, b: -1.0, dimensions=1)
        with pytest.raises(EmbeddingError):
            space_builder.fit([(0,), (1,)])

    def test_identical_objects_collapse_to_one_dimension(self):
        objects = ["same"] * 5
        space = FastMap(lambda a, b: 0.0, dimensions=3, seed=0).fit(objects)
        assert space.dimensions == 1
        assert np.allclose(space.coordinates, 0.0)

    def test_dimensions_capped_when_residual_collapses(self):
        # Three collinear points span exactly one dimension.
        objects = [(0.0,), (1.0,), (2.0,)]
        space = FastMap(euclidean, dimensions=3, seed=0).fit(objects)
        assert space.dimensions <= 2

    def test_deterministic_for_fixed_seed(self, planar_objects):
        space_a = FastMap(euclidean, dimensions=2, seed=7).fit(planar_objects)
        space_b = FastMap(euclidean, dimensions=2, seed=7).fit(planar_objects)
        assert np.allclose(space_a.coordinates, space_b.coordinates)

    def test_distance_evaluation_counter_increases(self, planar_objects):
        embedder = FastMap(euclidean, dimensions=2, seed=0)
        embedder.fit(planar_objects)
        assert embedder.distance_evaluations > 0


class TestSpaceLookups:
    def test_coordinates_of_in_sample_object(self, planar_objects):
        space = FastMap(euclidean, dimensions=2, seed=0).fit(planar_objects)
        assert space.coordinates_of(planar_objects[3]) == pytest.approx(
            list(space.coordinates[3])
        )

    def test_membership(self, planar_objects):
        space = FastMap(euclidean, dimensions=2, seed=0).fit(planar_objects)
        assert planar_objects[0] in space
        assert (9.9, 9.9) not in space

    def test_coordinates_of_unknown_object_raises(self, planar_objects):
        space = FastMap(euclidean, dimensions=2, seed=0).fit(planar_objects)
        with pytest.raises(EmbeddingError):
            space.coordinates_of((9.9, 9.9))

    def test_len(self, planar_objects):
        space = FastMap(euclidean, dimensions=2, seed=0).fit(planar_objects)
        assert len(space) == len(planar_objects)


class TestProjection:
    def test_in_sample_projection_equals_stored_coordinates(self, planar_objects):
        embedder = FastMap(euclidean, dimensions=2, seed=0)
        space = embedder.fit(planar_objects)
        projected = embedder.project(planar_objects[2], space)
        assert projected == pytest.approx(list(space.coordinates[2]))

    def test_out_of_sample_projection_close_to_true_distances(self, planar_objects):
        embedder = FastMap(euclidean, dimensions=2, seed=0)
        space = embedder.fit(planar_objects)
        query = (0.6, 0.4)
        projected = embedder.project(query, space)
        for index, obj in enumerate(planar_objects):
            original = euclidean(query, obj)
            embedded = float(np.linalg.norm(projected - space.coordinates[index]))
            assert embedded == pytest.approx(original, abs=1e-5)

    def test_fit_transform_returns_space_and_matrix(self, planar_objects):
        space, matrix = FastMap(euclidean, dimensions=2, seed=0).fit_transform(planar_objects)
        assert isinstance(space, FastMapSpace)
        assert matrix.shape == (len(planar_objects), 2)


class TestNonEuclideanInput:
    @given(seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_discrete_metric_embedding_is_bounded(self, seed):
        # The discrete metric (0/1) is not Euclidean; FastMap must still
        # produce finite coordinates and never crash.
        objects = [f"o{i}" for i in range(8)]
        embedder = FastMap(lambda a, b: 0.0 if a == b else 1.0, dimensions=3, seed=seed)
        space = embedder.fit(objects)
        assert np.isfinite(space.coordinates).all()
        assert 1 <= space.dimensions <= 3
