"""Tests for triples and triple patterns."""

import pytest

from repro.errors import TripleError
from repro.rdf import Concept, Literal, Triple, TriplePattern, Variable


@pytest.fixture
def example_triple() -> Triple:
    return Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")


class TestTriple:
    def test_of_parses_each_position(self, example_triple):
        assert example_triple.subject == Concept("OBSW001")
        assert example_triple.predicate == Concept("accept_cmd", "Fun")
        assert example_triple.object == Concept("start-up", "CmdType")

    def test_literal_positions_allowed(self):
        triple = Triple.of("OBSW001", "Fun:send_msg", "'power amplifier'")
        assert triple.object == Literal("power amplifier")

    def test_variable_positions_rejected(self):
        with pytest.raises(TripleError):
            Triple(Variable("x"), Concept("p"), Concept("o"))
        with pytest.raises(TripleError):
            Triple(Concept("s"), Variable("p"), Concept("o"))
        with pytest.raises(TripleError):
            Triple(Concept("s"), Concept("p"), Variable("o"))

    def test_projection_positions(self, example_triple):
        assert example_triple.projection("subject") == example_triple.subject
        assert example_triple.projection("predicate") == example_triple.predicate
        assert example_triple.projection("object") == example_triple.object

    def test_projection_unknown_position(self, example_triple):
        with pytest.raises(TripleError):
            example_triple.projection("verb")

    def test_as_tuple_and_iteration(self, example_triple):
        assert example_triple.as_tuple() == tuple(example_triple)

    def test_replace_predicate(self, example_triple):
        replaced = example_triple.replace(predicate=Concept("block_cmd", "Fun"))
        assert replaced.predicate == Concept("block_cmd", "Fun")
        assert replaced.subject == example_triple.subject
        assert replaced.object == example_triple.object
        # the original is untouched (immutability)
        assert example_triple.predicate == Concept("accept_cmd", "Fun")

    def test_equality_and_hash(self, example_triple):
        same = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        assert example_triple == same
        assert hash(example_triple) == hash(same)
        assert len({example_triple, same}) == 1

    def test_str_format(self, example_triple):
        assert str(example_triple) == "(OBSW001, Fun:accept_cmd, CmdType:start-up)"


class TestTriplePattern:
    def test_full_wildcard_matches_everything(self, example_triple):
        assert TriplePattern().matches(example_triple)

    def test_bound_subject_must_match(self, example_triple):
        assert TriplePattern(subject=Concept("OBSW001")).matches(example_triple)
        assert not TriplePattern(subject=Concept("OBSW002")).matches(example_triple)

    def test_bound_predicate_and_object(self, example_triple):
        pattern = TriplePattern(
            predicate=Concept("accept_cmd", "Fun"), object=Concept("start-up", "CmdType")
        )
        assert pattern.matches(example_triple)

    def test_variable_positions_are_wildcards(self, example_triple):
        pattern = TriplePattern(subject=Variable("s"), predicate=Concept("accept_cmd", "Fun"))
        assert pattern.matches(example_triple)

    def test_of_star_is_wildcard(self, example_triple):
        pattern = TriplePattern.of("*", "Fun:accept_cmd", None)
        assert pattern.matches(example_triple)
        assert pattern.subject is None and pattern.object is None

    def test_is_fully_bound(self):
        assert TriplePattern.of("a", "b", "c").is_fully_bound
        assert not TriplePattern.of("a", None, "c").is_fully_bound
        assert not TriplePattern(subject=Variable("x"), predicate=Concept("p"),
                                 object=Concept("o")).is_fully_bound

    def test_str_shows_wildcards(self):
        assert str(TriplePattern.of("a", None, "*")) == "(a, *, *)"
