"""SemTree core: the paper's primary contribution.

Sequential bucket KD-tree, the distributed partition machinery, the
k-nearest / range search state of Table I, and the :class:`SemTreeIndex`
facade that connects triples, the semantic distance, FastMap and the
distributed tree."""

from repro.core.config import CapacityPolicy, SemTreeConfig, SplitStrategy
from repro.core.distributed import DistributedSemTree, RangeSearchState
from repro.core.kdtree import KDTree
from repro.core.kernels import DEFAULT_SCAN_KERNEL, SCAN_KERNELS, validate_scan_kernel
from repro.core.knn import KSearchState, Neighbour, NodeStatus, ResultSet
from repro.core.node import Node, RemoteChild
from repro.core.partition import Partition
from repro.core.point import LabeledPoint, euclidean_distance, squared_euclidean_distance
from repro.core.semtree import SearchOutcome, SemanticMatch, SemTreeIndex
from repro.core.splitting import SplitDecision, choose_split, partition_bucket
from repro.core.stats import TreeStats, distributed_stats, expected_nodes, sequential_stats

__all__ = [
    "SemTreeConfig",
    "SplitStrategy",
    "CapacityPolicy",
    "KDTree",
    "SCAN_KERNELS",
    "DEFAULT_SCAN_KERNEL",
    "validate_scan_kernel",
    "DistributedSemTree",
    "RangeSearchState",
    "Partition",
    "Node",
    "RemoteChild",
    "LabeledPoint",
    "euclidean_distance",
    "squared_euclidean_distance",
    "KSearchState",
    "ResultSet",
    "Neighbour",
    "NodeStatus",
    "SplitDecision",
    "choose_split",
    "partition_bucket",
    "SemTreeIndex",
    "SemanticMatch",
    "SearchOutcome",
    "TreeStats",
    "sequential_stats",
    "distributed_stats",
    "expected_nodes",
]
