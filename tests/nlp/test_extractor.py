"""Tests for the pattern-based triple extractor."""

import pytest

from repro.errors import ExtractionError
from repro.nlp import ExtractionRule, TripleExtractor
from repro.rdf import Concept, Triple


@pytest.fixture
def extractor() -> TripleExtractor:
    return TripleExtractor()


class TestExtractFromSentence:
    def test_paper_style_sentence(self, extractor):
        triple = extractor.extract_from_sentence(
            "The component OBSW001 shall accept the command start-up."
        )
        assert triple == Triple(
            Concept("OBSW001"), Concept("accept_cmd", "Fun"), Concept("start-up", "CmdType")
        )

    def test_negated_sentence_maps_to_antinomic_function(self, extractor):
        triple = extractor.extract_from_sentence(
            "The component OBSW001 shall not accept the command start-up."
        )
        assert triple.predicate == Concept("block_cmd", "Fun")

    def test_device_subject(self, extractor):
        triple = extractor.extract_from_sentence(
            "The device HWD003 shall acquire the input gps-fix."
        )
        assert triple.subject == Concept("HWD003")
        assert triple.object == Concept("gps-fix", "InType")

    def test_message_object_prefix(self, extractor):
        triple = extractor.extract_from_sentence(
            "The component OBSW002 shall send the message power-amplifier."
        )
        assert triple.object == Concept("power-amplifier", "MsgType")

    def test_multi_word_parameter(self, extractor):
        triple = extractor.extract_from_sentence(
            "The component OBSW002 shall send the message power amplifier."
        )
        assert triple.object.name == "power amplifier"

    def test_must_modal_accepted(self, extractor):
        triple = extractor.extract_from_sentence(
            "The unit OBSW005 must enable the mode safe-mode."
        )
        assert triple.predicate == Concept("enable_mode", "Fun")

    @pytest.mark.parametrize("sentence", [
        "",
        "No modal verb here accepting the command start-up.",
        "The component OBSW001 shall frobnicate the command start-up.",
        "The component OBSW001 shall accept.",
        "shall",
    ])
    def test_unparsable_sentences_raise(self, extractor, sentence):
        with pytest.raises(ExtractionError):
            extractor.extract_from_sentence(sentence)


class TestExtractFromText:
    def test_multiple_sentences(self, extractor):
        text = ("The component OBSW001 shall accept the command start-up. "
                "The component OBSW001 shall send the message heartbeat.")
        triples = extractor.extract_from_text(text)
        assert len(triples) == 2
        assert triples[0].predicate == Concept("accept_cmd", "Fun")
        assert triples[1].predicate == Concept("send_msg", "Fun")

    def test_unparsable_sentences_skipped_silently(self, extractor):
        text = ("Section 3.1: Command handling. "
                "The component OBSW001 shall accept the command start-up.")
        assert len(extractor.extract_from_text(text)) == 1

    def test_empty_text(self, extractor):
        assert extractor.extract_from_text("") == []


class TestCustomRules:
    def test_empty_rule_set_rejected(self):
        with pytest.raises(ExtractionError):
            TripleExtractor(rules=[])

    def test_custom_rule(self):
        extractor = TripleExtractor(rules=[ExtractionRule(("reject",), "reject_cmd")])
        triple = extractor.extract_from_sentence(
            "The component OBSW001 shall reject the command start-up."
        )
        assert triple.predicate == Concept("reject_cmd", "Fun")

    def test_negation_without_explicit_antonym_prefixes_not(self):
        extractor = TripleExtractor(rules=[ExtractionRule(("reject",), "reject_cmd")])
        triple = extractor.extract_from_sentence(
            "The component OBSW001 shall not reject the command start-up."
        )
        assert triple.predicate == Concept("not_reject_cmd", "Fun")


class TestGeneratorRoundTrip:
    def test_generated_sentences_reparse_to_their_triples(self, small_corpus):
        extractor = TripleExtractor()
        checked = 0
        for document in small_corpus.documents:
            for requirement in document:
                for sentence, triple in zip(requirement.sentences, requirement.triples):
                    assert extractor.extract_from_sentence(sentence) == triple
                    checked += 1
        assert checked > 50
