"""Semantic document retrieval: query a document collection by example.

The paper frames SemTree as a *document* index: "a novel semantic index for
supporting retrieval of information from huge amount of document
collections, assuming that semantics of a document can be effectively
expressed by a set of (subject, predicate, object) statements".

This example builds a small heterogeneous document collection (medical-style
records and web-page-style snippets expressed as triples, echoing the
introduction's motivation), indexes it, and answers query-by-example
requests: given a query triple, return the documents whose semantics contain
the closest statements.

Run with::

    python examples/semantic_search.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.core import SemTreeConfig, SemTreeIndex
from repro.rdf import Document, DocumentCollection, Triple
from repro.semantics import DistanceWeights, TermDistance, TripleDistance, Vocabulary


def build_medical_vocabulary() -> Vocabulary:
    """A tiny clinical vocabulary: findings, treatments and their taxonomy."""
    vocabulary = Vocabulary("clinical")
    vocabulary.add_concept("clinical_event")
    vocabulary.add_concept("finding", "clinical_event")
    vocabulary.add_concept("treatment", "clinical_event")
    for finding in ("fever", "hypertension", "fracture", "infection", "anaemia"):
        vocabulary.add_concept(finding, "finding")
    for treatment in ("antibiotic", "antipyretic", "cast", "transfusion", "ace_inhibitor"):
        vocabulary.add_concept(treatment, "treatment")
    vocabulary.add_antonym("fever", "antipyretic")
    return vocabulary


def build_predicate_vocabulary() -> Vocabulary:
    """Predicates shared by the documents: diagnosis, prescription, observation."""
    vocabulary = Vocabulary("predicates")
    vocabulary.add_concept("relates_to")
    for predicate in ("diagnosed_with", "prescribed", "observed", "treated_with",
                      "mentions", "links_to"):
        vocabulary.add_concept(predicate, "relates_to")
    return vocabulary


def build_collection() -> DocumentCollection:
    """A handful of documents whose semantics is already expressed as triples."""
    documents = [
        Document("record-001", [
            Triple.of("patient-17", "Pred:diagnosed_with", "Clin:fever"),
            Triple.of("patient-17", "Pred:prescribed", "Clin:antipyretic"),
        ], text="Patient 17 presented with fever; antipyretic prescribed."),
        Document("record-002", [
            Triple.of("patient-23", "Pred:diagnosed_with", "Clin:infection"),
            Triple.of("patient-23", "Pred:prescribed", "Clin:antibiotic"),
        ], text="Patient 23: infection confirmed, antibiotic started."),
        Document("record-003", [
            Triple.of("patient-17", "Pred:diagnosed_with", "Clin:hypertension"),
            Triple.of("patient-17", "Pred:prescribed", "Clin:ace_inhibitor"),
        ], text="Follow-up for patient 17: hypertension, ACE inhibitor."),
        Document("web-001", [
            Triple.of("page-fever-guide", "Pred:mentions", "Clin:fever"),
            Triple.of("page-fever-guide", "Pred:links_to", "Clin:antipyretic"),
        ], text="A web guide about fever management."),
        Document("record-004", [
            Triple.of("patient-31", "Pred:diagnosed_with", "Clin:fracture"),
            Triple.of("patient-31", "Pred:treated_with", "Clin:cast"),
        ], text="Patient 31 sustained a fracture; cast applied."),
    ]
    return DocumentCollection(documents)


def main() -> None:
    collection = build_collection()
    term_distance = TermDistance({
        "Clin": build_medical_vocabulary(),
        "Pred": build_predicate_vocabulary(),
    })
    # Predicates matter most for "what kind of statement is this"; subject
    # identity matters least for cross-document retrieval.
    distance = TripleDistance(term_distance, DistanceWeights(0.2, 0.4, 0.4))

    index = SemTreeIndex(distance, SemTreeConfig(dimensions=3, bucket_size=4,
                                                 max_partitions=1, partition_capacity=16))
    index.add_collection(collection)
    index.build()

    # Query-by-example: the subject is a placeholder concept; the low subject
    # weight (0.2) makes the predicate and object drive the ranking.
    queries = [
        ("Who was diagnosed with a fever-like condition?",
         Triple.of("any-subject", "Pred:diagnosed_with", "Clin:fever")),
        ("Which documents talk about antibiotic-style treatments?",
         Triple.of("any-subject", "Pred:prescribed", "Clin:antibiotic")),
    ]
    for question, query in queries:
        print(f"\n{question}\n  query triple: {query}")
        document_scores: dict[str, float] = defaultdict(lambda: float("inf"))
        for match in index.k_nearest(query, 4):
            for document_id in match.documents:
                document_scores[document_id] = min(document_scores[document_id], match.distance)
            print(f"  match: {match.triple}  (distance {match.distance:.3f}, "
                  f"documents {list(match.documents)})")
        ranked = sorted(document_scores.items(), key=lambda item: item[1])
        print("  ranked documents:", [doc for doc, _ in ranked])
        for document_id, _ in ranked[:2]:
            print(f"    {document_id}: {collection.get(document_id).text}")


if __name__ == "__main__":
    main()
