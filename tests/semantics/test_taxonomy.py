"""Tests for the concept taxonomy (IS-A DAG)."""

import pytest

from repro.errors import TaxonomyError
from repro.semantics import Taxonomy


class TestConstruction:
    def test_empty_taxonomy(self):
        taxonomy = Taxonomy()
        assert len(taxonomy) == 0
        assert taxonomy.max_depth() == 0

    def test_add_concept_without_parent_hangs_below_root(self):
        taxonomy = Taxonomy()
        taxonomy.add_concept("entity")
        assert taxonomy.parents_of("entity") == {taxonomy.root}
        assert taxonomy.depth("entity") == 1

    def test_add_concept_with_parent(self, small_taxonomy):
        assert small_taxonomy.parents_of("car") == {"vehicle"}
        assert "car" in small_taxonomy.children_of("vehicle")

    def test_multiple_parents_allowed(self):
        taxonomy = Taxonomy()
        taxonomy.add_concept("a")
        taxonomy.add_concept("b")
        taxonomy.add_concept("c", ["a"])
        taxonomy.add_concept("c", ["b"])  # extend the parent set
        assert taxonomy.parents_of("c") == {"a", "b"}

    def test_unknown_parent_rejected(self):
        taxonomy = Taxonomy()
        with pytest.raises(TaxonomyError):
            taxonomy.add_concept("child", "missing-parent")

    def test_empty_name_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy().add_concept("")

    def test_cycle_rejected(self):
        taxonomy = Taxonomy()
        taxonomy.add_concept("a")
        taxonomy.add_concept("b", "a")
        with pytest.raises(TaxonomyError):
            taxonomy.add_concept("a", "b")

    def test_self_parent_rejected(self):
        taxonomy = Taxonomy()
        taxonomy.add_concept("a")
        with pytest.raises(TaxonomyError):
            taxonomy.add_concept("b", "b")

    def test_from_edges(self):
        taxonomy = Taxonomy.from_edges([("car", "vehicle"), ("truck", "vehicle")])
        assert set(taxonomy) == {"car", "truck", "vehicle"}
        assert taxonomy.depth("car") == 2

    def test_from_nested(self):
        taxonomy = Taxonomy.from_nested({"vehicle": {"car": {"sports_car": {}}, "truck": {}}})
        assert taxonomy.depth("sports_car") == 3
        assert taxonomy.leaves() == ["sports_car", "truck"]


class TestQueries:
    def test_contains_and_iteration(self, small_taxonomy):
        assert "car" in small_taxonomy
        assert small_taxonomy.root not in list(small_taxonomy)
        assert len(small_taxonomy) == 9

    def test_depth(self, small_taxonomy):
        assert small_taxonomy.depth("entity") == 1
        assert small_taxonomy.depth("vehicle") == 2
        assert small_taxonomy.depth("sports_car") == 4
        assert small_taxonomy.max_depth() == 4

    def test_depth_unknown_concept(self, small_taxonomy):
        with pytest.raises(TaxonomyError):
            small_taxonomy.depth("missing")

    def test_ancestors(self, small_taxonomy):
        ancestors = small_taxonomy.ancestors("sports_car")
        assert {"sports_car", "car", "vehicle", "entity", small_taxonomy.root} == ancestors
        assert "sports_car" not in small_taxonomy.ancestors("sports_car", include_self=False)

    def test_descendants(self, small_taxonomy):
        assert small_taxonomy.descendants("vehicle") == {"vehicle", "car", "sports_car", "truck"}
        assert "vehicle" not in small_taxonomy.descendants("vehicle", include_self=False)

    def test_leaves(self, small_taxonomy):
        assert set(small_taxonomy.leaves()) == {"sports_car", "truck", "bicycle", "dog", "cat"}

    def test_lcs_same_branch(self, small_taxonomy):
        assert small_taxonomy.lcs("sports_car", "car") == "car"

    def test_lcs_siblings(self, small_taxonomy):
        assert small_taxonomy.lcs("car", "truck") == "vehicle"
        assert small_taxonomy.lcs("dog", "cat") == "animal"

    def test_lcs_distant_concepts(self, small_taxonomy):
        assert small_taxonomy.lcs("sports_car", "dog") == "entity"

    def test_lcs_identity(self, small_taxonomy):
        assert small_taxonomy.lcs("dog", "dog") == "dog"

    def test_path_length(self, small_taxonomy):
        assert small_taxonomy.path_length("dog", "dog") == 0
        assert small_taxonomy.path_length("dog", "cat") == 2
        assert small_taxonomy.path_length("sports_car", "truck") == 3
        assert small_taxonomy.path_length("sports_car", "dog") == 5

    def test_path_length_is_symmetric(self, small_taxonomy):
        assert (small_taxonomy.path_length("sports_car", "bicycle")
                == small_taxonomy.path_length("bicycle", "sports_car"))


class TestInformationContent:
    def test_root_has_zero_ic(self, small_taxonomy):
        assert small_taxonomy.intrinsic_information_content(small_taxonomy.root) == 0.0

    def test_leaves_have_maximal_ic(self, small_taxonomy):
        assert small_taxonomy.intrinsic_information_content("dog") == 1.0

    def test_internal_concept_between_zero_and_one(self, small_taxonomy):
        value = small_taxonomy.intrinsic_information_content("vehicle")
        assert 0.0 < value < 1.0

    def test_more_specific_concepts_have_higher_ic(self, small_taxonomy):
        assert (small_taxonomy.intrinsic_information_content("car")
                > small_taxonomy.intrinsic_information_content("vehicle"))
