"""Tests for the experiment runner (series, sweeps, monotonicity checks)."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation import Experiment, Series, SeriesPoint


class TestSeries:
    def test_add_and_accessors(self):
        series = Series(name="balanced")
        series.add(100, time=1.0, nodes=5)
        series.add(200, time=2.5, nodes=9)
        assert series.xs() == [100, 200]
        assert series.values("time") == [1.0, 2.5]
        assert len(series) == 2

    def test_missing_metric_raises(self):
        series = Series(name="s")
        series.add(1, time=1.0)
        with pytest.raises(EvaluationError):
            series.values("latency")

    def test_monotonicity_checks(self):
        series = Series(name="s")
        for x, value in [(1, 1.0), (2, 2.0), (3, 2.0), (4, 5.0)]:
            series.add(x, metric=value)
        assert series.is_non_decreasing("metric")
        assert not series.is_non_increasing("metric")

    def test_monotonicity_with_tolerance(self):
        series = Series(name="s")
        for x, value in [(1, 1.0), (2, 0.95), (3, 1.5)]:
            series.add(x, metric=value)
        assert not series.is_non_decreasing("metric")
        assert series.is_non_decreasing("metric", tolerance=0.1)

    def test_series_point_metric_lookup(self):
        point = SeriesPoint(x=1.0, metrics={"a": 2.0})
        assert point.metric("a") == 2.0
        with pytest.raises(EvaluationError):
            point.metric("b")


class TestExperiment:
    def test_record_creates_series_on_demand(self):
        experiment = Experiment("fig3", "index building time", "points")
        experiment.record("1 partition", 1000, time=1.0)
        experiment.record("3 partitions", 1000, time=0.7)
        assert set(experiment.series) == {"1 partition", "3 partitions"}

    def test_run_sweep_calls_body_for_every_x(self):
        experiment = Experiment("fig4", "sequential knn", "points")
        seen = []

        def body(x):
            seen.append(x)
            return {"time": x * 2.0}

        series = experiment.run_sweep("balanced", [10, 20, 30], body)
        assert seen == [10, 20, 30]
        assert series.values("time") == [20.0, 40.0, 60.0]

    def test_series_named_returns_same_object(self):
        experiment = Experiment("fig5", "distributed knn", "points")
        assert experiment.series_named("x") is experiment.series_named("x")
