"""Tests for the stdlib sampling profiler (repro.obs.profile)."""

from __future__ import annotations

import threading
import time
from collections import Counter

import pytest

from repro.errors import QueryError
from repro.obs.profile import (DEFAULT_HZ, MAX_HZ, MAX_PROFILE_SECONDS,
                               SamplingProfiler, profile_endpoint)


def _busy_repro_loop(stop: threading.Event) -> None:
    """CPU work whose frames live in a ``repro``-named module.

    The loop body calls into :mod:`repro.core.cost`, so any sample taken
    while this thread runs carries at least one ``repro.`` frame.
    """
    from repro.core.cost import SearchCost

    while not stop.is_set():
        cost = SearchCost()
        for _ in range(50):
            cost.add(SearchCost(distance_computations=1))


@pytest.fixture
def busy_thread():
    stop = threading.Event()
    thread = threading.Thread(target=_busy_repro_loop, args=(stop,), daemon=True)
    thread.start()
    yield thread
    stop.set()
    thread.join(timeout=5.0)


class TestSamplingProfiler:
    def test_samples_running_repro_code(self, busy_thread):
        profiler = SamplingProfiler(hz=200).start()
        time.sleep(0.3)
        profiler.stop()
        assert profiler.total_samples > 0
        assert profiler.wall_seconds() > 0.0
        stacks = profiler.snapshot()
        # The busy thread's stack must appear, with its frames root-first.
        busy = [stack for stack in stacks
                if any(label.startswith("repro.core.cost") for label in stack)]
        assert busy, sorted(stacks)
        for stack in busy:
            assert stack[0].endswith("_busy_repro_loop") or \
                stack[0].startswith("threading."), stack

    def test_collapsed_format_is_flamegraph_ready(self, busy_thread):
        profiler = SamplingProfiler(hz=200).start()
        time.sleep(0.2)
        profiler.stop()
        collapsed = profiler.collapsed()
        assert collapsed.endswith("\n")
        for line in collapsed.strip().splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert frames  # ;-joined labels
        assert "repro.core.cost" in collapsed

    def test_start_and_stop_are_idempotent(self):
        profiler = SamplingProfiler(hz=50)
        assert not profiler.running
        profiler.start()
        first = profiler._thread
        profiler.start()
        assert profiler._thread is first  # no second sampler thread
        assert profiler.running
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_hz_is_clamped(self):
        assert SamplingProfiler(hz=0).hz == 1
        assert SamplingProfiler(hz=10**6).hz == MAX_HZ
        assert SamplingProfiler().hz == DEFAULT_HZ

    def test_top_self_and_cumulative_attribution(self):
        profiler = SamplingProfiler()
        # White-box: inject a deterministic sample set.  Stacks are
        # root-first, so the *last* label is the executing function.
        profiler._samples = Counter({
            ("main", "serve", "scan"): 6,
            ("main", "serve"): 3,
            ("main",): 1,
        })
        profiler._total = 10
        rows = {row["function"]: row for row in profiler.top()}
        assert rows["scan"]["self"] == 6
        assert rows["scan"]["cumulative"] == 6
        assert rows["serve"]["self"] == 3
        assert rows["serve"]["cumulative"] == 9
        assert rows["main"]["self"] == 1
        assert rows["main"]["cumulative"] == 10
        assert rows["scan"]["self_fraction"] == pytest.approx(0.6)
        assert rows["serve"]["cumulative_fraction"] == pytest.approx(0.9)

    def test_empty_profiler_renders_empty(self):
        profiler = SamplingProfiler()
        assert profiler.collapsed() == ""
        assert profiler.top() == []
        assert profiler.total_samples == 0


class TestProfileEndpoint:
    def test_on_demand_top_payload(self, busy_thread):
        payload = profile_endpoint({"seconds": "0.1", "hz": "200"})
        assert payload["source"] == "on_demand"
        assert payload["hz"] == 200
        assert payload["samples"] > 0
        assert payload["wall_seconds"] >= 0.1
        assert all({"function", "self", "cumulative"} <= set(row)
                   for row in payload["functions"])

    def test_on_demand_collapsed_is_a_text_tuple(self, busy_thread):
        content_type, text = profile_endpoint(
            {"seconds": "0.1", "format": "collapsed"})
        assert content_type.startswith("text/plain")
        assert text == "" or text.endswith("\n")

    def test_continuous_profiler_is_read_without_interruption(self, busy_thread):
        continuous = SamplingProfiler(hz=200).start()
        try:
            time.sleep(0.2)
            payload = profile_endpoint({}, continuous)
            assert payload["source"] == "continuous"
            assert payload["samples"] > 0
            assert continuous.running  # reading did not stop collection
            # An explicit seconds= asks for a fresh on-demand burst even
            # when a continuous profiler is running.
            burst = profile_endpoint({"seconds": "0.05"}, continuous)
            assert burst["source"] == "on_demand"
        finally:
            continuous.stop()

    def test_seconds_is_capped(self):
        payload = profile_endpoint({"seconds": "0.01"})
        assert payload["wall_seconds"] < MAX_PROFILE_SECONDS

    @pytest.mark.parametrize("params, message", [
        ({"format": "svg"}, "unknown profile format"),
        ({"seconds": "nope"}, "seconds must be a number"),
        ({"seconds": "-1"}, "seconds must be positive"),
        ({"hz": "0"}, "hz must be positive"),
    ])
    def test_bad_parameters_raise_query_errors(self, params, message):
        with pytest.raises(QueryError, match=message):
            profile_endpoint(params)
