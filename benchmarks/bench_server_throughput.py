"""Server throughput — HTTP round-trip QPS and latency vs client concurrency.

The process-level front end puts a socket, JSON codec and thread-per-
connection handling in front of the `QueryEngine`; this benchmark measures
what that costs and how it scales with concurrent clients.  It boots a real
:class:`~repro.server.http.SemTreeServer` on an ephemeral loopback port,
replays a mixed k-NN/range wire workload through the
:func:`~repro.workloads.http_client.generate_load` driver and reports, per
client-thread count (1 / 4 / 8):

* aggregate QPS over the whole run,
* client-observed latency percentiles (p50/p90/p99, ms),
* the server-side cache hit rate after the run.

Shape expectations encoded below: answers served over HTTP are identical
to direct in-process engine calls, and a repeated workload hits the result
cache.  Absolute numbers depend on the host; the JSON twin
(``BENCH_server_throughput.json``) records the trajectory in git.

Quick mode (``SERVER_BENCH_QUICK=1``, used by the CI perf-smoke job)
shrinks the workload and the thread sweep so the file doubles as a smoke
test that the server stack works under concurrent HTTP load.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.evaluation import Experiment
from repro.ingest import IngestingIndex
from repro.requirements import (GeneratorConfig, RequirementsGenerator,
                                build_requirement_distance,
                                build_requirement_vocabularies)
from repro.server import ServerApp, SemTreeServer
from repro.service.planner import QuerySpec
from repro.workloads import generate_load, query_payloads

from .conftest import write_report

QUICK = bool(os.environ.get("SERVER_BENCH_QUICK"))

THREAD_COUNTS: Tuple[int, ...] = (1, 2) if QUICK else (1, 4, 8)
REQUEST_COUNT = 64 if QUICK else 512
ENGINE_WORKERS = 4


def _build_corpus_index() -> Tuple[SemTreeIndex, List]:
    config = GeneratorConfig(
        documents=4 if QUICK else 8, requirements_per_document=6,
        sentences_per_requirement=3, actors=16, inconsistency_rate=0.2,
        restatement_rate=0.2, seed=29,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=4, partition_capacity=48,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    triples = list(dict.fromkeys(corpus.all_triples()))
    return index, triples


def _boot_server(tmp_path) -> Tuple[SemTreeServer, List]:
    index, triples = _build_corpus_index()
    live = IngestingIndex(index, tmp_path / "bench-wal.jsonl")
    app = ServerApp(live, workers=ENGINE_WORKERS, background_compaction=False)
    return SemTreeServer(app).serve_background(), triples


def _measure(server: SemTreeServer, payloads, threads: int) -> Dict[str, float]:
    # clear() drops entries but preserves counters, so the per-point hit
    # rate must be computed from the counter deltas of this run alone.
    server.app.engine.cache.clear()
    before = server.app.engine.cache.stats
    summary = generate_load(server.url, payloads, threads=threads)
    after = server.app.engine.cache.stats
    lookups = after.lookups - before.lookups
    summary["cache_hit_rate"] = (
        (after.hits - before.hits) / lookups if lookups else 0.0
    )
    return summary


# -- pytest-benchmark case ----------------------------------------------------------------

@pytest.mark.benchmark(group="server-throughput")
def test_http_round_trips(benchmark, tmp_path):
    server, triples = _boot_server(tmp_path)
    payloads = query_payloads(triples, REQUEST_COUNT, k=3, radius=0.15,
                              repeat_fraction=0.3, seed=17)
    with server:
        benchmark.pedantic(
            lambda: generate_load(server.url, payloads, threads=4),
            rounds=2 if QUICK else 3, iterations=1,
        )


# -- the report itself --------------------------------------------------------------------

def test_report_server_throughput(results_dir, tmp_path):
    server, triples = _boot_server(tmp_path)
    payloads = query_payloads(triples, REQUEST_COUNT, k=3, radius=0.15,
                              repeat_fraction=0.3, seed=17)

    with server:
        # Correctness first: HTTP answers must equal direct engine answers.
        from repro.workloads import ServerClient
        client = ServerClient(server.url)
        engine = server.app.engine
        for path, body in payloads[:16]:
            wire = client.request("POST", path, body)
            triple = next(t for t in triples
                          if str(t) == wire_text(body))
            if path.endswith("knn"):
                spec = QuerySpec.k_nearest(triple, body["k"])
            else:
                spec = QuerySpec.range_query(triple, body["radius"])
            direct = engine.execute_sequential([spec])[0]
            assert [m["distance"] for m in wire["matches"]] == pytest.approx(
                [m.distance for m in direct.matches]
            )

        experiment = Experiment(
            experiment_id="server_throughput",
            description="HTTP front-end throughput: QPS and client-observed "
                        f"latency over {REQUEST_COUNT} mixed k-NN/range requests, "
                        "vs concurrent client threads",
            swept_parameter="client_threads",
        )
        experiment.run_sweep(
            "server", THREAD_COUNTS,
            lambda threads: _measure(server, payloads, int(threads)),
        )

        series = experiment.series["server"]
        # The workload repeats ~30% of its queries: the cache must be hit ...
        assert all(rate > 0.0 for rate in series.values("cache_hit_rate"))
        # ... and every sweep point must have completed the full workload.
        assert all(count == len(payloads) for count in series.values("requests"))

    write_report(results_dir, experiment,
                 ["qps", "latency_ms_p50", "latency_ms_p90", "latency_ms_p99",
                  "cache_hit_rate"])


def wire_text(body) -> str:
    """Reconstruct the Turtle-ish text of a wire triple payload (test helper)."""
    from repro.io.serialization import triple_from_dict

    return str(triple_from_dict(body["triple"]))
