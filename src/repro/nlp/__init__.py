"""NLP-lite pipeline: controlled-English requirement sentences → triples."""

from repro.nlp.extractor import DEFAULT_RULES, ExtractionRule, TripleExtractor
from repro.nlp.tokenizer import Token, normalise_identifier, split_sentences, tokenize

__all__ = [
    "Token",
    "tokenize",
    "split_sentences",
    "normalise_identifier",
    "ExtractionRule",
    "TripleExtractor",
    "DEFAULT_RULES",
]
