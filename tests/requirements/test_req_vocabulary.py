"""Tests for the on-board-software requirements vocabulary."""

import pytest

from repro.requirements import (
    ANTINOMY_PAIRS,
    FUNCTION_FAMILIES,
    PARAMETER_PREFIXES,
    build_actor_vocabulary,
    build_function_vocabulary,
    build_parameter_vocabulary,
    build_requirement_distance,
    build_requirement_vocabularies,
)
from repro.rdf import Triple
from repro.semantics import WuPalmerSimilarity


class TestFunctionVocabulary:
    def test_every_family_contributes_two_functions(self):
        vocabulary = build_function_vocabulary()
        for family, positive, negative in FUNCTION_FAMILIES:
            assert positive in vocabulary
            assert negative in vocabulary
            assert family in vocabulary

    def test_antinomy_pairs_registered_symmetrically(self):
        vocabulary = build_function_vocabulary()
        for positive, negative in ANTINOMY_PAIRS:
            assert vocabulary.are_antonyms(positive, negative)
            assert vocabulary.are_antonyms(negative, positive)

    def test_functions_of_different_families_are_not_antonyms(self):
        vocabulary = build_function_vocabulary()
        assert not vocabulary.are_antonyms("accept_cmd", "send_msg")

    def test_same_family_functions_more_similar_than_cross_family(self):
        vocabulary = build_function_vocabulary()
        similarity = WuPalmerSimilarity(vocabulary.taxonomy)
        assert similarity("accept_cmd", "block_cmd") > similarity("accept_cmd", "send_msg")


class TestActorAndParameterVocabularies:
    def test_actor_classification_by_name(self):
        vocabulary = build_actor_vocabulary(["OBSW001", "HWD001"])
        assert vocabulary.taxonomy.parents_of("OBSW001") == {"software_component"}
        assert vocabulary.taxonomy.parents_of("HWD001") == {"hardware_device"}

    def test_parameter_vocabulary_sorted_under_sortal(self):
        vocabulary = build_parameter_vocabulary("CmdType", ["start-up", "shutdown"])
        assert vocabulary.taxonomy.parents_of("start-up") == {"command"}

    def test_every_prefix_has_a_vocabulary(self):
        vocabularies = build_requirement_vocabularies()
        for prefix in PARAMETER_PREFIXES:
            assert prefix in vocabularies
        assert "Fun" in vocabularies
        assert "" in vocabularies


class TestRequirementDistance:
    def test_default_weights_emphasise_subject_and_object(self):
        distance = build_requirement_distance()
        alpha, beta, gamma = distance.weights.as_tuple()
        assert alpha == pytest.approx(0.4)
        assert beta == pytest.approx(0.2)
        assert gamma == pytest.approx(0.4)

    def test_antinomic_statement_is_the_closest_non_identical_triple(self):
        # Register the actors so the subject sub-distance is taxonomy-based
        # (two sibling components are farther apart than two antinomic
        # functions of the same family).
        vocabularies = build_requirement_vocabularies(
            ["OBSW001", "OBSW002", "HWD001"],
            {"CmdType": ["start-up", "shutdown"], "TmType": ["voltage-frame"]},
        )
        distance = build_requirement_distance(vocabularies)
        base = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        antinomic = Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up")
        other_actor = Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:start-up")
        other_param = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:shutdown")
        unrelated = Triple.of("HWD001", "Fun:transmit_tm", "TmType:voltage-frame")
        d_antinomic = distance(base, antinomic)
        assert d_antinomic < distance(base, other_actor)
        assert d_antinomic < distance(base, other_param)
        assert d_antinomic < distance(base, unrelated)
