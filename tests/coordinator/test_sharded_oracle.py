"""ShardedIndex oracle: scatter-gather answers equal the sequential tree.

The acceptance contract of the sharded deployment: a coordinator over real
HTTP shard servers answers a mixed k-NN/range workload identically to the
single-process :class:`DistributedSemTree` (exact distances; triple sets
exact up to order inside exactly-tied groups), under concurrent load, and
a lost shard produces a structured partial failure rather than a silently
partial answer.  Restarting the shard restores exactness.
"""

from __future__ import annotations

import random

import pytest

from coordinator_corpus import assert_equivalent
from repro.coordinator import ShardedIndex, ShardTopology
from repro.errors import ShardError
from repro.server import ShardApp, create_server
from repro.service.engine import QueryEngine
from repro.service.planner import QuerySpec


def mixed_specs(triples, count, *, k=4, radius=0.2, seed=7):
    rng = random.Random(seed)
    specs = []
    for _ in range(count):
        triple = triples[rng.randrange(len(triples))]
        if rng.random() < 0.6:
            specs.append(QuerySpec.k_nearest(triple, k))
        else:
            specs.append(QuerySpec.range_query(triple, radius))
    return specs


@pytest.fixture
def sharded(corpus_index, shard_fleet, make_transport):
    index, triples, _ = corpus_index
    _, topology = shard_fleet
    view = ShardedIndex(index, make_transport(topology), scatter_workers=6)
    yield view, index, triples
    view.close()


def test_mixed_workload_matches_sequential_oracle(sharded):
    view, index, triples = sharded
    oracle = QueryEngine(index, workers=1)
    engine = QueryEngine(view, workers=4)
    specs = mixed_specs(triples, 40)
    try:
        expected = oracle.execute_sequential(specs)
        actual = engine.execute_batch(specs)
        for spec, got, want in zip(specs, actual, expected):
            assert got.ok, got.error
            assert_equivalent(got.matches, want.matches,
                              truncated=spec.kind.value == "knn")
    finally:
        engine.close()
        oracle.close()


def test_concurrent_batches_stay_exact(sharded):
    """Many engine workers × many scatter threads: answers never change."""
    view, index, triples = sharded
    oracle = QueryEngine(index, workers=1)
    engine = QueryEngine(view, workers=8, cache_capacity=8)
    specs = mixed_specs(triples, 30, seed=23)
    try:
        expected = oracle.execute_sequential(specs)
        for _ in range(3):  # repeated batches: cache + fresh executions mix
            actual = engine.execute_batch(specs)
            for spec, got, want in zip(specs, actual, expected):
                assert got.ok, got.error
                assert_equivalent(got.matches, want.matches,
                                  truncated=spec.kind.value == "knn")
    finally:
        engine.close()
        oracle.close()


def test_partition_pruning_bounds_range_fanout(sharded):
    """A tiny-radius range query must not scan every partition."""
    view, index, triples = sharded
    point = index.embed_query(triples[0])
    targets_small = view._range_targets(point, 1e-9)
    targets_large = view._range_targets(point, 100.0)
    assert set(targets_small) <= set(targets_large)
    assert len(targets_large) == len(view._data_partitions)
    # The pruned fan-out is what the outcome reports as visited partitions.
    outcome = view.search_range(point, 1e-9)
    assert outcome.visited_partitions == targets_small


def test_shard_loss_is_a_structured_partial_failure(corpus_index, shard_fleet,
                                                    make_transport):
    index, triples, data_partitions = corpus_index
    servers, topology = shard_fleet
    view = ShardedIndex(index, make_transport(topology), scatter_workers=4)
    engine = QueryEngine(view, workers=2)
    victim = data_partitions[0]
    try:
        servers[victim].close()
        point = index.embed_query(triples[0])
        with pytest.raises(ShardError) as excinfo:
            view.search_k_nearest(point, 3)
        details = excinfo.value.details
        assert victim in details["failed"]
        assert set(details["completed"]) <= set(data_partitions)
        assert victim not in details["completed"]
        # Through the engine the same failure surfaces per query, named.
        result = engine.execute(QuerySpec.k_nearest(triples[0], 3))
        assert not result.ok
        assert "ShardError" in result.error and victim in result.error
        stats = view.statistics()
        assert stats["per_shard"][victim]["failures"] >= 1
    finally:
        engine.close()
        view.close()


def test_restarting_the_shard_restores_exactness(corpus_index, shard_fleet,
                                                 make_transport):
    index, triples, data_partitions = corpus_index
    servers, topology = shard_fleet
    victim = data_partitions[0]
    servers[victim].close()

    # Relaunch the partition on a fresh ephemeral port, as an operator would.
    replacement = create_server(ShardApp.from_index(index, victim)).serve_background()
    try:
        healed = dict(topology.shards)
        healed[victim] = replacement.url
        view = ShardedIndex(index, make_transport(ShardTopology(healed)),
                            scatter_workers=4)
        oracle = QueryEngine(index, workers=1)
        engine = QueryEngine(view, workers=2)
        specs = mixed_specs(triples, 12, seed=99)
        try:
            expected = oracle.execute_sequential(specs)
            actual = engine.execute_batch(specs)
            for spec, got, want in zip(specs, actual, expected):
                assert got.ok, got.error
                assert_equivalent(got.matches, want.matches,
                                  truncated=spec.kind.value == "knn")
        finally:
            engine.close()
            oracle.close()
            view.close()
    finally:
        replacement.close()


def test_missing_partition_in_topology_fails_construction(corpus_index, shard_fleet,
                                                          make_transport):
    index, _, data_partitions = corpus_index
    _, topology = shard_fleet
    partial = {pid: url for pid, url in topology.shards.items()
               if pid != data_partitions[0]}
    with pytest.raises(ShardError, match="does not cover every data-bearing"):
        ShardedIndex(index, make_transport(ShardTopology(partial)))
