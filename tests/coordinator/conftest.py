"""Shared fixtures for the coordinator (scatter-gather) test suite.

Two deployment shapes are exercised:

* **in-process HTTP shards** — one :class:`SemTreeServer` per partition
  over a :class:`ShardApp`, on ephemeral loopback ports.  Real sockets and
  real wire schemas, without subprocess start-up cost; used by most tests.
* **real subprocesses** — ``python -m repro.server --shard`` /
  ``python -m repro.coordinator`` via :mod:`repro.coordinator.launcher`;
  used by the acceptance oracle in ``test_subprocess_cluster.py``.
"""

from __future__ import annotations

import pytest

from coordinator_corpus import build_corpus_index
from repro.coordinator import HttpShardTransport, ShardTopology
from repro.server import ShardApp, create_server


@pytest.fixture(scope="module")
def corpus_index():
    """One built multi-partition index per test module (building is slow)."""
    index, triples = build_corpus_index()
    data_partitions = [
        partition.partition_id for partition in index.tree.partitions
        if partition.point_count > 0
    ]
    assert len(data_partitions) >= 2, "the corpus must span multiple partitions"
    return index, triples, data_partitions


@pytest.fixture
def shard_fleet(corpus_index):
    """In-process HTTP shard servers for every data partition of the index.

    Yields ``(servers_by_partition, topology)``; everything is torn down at
    test exit (servers the test already closed are skipped).
    """
    index, _, data_partitions = corpus_index
    servers = {}
    for partition_id in data_partitions:
        app = ShardApp.from_index(index, partition_id)
        servers[partition_id] = create_server(app).serve_background()
    topology = ShardTopology({
        partition_id: server.url for partition_id, server in servers.items()
    })
    yield servers, topology
    for server in servers.values():
        if not server.app.closed:
            server.close()


@pytest.fixture
def make_transport():
    """Factory for HTTP shard transports that are closed at test exit."""
    transports = []

    def build(topology: ShardTopology, **kwargs) -> HttpShardTransport:
        transport = HttpShardTransport(topology, **kwargs)
        transports.append(transport)
        return transport

    yield build
    for transport in transports:
        transport.close()
