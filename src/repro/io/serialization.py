"""JSON serialisation of triples, documents and requirement corpora.

A reproduction that can only hold its data in memory is awkward to use as a
library: corpora take minutes to regenerate and indexes are rebuilt for every
process.  This module provides a small, dependency-free persistence layer:

* triples and documents ↔ plain JSON-compatible dictionaries;
* document collections ↔ a single JSON file;
* synthetic corpora (documents + actor/parameter catalogues + injected
  inconsistencies) ↔ a single JSON file, so the exact evaluation corpus of a
  run can be archived next to its results.

Turtle-like persistence of raw triples is already available via
:func:`repro.rdf.turtle.serialise_turtle` / :func:`~repro.rdf.turtle.parse_turtle`.
"""

from __future__ import annotations

import json
import pathlib
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.node import ChildRef, Node, RemoteChild
from repro.core.point import LabeledPoint
from repro.errors import ParseError
from repro.rdf.document import Document, DocumentCollection
from repro.rdf.terms import Concept, Literal, Term
from repro.rdf.triple import Triple
from repro.requirements.generator import SyntheticCorpus
from repro.requirements.model import Requirement, RequirementsDocument

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.semtree import SemanticMatch

__all__ = [
    "term_to_dict", "term_from_dict",
    "triple_to_dict", "triple_from_dict",
    "document_to_dict", "document_from_dict",
    "labeled_point_to_dict", "labeled_point_from_dict",
    "node_to_dict", "node_from_dict",
    "match_to_dict", "match_from_dict",
    "json_ready",
    "dump_json_line", "iter_json_lines",
    "save_collection", "load_collection",
    "save_corpus", "load_corpus",
]


# -- JSON-lines streams (write-ahead logs, event streams) ----------------------------------

def dump_json_line(payload: Dict[str, Any]) -> str:
    """One JSON object as a single compact line, newline-terminated.

    The compact separators keep append-heavy streams (the ingest write-ahead
    log) small; the trailing newline is the record delimiter, so a crash
    mid-write leaves a recognisably torn final line.
    """
    return json.dumps(payload, separators=(",", ":")) + "\n"


def iter_json_lines(path: str | pathlib.Path, *,
                    tolerate_torn_tail: bool = False):
    """Yield ``(line_number, payload)`` for every record of a JSON-lines file.

    Blank lines are skipped.  A record that does not parse raises
    :class:`~repro.errors.ParseError` carrying the line number — unless it is
    the *last* line of the file and ``tolerate_torn_tail`` is set, in which
    case it is silently dropped: that is the signature of a process killed
    mid-append, and everything before it is still valid.
    """
    lines = pathlib.Path(path).read_text().splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            if tolerate_torn_tail and number == len(lines):
                return
            raise ParseError(f"invalid JSON-lines record: {error}",
                             line=number) from error
        yield number, payload


# -- terms and triples -------------------------------------------------------------------

def term_to_dict(term: Term) -> Dict[str, str]:
    """Serialise a term to a JSON-compatible dictionary."""
    if isinstance(term, Concept):
        return {"kind": "concept", "name": term.name, "prefix": term.prefix}
    if isinstance(term, Literal):
        return {"kind": "literal", "value": term.value, "datatype": term.datatype}
    raise ParseError(f"cannot serialise term of type {type(term).__name__}")


def term_from_dict(payload: Dict[str, str]) -> Term:
    """Inverse of :func:`term_to_dict`."""
    kind = payload.get("kind")
    if kind == "concept":
        return Concept(payload["name"], payload.get("prefix", ""))
    if kind == "literal":
        return Literal(payload["value"], payload.get("datatype", "string"))
    raise ParseError(f"unknown term kind {kind!r}")


def triple_to_dict(triple: Triple) -> Dict[str, Any]:
    """Serialise a triple to a JSON-compatible dictionary."""
    return {
        "subject": term_to_dict(triple.subject),
        "predicate": term_to_dict(triple.predicate),
        "object": term_to_dict(triple.object),
    }


def triple_from_dict(payload: Dict[str, Any]) -> Triple:
    """Inverse of :func:`triple_to_dict`."""
    return Triple(
        term_from_dict(payload["subject"]),
        term_from_dict(payload["predicate"]),
        term_from_dict(payload["object"]),
    )


# -- points and tree nodes (index snapshots) -----------------------------------------------

def labeled_point_to_dict(point: LabeledPoint) -> Dict[str, Any]:
    """Serialise an embedded point whose label is a triple (the SemTree case)."""
    if not isinstance(point.label, Triple):
        raise ParseError(
            "only points labelled with triples can be serialised, got label of type "
            f"{type(point.label).__name__}"
        )
    return {
        "coordinates": list(point.coordinates),
        "triple": triple_to_dict(point.label),
    }


def labeled_point_from_dict(payload: Dict[str, Any]) -> LabeledPoint:
    """Inverse of :func:`labeled_point_to_dict`."""
    return LabeledPoint.of(payload["coordinates"],
                           label=triple_from_dict(payload["triple"]))


def node_to_dict(root: Node) -> Dict[str, Any]:
    """Serialise a partition-local subtree (remote links become pointers).

    The traversal is iterative (explicit stack, post-order assembly) so even
    the degenerate chain trees of the worst-case experiments serialise
    without hitting the recursion limit.
    """
    order: List[Node] = []
    stack: List[Node] = [root]
    while stack:
        current = stack.pop()
        order.append(current)
        if current.is_routing:
            for child in (current.left, current.right):
                if isinstance(child, Node):
                    stack.append(child)

    payload_of: Dict[int, Dict[str, Any]] = {}

    def child_payload(child: Optional[ChildRef]) -> Dict[str, Any]:
        if isinstance(child, RemoteChild):
            return {"kind": "remote", "partition_id": child.partition_id}
        if isinstance(child, Node):
            return payload_of[id(child)]
        raise ParseError("routing node with a missing child cannot be serialised")

    for current in reversed(order):
        if current.is_leaf:
            payload_of[id(current)] = {
                "kind": "leaf",
                "bucket": [labeled_point_to_dict(point) for point in current.bucket],
            }
        else:
            payload_of[id(current)] = {
                "kind": "routing",
                "split_index": current.split_index,
                "split_value": current.split_value,
                "left": child_payload(current.left),
                "right": child_payload(current.right),
            }
    return payload_of[id(root)]


def node_from_dict(payload: Dict[str, Any], *, partition_id: str | None = None) -> Node:
    """Inverse of :func:`node_to_dict` (iterative, like the serialiser)."""
    root = Node(partition_id=partition_id)
    stack: List[tuple] = [(root, payload)]
    while stack:
        node, data = stack.pop()
        kind = data.get("kind")
        if kind == "leaf":
            node.set_bucket([labeled_point_from_dict(entry) for entry in data.get("bucket", [])])
        elif kind == "routing":
            node.split_index = int(data["split_index"])
            node.split_value = float(data["split_value"])
            for side in ("left", "right"):
                child_data = data[side]
                if child_data.get("kind") == "remote":
                    setattr(node, side, RemoteChild(child_data["partition_id"]))
                else:
                    child = Node(partition_id=partition_id)
                    setattr(node, side, child)
                    stack.append((child, child_data))
        else:
            raise ParseError(f"unknown node kind {kind!r}")
    return root


# -- query matches and metrics (the server's wire payloads) --------------------------------

def match_to_dict(match: "SemanticMatch") -> Dict[str, Any]:
    """Serialise one query result for the wire.

    The triple rides as its term dictionaries (lossless, parseable back with
    :func:`match_from_dict`) plus a human-readable ``text`` rendering;
    ``documents`` is the provenance tuple as a list.
    """
    return {
        "triple": triple_to_dict(match.triple),
        "text": str(match.triple),
        "distance": match.distance,
        "documents": list(match.documents),
    }


def match_from_dict(payload: Dict[str, Any]) -> "SemanticMatch":
    """Inverse of :func:`match_to_dict` (the ``text`` rendering is ignored)."""
    from repro.core.semtree import SemanticMatch  # deferred: avoids an import cycle

    return SemanticMatch(
        triple=triple_from_dict(payload["triple"]),
        distance=float(payload["distance"]),
        documents=tuple(payload.get("documents", ())),
    )


def json_ready(value: Any) -> Any:
    """Recursively coerce a metrics/statistics payload to JSON-native types.

    Snapshots assembled across subsystems may carry tuples (partition lists)
    or non-string dictionary keys (enum values, integers); ``json.dumps``
    would either reject or silently coerce them inconsistently.  This helper
    normalises once: tuples/sets become lists, mapping keys become strings.
    """
    if isinstance(value, dict):
        return {str(key): json_ready(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [json_ready(entry) for entry in value]
    return value


# -- documents -----------------------------------------------------------------------------

def document_to_dict(document: Document) -> Dict[str, Any]:
    """Serialise a generic RDF document."""
    return {
        "document_id": document.document_id,
        "text": document.text,
        "metadata": dict(document.metadata),
        "triples": [triple_to_dict(triple) for triple in document.triples],
    }


def document_from_dict(payload: Dict[str, Any]) -> Document:
    """Inverse of :func:`document_to_dict`."""
    return Document(
        document_id=payload["document_id"],
        triples=[triple_from_dict(entry) for entry in payload.get("triples", [])],
        text=payload.get("text", ""),
        metadata=dict(payload.get("metadata", {})),
    )


def save_collection(collection: DocumentCollection, path: str | pathlib.Path) -> None:
    """Write a document collection to a JSON file."""
    payload = {"documents": [document_to_dict(document) for document in collection]}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, ensure_ascii=False))


def load_collection(path: str | pathlib.Path) -> DocumentCollection:
    """Read a document collection from a JSON file written by :func:`save_collection`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return DocumentCollection(
        document_from_dict(entry) for entry in payload.get("documents", [])
    )


# -- requirement corpora ----------------------------------------------------------------------

def _requirement_to_dict(requirement: Requirement) -> Dict[str, Any]:
    return {
        "requirement_id": requirement.requirement_id,
        "sentences": list(requirement.sentences),
        "triples": [triple_to_dict(triple) for triple in requirement.triples],
    }


def _requirement_from_dict(payload: Dict[str, Any]) -> Requirement:
    return Requirement(
        requirement_id=payload["requirement_id"],
        sentences=list(payload.get("sentences", [])),
        triples=[triple_from_dict(entry) for entry in payload.get("triples", [])],
    )


def save_corpus(corpus: SyntheticCorpus, path: str | pathlib.Path) -> None:
    """Write a synthetic requirements corpus (and its provenance) to a JSON file."""
    payload = {
        "actor_names": list(corpus.actor_names),
        "parameter_values": {k: list(v) for k, v in corpus.parameter_values.items()},
        "documents": [
            {
                "document_id": document.document_id,
                "title": document.title,
                "requirements": [_requirement_to_dict(r) for r in document.requirements],
            }
            for document in corpus.documents
        ],
        "injected_inconsistencies": [
            [triple_to_dict(base), triple_to_dict(conflicting)]
            for base, conflicting in corpus.injected_inconsistencies
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, ensure_ascii=False))


def load_corpus(path: str | pathlib.Path) -> SyntheticCorpus:
    """Read a synthetic requirements corpus written by :func:`save_corpus`."""
    payload = json.loads(pathlib.Path(path).read_text())
    documents: List[RequirementsDocument] = []
    for entry in payload.get("documents", []):
        document = RequirementsDocument(
            document_id=entry["document_id"], title=entry.get("title", "")
        )
        for requirement_entry in entry.get("requirements", []):
            document.add(_requirement_from_dict(requirement_entry))
        documents.append(document)
    return SyntheticCorpus(
        documents=documents,
        actor_names=list(payload.get("actor_names", [])),
        parameter_values={k: list(v) for k, v in payload.get("parameter_values", {}).items()},
        injected_inconsistencies=[
            (triple_from_dict(pair[0]), triple_from_dict(pair[1]))
            for pair in payload.get("injected_inconsistencies", [])
        ],
    )
