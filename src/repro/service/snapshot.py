"""Save/load of a *built* :class:`SemTreeIndex` — index snapshots.

Re-embedding and re-building an index is by far the most expensive part of
standing a service up (FastMap alone costs O(n·k) semantic-distance
evaluations).  A snapshot captures everything the query phase needs —
the FastMap space (objects, coordinates, pivots), the distributed tree
structure (per-partition subtrees with remote links), the stored points,
document provenance and the generation counter — as one JSON document, so a
service can warm-start and answer queries identically to the process that
saved it.

The semantic distance itself is a function and is *not* serialised: the
loader takes the same ``TripleDistance`` the original index was built with,
mirroring the :class:`SemTreeIndex` constructor.  Loading with a different
distance yields a valid but semantically different index — out-of-sample
query projection would disagree with the stored pivots.

Format: a top-level ``{"format": "semtree-snapshot", "version": 1}``
envelope; see ``docs/service.md`` for the full layout.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.cluster import SimulatedCluster
from repro.core.config import CapacityPolicy, SemTreeConfig, SplitStrategy
from repro.core.distributed import DistributedSemTree
from repro.core.node import Node
from repro.core.semtree import SemTreeIndex
from repro.embedding.fastmap import FastMapSpace
from repro.errors import ParseError
from repro.io.serialization import (node_from_dict, node_to_dict, triple_from_dict,
                                    triple_to_dict)
from repro.semantics.triple_distance import TripleDistance

__all__ = ["SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "config_to_dict",
           "config_from_dict", "save_index",
           "load_index", "load_index_payload", "read_snapshot_payload",
           "snapshot_wal_seq", "snapshot_vocabulary"]

SNAPSHOT_FORMAT = "semtree-snapshot"
SNAPSHOT_VERSION = 1


# -- configuration -----------------------------------------------------------------------

def config_to_dict(config: SemTreeConfig) -> Dict[str, Any]:
    return {
        "dimensions": config.dimensions,
        "bucket_size": config.bucket_size,
        "max_partitions": config.max_partitions,
        "partition_capacity": config.partition_capacity,
        "capacity_policy": config.capacity_policy.value,
        "node_capacity_fraction": config.node_capacity_fraction,
        "split_strategy": config.split_strategy.value,
        "scan_kernel": config.scan_kernel,
        "point_visit_cost": config.point_visit_cost,
        "point_insert_cost": config.point_insert_cost,
        "node_visit_cost": config.node_visit_cost,
    }


def config_from_dict(payload: Dict[str, Any]) -> SemTreeConfig:
    """Inverse of :func:`config_to_dict` (shared by index and shard boot)."""
    fields = dict(payload)
    fields["capacity_policy"] = CapacityPolicy(fields["capacity_policy"])
    fields["split_strategy"] = SplitStrategy(fields["split_strategy"])
    # Snapshots written before the kernel layer carry no scan_kernel field;
    # they load with the current default.
    return SemTreeConfig(**fields)


def _partition_order(partition_id: str) -> Tuple[int, Any]:
    # Numeric order (P0, P1, ..., P10) reproduces the original registration
    # order, hence the original deterministic partition placement.
    digits = partition_id.lstrip("P")
    return (0, int(digits)) if digits.isdigit() else (1, partition_id)


# -- saving ------------------------------------------------------------------------------

def save_index(index: SemTreeIndex, path: str | pathlib.Path, *,
               wal_seq: int | None = None,
               vocabulary: Dict[str, Any] | None = None) -> None:
    """Write a built index to ``path`` as one JSON snapshot.

    ``wal_seq`` is recorded by live-ingestion checkpoints
    (:meth:`repro.ingest.ingesting.IngestingIndex.checkpoint`): the highest
    write-ahead-log sequence number whose insert is folded into the
    snapshotted tree.  Recovery replays only the WAL records after it.

    ``vocabulary`` optionally records the hints the semantic distance was
    built from (``{"actors": [...], "parameters": {prefix: [...]}}``), so a
    rebooting process reproduces the exact same distance — including the
    string-distance fallback for terms inserted at runtime that the saving
    process's vocabularies did not know (see
    :func:`repro.server.bootstrap.derive_distance`).

    Raises
    ------
    IndexError_
        If the index has not been built yet (via :attr:`SemTreeIndex.tree`).
    """
    tree = index.tree
    partitions = sorted(tree.partitions, key=lambda p: _partition_order(p.partition_id))
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "config": config_to_dict(index.config),
        "embedding": {
            "requested_dimensions": index.embedder.dimensions,
            "space": index.embedder.space.to_payload(triple_to_dict),
        },
        "tree": {
            "dimensions": tree.config.dimensions,
            "size": len(tree),
            "partitions": [
                {"partition_id": partition.partition_id,
                 "root": node_to_dict(partition.root)}
                for partition in partitions
            ],
        },
        "documents": [
            {"triple": triple_to_dict(triple), "document_ids": list(document_ids)}
            for triple, document_ids in index._documents_of.items()
        ],
        "pending": [triple_to_dict(triple) for triple in index._pending],
        "generation": index.generation,
    }
    if wal_seq is not None:
        payload["wal_seq"] = int(wal_seq)
    if vocabulary is not None:
        payload["vocabulary"] = vocabulary
    # Write-then-rename: a snapshot is a recovery point (the live-ingestion
    # checkpoint truncates the WAL against it), so a crash mid-write must
    # leave the previous snapshot intact, never a torn file.
    target = pathlib.Path(path)
    staging = target.with_suffix(target.suffix + ".staging")
    staging.write_text(json.dumps(payload))
    staging.replace(target)


def snapshot_wal_seq(path: str | pathlib.Path) -> int:
    """The ``wal_seq`` recorded in a snapshot (0 when absent).

    Raises
    ------
    ParseError
        If the file is not a SemTree snapshot.
    """
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ParseError(f"snapshot is not valid JSON: {error}") from error
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ParseError(f"not a SemTree snapshot: format={payload.get('format')!r}")
    return int(payload.get("wal_seq", 0))


def snapshot_vocabulary(payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The vocabulary hints recorded in a snapshot payload (``None`` when absent)."""
    vocabulary = payload.get("vocabulary")
    return vocabulary if isinstance(vocabulary, dict) else None


# -- loading -----------------------------------------------------------------------------

def read_snapshot_payload(path: str | pathlib.Path) -> Dict[str, Any]:
    """Parse and validate a snapshot file into its JSON payload.

    The single place snapshot files are parsed: boot paths that need the
    payload more than once (vocabulary derivation + index load) read it here
    and pass the dictionary on, so the file is parsed exactly once.
    """
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ParseError(f"snapshot is not valid JSON: {error}") from error
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ParseError(f"not a SemTree snapshot: format={payload.get('format')!r}")
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ParseError(
            f"unsupported snapshot version {payload.get('version')!r} "
            f"(expected {SNAPSHOT_VERSION})"
        )
    return payload


def load_index(path: str | pathlib.Path, distance: TripleDistance, *,
               cluster: SimulatedCluster | None = None) -> SemTreeIndex:
    """Rebuild a warm index from a snapshot written by :func:`save_index`.

    ``distance`` must be the semantic distance the snapshotted index was
    built with; ``cluster`` optionally re-hosts the partitions (a fresh
    simulated cluster is created otherwise, as in the constructor).

    The loaded index answers k-NN and range queries identically to the
    index that was saved, and supports further incremental inserts.
    """
    return load_index_payload(read_snapshot_payload(path), distance, cluster=cluster)


def load_index_payload(payload: Dict[str, Any], distance: TripleDistance, *,
                       cluster: SimulatedCluster | None = None) -> SemTreeIndex:
    """Rebuild a warm index from an already-parsed snapshot payload."""
    config = config_from_dict(payload["config"])
    index = SemTreeIndex(distance, config, cluster=cluster)
    index.embedder.dimensions = int(payload["embedding"]["requested_dimensions"])
    index.embedder.restore(
        FastMapSpace.from_payload(payload["embedding"]["space"], triple_from_dict)
    )

    tree_payload = payload["tree"]
    partition_roots: List[Tuple[str, Node]] = [
        (entry["partition_id"],
         node_from_dict(entry["root"], partition_id=entry["partition_id"]))
        for entry in tree_payload["partitions"]
    ]
    tree_config = config.with_updates(dimensions=int(tree_payload["dimensions"]))
    index._tree = DistributedSemTree.from_snapshot(
        tree_config, partition_roots, size=int(tree_payload["size"]),
        cluster=index.cluster,
    )
    index._documents_of = {
        triple_from_dict(entry["triple"]): list(entry["document_ids"])
        for entry in payload.get("documents", [])
    }
    index._pending = [triple_from_dict(entry) for entry in payload.get("pending", [])]
    index._generation = int(payload.get("generation", 0))
    return index
