"""Tests for the k-search state of Table I (result set, node status, conditions)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KSearchState, LabeledPoint, NodeStatus, ResultSet
from repro.errors import QueryError


class TestNodeStatus:
    def test_table_one_values(self):
        assert NodeStatus.NOT_VISITED.value == "Nv"
        assert NodeStatus.LEFT_VISITED.value == "Lv"
        assert NodeStatus.RIGHT_VISITED.value == "Rv"
        assert NodeStatus.ALL_VISITED.value == "Av"


class TestResultSet:
    def test_invalid_k_rejected(self):
        with pytest.raises(QueryError):
            ResultSet(0)

    def test_negative_distance_rejected(self):
        with pytest.raises(QueryError):
            ResultSet(2).offer(LabeledPoint.of([0.0]), -1.0)

    def test_radius_is_infinite_until_full(self):
        results = ResultSet(3)
        results.offer(LabeledPoint.of([0.0]), 1.0)
        assert results.current_radius == float("inf")
        assert not results.is_full

    def test_keeps_only_the_k_closest(self):
        results = ResultSet(2)
        for distance in (5.0, 1.0, 3.0, 0.5):
            results.offer(LabeledPoint.of([distance]), distance)
        assert [n.distance for n in results.neighbours()] == [0.5, 1.0]
        assert results.current_radius == 1.0
        assert results.is_full

    def test_offer_returns_whether_retained(self):
        results = ResultSet(1)
        assert results.offer(LabeledPoint.of([1.0]), 1.0) is True
        assert results.offer(LabeledPoint.of([2.0]), 2.0) is False
        assert results.offer(LabeledPoint.of([0.5]), 0.5) is True

    def test_neighbours_sorted_and_labels(self):
        results = ResultSet(3)
        results.offer(LabeledPoint.of([2.0], label="far"), 2.0)
        results.offer(LabeledPoint.of([1.0], label="near"), 1.0)
        assert results.labels() == ["near", "far"]
        assert [p.label for p in results.points()] == ["near", "far"]

    def test_merge_two_result_sets(self):
        first = ResultSet(2)
        first.offer(LabeledPoint.of([3.0]), 3.0)
        first.offer(LabeledPoint.of([4.0]), 4.0)
        second = ResultSet(2)
        second.offer(LabeledPoint.of([1.0]), 1.0)
        first.merge(second)
        assert [n.distance for n in first.neighbours()] == [1.0, 3.0]

    @given(distances=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                              min_size=1, max_size=40),
           k=st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_sorted_prefix(self, distances, k):
        results = ResultSet(k)
        for distance in distances:
            results.offer(LabeledPoint.of([distance]), distance)
        expected = sorted(distances)[:k]
        assert [n.distance for n in results.neighbours()] == pytest.approx(expected)


class TestKSearchState:
    def test_examines_and_counts_points(self):
        state = KSearchState(query=LabeledPoint.of([0.0, 0.0]), k=2)
        retained = state.examine_bucket([
            LabeledPoint.of([1.0, 0.0]), LabeledPoint.of([0.1, 0.0]), LabeledPoint.of([5.0, 0.0]),
        ])
        assert retained == 2  # the third candidate is farther than both retained ones
        assert state.points_examined == 3
        assert state.results.is_full

    def test_must_visit_other_side_while_not_full(self):
        state = KSearchState(query=LabeledPoint.of([0.0]), k=3)
        state.examine(LabeledPoint.of([10.0]))
        assert state.must_visit_other_side(split_index=0, split_value=100.0)

    def test_must_visit_other_side_when_plane_is_close(self):
        state = KSearchState(query=LabeledPoint.of([0.0]), k=1)
        state.examine(LabeledPoint.of([5.0]))     # current radius = 5
        assert state.must_visit_other_side(0, split_value=2.0)       # plane at distance 2 < 5
        assert not state.must_visit_other_side(0, split_value=9.0)   # plane at distance 9 > 5
