"""Render → parse → validate round trips of the text exposition."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.prometheus import (
    CONTENT_TYPE,
    parse_exposition,
    render_exposition,
    validate_exposition,
)
from repro.obs.registry import MetricsRegistry


def round_trip(registry):
    text = render_exposition(registry)
    families = parse_exposition(text)
    assert validate_exposition(families) == [], text
    return text, families


class TestRoundTrip:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests served.").inc(5)
        registry.gauge("temperature", "Degrees.").set(-3.5)
        text, families = round_trip(registry)
        assert "# TYPE requests_total counter" in text
        assert families["requests_total"].samples[0].value == 5.0
        assert families["temperature"].samples[0].value == -3.5
        assert families["requests_total"].help_text == "Requests served."

    def test_label_escaping_survives(self):
        registry = MetricsRegistry()
        family = registry.counter("weird_total", "help", ("pattern",))
        nasty = 'back\\slash "quoted"\nnewline'
        family.labels(nasty).inc()
        _, families = round_trip(registry)
        labels = families["weird_total"].samples[0].labels
        assert labels["pattern"] == nasty

    def test_help_text_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline two \\ backslash").inc()
        _, families = round_trip(registry)
        assert families["c_total"].help_text == "line one\nline two \\ backslash"

    def test_histogram_series_structure(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", "help",
                                       ("kind",), buckets=(0.1, 1.0))
        histogram.labels("knn").observe(0.05)
        histogram.labels("knn").observe(0.5)
        histogram.labels("knn").observe(3.0)
        text, families = round_trip(registry)
        family = families["latency_seconds"]
        assert family.kind == "histogram"
        buckets = {sample.labels["le"]: sample.value
                   for sample in family.samples
                   if sample.name == "latency_seconds_bucket"}
        assert buckets == {"0.1": 1.0, "1.0": 2.0, "+Inf": 3.0}
        count = [sample for sample in family.samples
                 if sample.name == "latency_seconds_count"]
        assert len(count) == 1 and count[0].value == 3.0
        # a histogram with labels keeps the le label alongside them
        assert all(sample.labels.get("kind") == "knn"
                   for sample in family.samples)

    def test_special_float_values(self):
        registry = MetricsRegistry()
        registry.gauge("inf_gauge", "help").set(math.inf)
        registry.gauge("ninf_gauge", "help").set(-math.inf)
        _, families = round_trip(registry)
        assert families["inf_gauge"].samples[0].value == math.inf
        assert families["ninf_gauge"].samples[0].value == -math.inf

    def test_content_type_pins_the_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestValidator:
    def test_flags_non_monotone_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        problems = validate_exposition(parse_exposition(text))
        assert any("monotone" in problem for problem in problems)

    def test_flags_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        problems = validate_exposition(parse_exposition(text))
        assert any("+Inf" in problem for problem in problems)

    def test_flags_inf_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        problems = validate_exposition(parse_exposition(text))
        assert any("_count" in problem for problem in problems)

    def test_flags_duplicate_series(self):
        text = "# TYPE c counter\nc 1\nc 2\n"
        problems = validate_exposition(parse_exposition(text))
        assert any("duplicate" in problem for problem in problems)

    def test_flags_negative_counter(self):
        text = "# TYPE c counter\nc -1\n"
        problems = validate_exposition(parse_exposition(text))
        assert any("negative" in problem for problem in problems)

    def test_malformed_series_line_raises(self):
        with pytest.raises(ObservabilityError):
            parse_exposition("not a metric line at all!\n")

    def test_malformed_labels_raise(self):
        with pytest.raises(ObservabilityError):
            parse_exposition('c{oops} 1\n')
