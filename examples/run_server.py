"""Run the HTTP server as a real OS process: boot, query, insert, kill, recover.

The walkthrough behind ``docs/server.md``:

1. build a small requirements index, wrap it in an
   :class:`~repro.ingest.ingesting.IngestingIndex` and write the checkpoint
   snapshot + WAL a server boots from;
2. spawn ``python -m repro.server`` as a subprocess, wait for it to listen,
   and drive it with the stdlib :class:`~repro.workloads.ServerClient`:
   single and batched k-NN over HTTP, a live insert, metrics;
3. terminate the process (SIGTERM → graceful checkpoint-on-exit), boot a
   *second* server from the files the first one left behind, and check it
   still knows the triple inserted over HTTP.

Run with::

    PYTHONPATH=src python examples/run_server.py
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core import SemTreeConfig, SemTreeIndex
from repro.ingest import IngestingIndex
from repro.rdf import Triple
from repro.requirements import build_requirement_distance, build_requirement_vocabularies
from repro.workloads import ServerClient

ACTORS = ["OBSW001", "OBSW002", "OBSW003", "OBSW004"]

BASE_TRIPLES = [
    Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
    Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"),
    Triple.of("OBSW002", "Fun:enable_mode", "ModeType:safe-mode"),
    Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:shutdown"),
    Triple.of("OBSW003", "Fun:withhold_tm", "TmType:volt-frame"),
]

INSERTED = Triple.of("OBSW004", "Fun:block_cmd", "CmdType:start-up")
QUERY = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")


def write_boot_state(workdir: Path) -> None:
    """Build the index once and leave a checkpoint + empty WAL on disk."""
    distance = build_requirement_distance(build_requirement_vocabularies(ACTORS))
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=3, bucket_size=4, max_partitions=2, partition_capacity=8,
    ))
    index.add_triples(BASE_TRIPLES)
    index.build()
    with IngestingIndex(index, workdir / "wal.jsonl") as live:
        live.checkpoint(workdir / "snapshot.json")


def spawn_server(workdir: Path) -> tuple[subprocess.Popen, str]:
    """Start ``python -m repro.server`` and wait until it prints its URL."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server",
         "--snapshot", str(workdir / "snapshot.json"),
         "--wal", str(workdir / "wal.jsonl"),
         "--port", "0", "--quiet"],
        stdout=subprocess.PIPE, text=True,
    )
    url = None
    for line in process.stdout:
        print(f"  [server] {line.rstrip()}")
        if line.startswith("listening on "):
            url = line.split("listening on ", 1)[1].strip()
            break
    if url is None:
        raise RuntimeError("the server exited before listening")
    return process, url


def drain(process: subprocess.Popen) -> None:
    for line in process.stdout:
        print(f"  [server] {line.rstrip()}")
    process.wait(timeout=30)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="semtree-server-"))
    write_boot_state(workdir)
    print(f"Boot state written to {workdir}")

    process, url = spawn_server(workdir)
    client = ServerClient(url)
    client.wait_ready()

    health = client.health()
    print(f"Server healthy: {health['points']} points, "
          f"generation {health['generation']}")

    result = client.knn(QUERY, 3)
    print("Top-3 over HTTP:")
    for match in result["matches"]:
        print(f"  {match['text']}  @ {match['distance']:.3f}")

    payloads = [ServerClient.knn_payload(t, 2) for t in BASE_TRIPLES]
    client.knn_batch(payloads)           # cold: populates the result cache
    batch = client.knn_batch(payloads)   # warm: identical repeat
    print(f"Batched: {len(batch)} results, "
          f"{sum(1 for r in batch if r['cached'])} served from cache on repeat")

    response = client.insert(INSERTED, document_id="ops-manual")
    print(f"Inserted over HTTP: wal seq {response['seq']}, "
          f"delta size {response['delta_points']}")
    best = client.knn(INSERTED, 1)["matches"][0]
    print(f"Immediately queryable: {best['text']} @ {best['distance']:.3f} "
          f"(documents={best['documents']})")

    metrics = client.metrics()
    print(f"Metrics: {metrics['serving']['queries']} queries served, "
          f"cache hit rate {metrics['cache']['hit_rate']:.2f}, "
          f"{metrics['ingest']['inserts']} inserts")

    print("Sending SIGTERM (graceful shutdown: checkpoint-on-exit) ...")
    process.send_signal(signal.SIGTERM)
    drain(process)

    process, url = spawn_server(workdir)
    client = ServerClient(url)
    client.wait_ready()
    best = client.knn(INSERTED, 1)["matches"][0]
    survived = best["text"] == str(INSERTED) and best["documents"] == ["ops-manual"]
    print(f"Recovered server still knows the HTTP-inserted triple: {survived}")
    process.send_signal(signal.SIGTERM)
    drain(process)


if __name__ == "__main__":
    main()
