"""Cluster topology: which shard server serves which partition.

A topology is a plain mapping ``partition_id → base_url``.  Operators write
it either inline (``--shards "P0=http://10.0.0.1:9000,P1=http://10.0.0.2:9000"``)
or as a JSON file (``{"P0": "http://...", ...}``); the launcher
(:mod:`repro.coordinator.launcher`) builds one from the ports its shard
subprocesses actually bound.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.errors import ShardError

__all__ = ["ShardTopology"]


@dataclass(frozen=True)
class ShardTopology:
    """An immutable ``partition_id → shard base URL`` mapping."""

    shards: Mapping[str, str]

    def __post_init__(self) -> None:
        if not self.shards:
            raise ShardError("a topology needs at least one shard")
        for partition_id, url in self.shards.items():
            if not partition_id or not isinstance(partition_id, str):
                raise ShardError(f"invalid partition id {partition_id!r}")
            if not isinstance(url, str) or not url.startswith("http"):
                raise ShardError(
                    f"shard {partition_id!r} needs an http base URL, got {url!r}"
                )
        object.__setattr__(self, "shards", dict(self.shards))

    @classmethod
    def parse(cls, text: str) -> "ShardTopology":
        """Parse the inline ``P0=http://host:port,P1=...`` form."""
        shards: Dict[str, str] = {}
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            partition_id, separator, url = entry.partition("=")
            if not separator:
                raise ShardError(
                    f"cannot parse shard entry {entry!r}: expected "
                    "PARTITION_ID=http://host:port"
                )
            shards[partition_id.strip()] = url.strip().rstrip("/")
        return cls(shards)

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "ShardTopology":
        """Load a ``{"P0": "http://...", ...}`` JSON file."""
        try:
            payload = json.loads(pathlib.Path(path).read_text())
        except json.JSONDecodeError as error:
            raise ShardError(f"topology file is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ShardError("a topology file must hold one JSON object")
        return cls({str(key): str(value).rstrip("/") for key, value in payload.items()})

    # -- queries ------------------------------------------------------------------------

    def url_of(self, partition_id: str) -> str:
        """Base URL of the shard serving ``partition_id``."""
        try:
            return self.shards[partition_id]
        except KeyError:
            raise ShardError(
                f"no shard serves partition {partition_id!r} "
                f"(topology covers: {', '.join(self.partition_ids)})"
            ) from None

    @property
    def partition_ids(self) -> Tuple[str, ...]:
        """Every partition the topology covers, sorted."""
        return tuple(sorted(self.shards))

    def missing(self, required: Iterable[str]) -> List[str]:
        """Partitions in ``required`` that no shard serves (sorted)."""
        return sorted(set(required) - set(self.shards))

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return f"ShardTopology({dict(self.shards)!r})"
