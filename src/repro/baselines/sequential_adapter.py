"""Sequential single-partition baseline.

Wraps the sequential :class:`~repro.core.kdtree.KDTree` behind the same
query interface as :class:`~repro.core.distributed.DistributedSemTree`, so
the benchmark harness can sweep "1 partition" and "M partitions"
configurations with identical code.  It also exposes the balanced /
unbalanced bulk builders used by Figures 3, 4 and 6.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.config import SemTreeConfig, SplitStrategy
from repro.core.kdtree import KDTree
from repro.core.knn import Neighbour
from repro.core.point import LabeledPoint

__all__ = ["SequentialKDTreeBaseline"]


class SequentialKDTreeBaseline:
    """A single-partition KD-tree behind the distributed-tree query interface."""

    def __init__(self, config: SemTreeConfig):
        self.config = config
        self._tree = KDTree.from_config(config)

    # -- constructors used by the benchmarks ---------------------------------------------

    @classmethod
    def balanced(cls, points: Sequence[LabeledPoint], config: SemTreeConfig) -> "SequentialKDTreeBaseline":
        """Bulk-load a balanced tree (the paper's "1 partition (balanced)")."""
        baseline = cls(config)
        baseline._tree = KDTree.build_balanced(points, bucket_size=config.bucket_size,
                                               scan_kernel=config.scan_kernel)
        return baseline

    @classmethod
    def unbalanced_chain(cls, points: Sequence[LabeledPoint],
                         config: SemTreeConfig) -> "SequentialKDTreeBaseline":
        """Build the paper's "1 partition (totally unbalanced)" chain tree."""
        baseline = cls(config.with_updates(split_strategy=SplitStrategy.FIRST_POINT))
        baseline._tree = KDTree.build_chain(points, bucket_size=1,
                                            scan_kernel=config.scan_kernel)
        return baseline

    @classmethod
    def by_dynamic_insertion(cls, points: Iterable[LabeledPoint],
                             config: SemTreeConfig) -> "SequentialKDTreeBaseline":
        """Build the tree by inserting every point one by one."""
        baseline = cls(config)
        baseline.insert_all(points)
        return baseline

    # -- the shared interface --------------------------------------------------------------

    @property
    def tree(self) -> KDTree:
        """The wrapped sequential tree."""
        return self._tree

    def insert(self, point: LabeledPoint) -> None:
        """Insert one point."""
        self._tree.insert(point)

    def insert_all(self, points: Iterable[LabeledPoint]) -> None:
        """Insert many points."""
        self._tree.insert_all(points)

    def k_nearest(self, query: LabeledPoint, k: int) -> List[Neighbour]:
        """Sequential k-nearest search."""
        return self._tree.k_nearest(query, k)

    def range_query(self, query: LabeledPoint, radius: float) -> List[Neighbour]:
        """Sequential range search."""
        return self._tree.range_query(query, radius)

    def __len__(self) -> int:
        return len(self._tree)

    def __repr__(self) -> str:
        return f"SequentialKDTreeBaseline({self._tree!r})"
