"""Single-parse boot + persisted vocabulary hints.

``recover_index`` must read the snapshot file exactly once and the WAL file
exactly once (the historic boot parsed the snapshot twice — vocabulary
harvest + index load — and replayed the WAL twice).  The checkpoint's
``vocabulary`` section must reproduce the previous process's distance
exactly, string-distance fallback for novel terms included.
"""

from __future__ import annotations

import pathlib

import pytest

from server_corpus import ALL_TRIPLES, BASE_TRIPLES, INSERT_TRIPLES
from repro.ingest import IngestingIndex
from repro.rdf import Triple
from repro.server.bootstrap import (derive_distance, derive_distance_from_state,
                                    recover_index, vocabulary_hints)
from repro.service.snapshot import read_snapshot_payload


@pytest.fixture
def checkpointed(make_base, tmp_path, distance):
    """A server lifetime's durable state: checkpoint + WAL tail + hints."""
    actors, parameters = vocabulary_hints(ALL_TRIPLES)
    live = IngestingIndex(
        make_base(), tmp_path / "wal.jsonl",
        vocabulary_hints={"actors": actors, "parameters": parameters},
    )
    snapshot = tmp_path / "snapshot.json"
    live.checkpoint(snapshot)
    # A post-checkpoint tail: these records live only in the WAL.
    for triple in INSERT_TRIPLES[:3]:
        live.insert(triple)
    live.close()
    return snapshot, tmp_path / "wal.jsonl"


def _count_file_reads(monkeypatch, *paths):
    """Wrap Path.read_text/read_bytes to count reads of specific files."""
    counts = {str(path): 0 for path in paths}
    real_read_text = pathlib.Path.read_text
    real_read_bytes = pathlib.Path.read_bytes

    def counting_read_text(self, *args, **kwargs):
        if str(self) in counts:
            counts[str(self)] += 1
        return real_read_text(self, *args, **kwargs)

    def counting_read_bytes(self, *args, **kwargs):
        if str(self) in counts:
            counts[str(self)] += 1
        return real_read_bytes(self, *args, **kwargs)

    monkeypatch.setattr(pathlib.Path, "read_text", counting_read_text)
    monkeypatch.setattr(pathlib.Path, "read_bytes", counting_read_bytes)
    return counts


class TestSingleParse:
    def test_recover_reads_each_file_exactly_once(self, checkpointed, monkeypatch):
        snapshot, wal = checkpointed
        counts = _count_file_reads(monkeypatch, snapshot, wal)
        index = recover_index(snapshot, wal)
        index.close()
        assert counts[str(snapshot)] == 1
        assert counts[str(wal)] == 1

    def test_recovered_index_answers_like_the_original(self, checkpointed, distance,
                                                       make_base, tmp_path):
        snapshot, wal = checkpointed
        recovered = recover_index(snapshot, wal)
        original = IngestingIndex(make_base(), tmp_path / "oracle-wal.jsonl")
        for triple in INSERT_TRIPLES[:3]:
            original.insert(triple)
        try:
            assert len(recovered) == len(original)
            for query in BASE_TRIPLES:
                got = [(m.distance, str(m.triple)) for m in recovered.k_nearest(query, 4)]
                want = [(m.distance, str(m.triple)) for m in original.k_nearest(query, 4)]
                assert got == want
        finally:
            recovered.close()
            original.close()


class TestVocabularyHints:
    def test_checkpoint_persists_the_hints(self, checkpointed):
        snapshot, _ = checkpointed
        payload = read_snapshot_payload(snapshot)
        actors, parameters = vocabulary_hints(ALL_TRIPLES)
        assert payload["vocabulary"]["actors"] == actors
        assert payload["vocabulary"]["parameters"] == parameters

    def test_recover_carries_hints_to_the_next_checkpoint(self, checkpointed,
                                                          tmp_path):
        snapshot, wal = checkpointed
        recovered = recover_index(snapshot, wal)
        try:
            assert recovered.vocabulary_hints is not None
            second = tmp_path / "second.json"
            recovered.checkpoint(second)
            assert read_snapshot_payload(second)["vocabulary"] == \
                   recovered.vocabulary_hints
        finally:
            recovered.close()

    def test_stored_hints_beat_harvesting_for_novel_terms(self, checkpointed,
                                                          distance, make_base,
                                                          tmp_path):
        """A runtime-inserted novel actor must stay on the string fallback.

        The original process never knew ``GHOST9``: its distance served the
        triple through the string-distance fallback.  A reboot that
        *harvests* would promote the actor into the taxonomy and change
        distances; a reboot from the persisted hints reproduces the original
        values bit-for-bit.
        """
        snapshot, wal = checkpointed
        novel = Triple.of("GHOST9", "Fun:accept_cmd", "CmdType:start-up")
        original = IngestingIndex(make_base(), tmp_path / "novel-wal.jsonl")
        original.insert(novel)
        original.close()

        # Simulate the same insert against the recovered state's WAL.
        recovered = recover_index(snapshot, wal)
        recovered.insert(novel)
        try:
            for query in BASE_TRIPLES:
                original_value = distance(novel, query)
                recovered_value = recovered.base.distance(novel, query)
                assert recovered_value == original_value
        finally:
            recovered.close()

        # The harvesting path (no stored hints) legitimately differs: the
        # novel actor gains taxonomy placement.
        payload = read_snapshot_payload(snapshot)
        payload.pop("vocabulary")
        harvested, hints = derive_distance_from_state(
            payload, [{"seq": 1, "triple": {
                "subject": {"kind": "concept", "name": "GHOST9", "prefix": ""},
                "predicate": {"kind": "concept", "name": "accept_cmd",
                              "prefix": "Fun"},
                "object": {"kind": "concept", "name": "start-up",
                           "prefix": "CmdType"},
            }}]
        )
        assert "GHOST9" in hints["actors"]
        assert any(
            harvested(novel, query) != distance(novel, query)
            for query in BASE_TRIPLES
        )

    def test_derive_distance_path_api_still_works(self, checkpointed):
        snapshot, wal = checkpointed
        derived = derive_distance(snapshot, wal)
        sample = derived(BASE_TRIPLES[0], BASE_TRIPLES[1])
        assert 0.0 <= sample <= 1.0
