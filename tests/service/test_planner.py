"""Tests for query specs, planning and in-batch deduplication."""

import pytest

from repro.errors import QueryError
from repro.rdf import TriplePattern
from repro.service import QueryKind, QueryPlanner, QuerySpec


class TestQuerySpec:
    def test_knn_constructor(self, small_corpus):
        triple = small_corpus.all_triples()[0]
        spec = QuerySpec.k_nearest(triple, 5)
        assert spec.kind is QueryKind.KNN
        assert spec.k == 5

    def test_range_constructor(self, small_corpus):
        triple = small_corpus.all_triples()[0]
        spec = QuerySpec.range_query(triple, 0.25)
        assert spec.kind is QueryKind.RANGE
        assert spec.radius == 0.25

    def test_invalid_k_rejected(self, small_corpus):
        triple = small_corpus.all_triples()[0]
        with pytest.raises(QueryError):
            QuerySpec.k_nearest(triple, 0)

    def test_negative_radius_rejected(self, small_corpus):
        triple = small_corpus.all_triples()[0]
        with pytest.raises(QueryError):
            QuerySpec.range_query(triple, -0.1)

    def test_non_positive_deadline_rejected(self, small_corpus):
        triple = small_corpus.all_triples()[0]
        with pytest.raises(QueryError):
            QuerySpec.k_nearest(triple, 3, deadline=0.0)


class TestQueryPlanner:
    def test_plan_embeds_the_triple_once(self, built_requirements_index):
        index, _, corpus = built_requirements_index
        planner = QueryPlanner(index)
        triple = corpus.all_triples()[0]
        planned = planner.plan(QuerySpec.k_nearest(triple, 3))
        assert planned.point.coordinates == tuple(index.embed_query(triple).coordinates)
        assert planned.cache_key[0] == "knn"

    def test_identical_specs_share_a_cache_key(self, built_requirements_index):
        index, _, corpus = built_requirements_index
        planner = QueryPlanner(index)
        triple = corpus.all_triples()[0]
        a = planner.plan(QuerySpec.k_nearest(triple, 3))
        b = planner.plan(QuerySpec.k_nearest(triple, 3))
        assert a.cache_key == b.cache_key

    def test_parameters_differentiate_cache_keys(self, built_requirements_index):
        index, _, corpus = built_requirements_index
        planner = QueryPlanner(index)
        triple = corpus.all_triples()[0]
        knn3 = planner.plan(QuerySpec.k_nearest(triple, 3))
        knn5 = planner.plan(QuerySpec.k_nearest(triple, 5))
        rng = planner.plan(QuerySpec.range_query(triple, 0.3))
        assert len({knn3.cache_key, knn5.cache_key, rng.cache_key}) == 3

    def test_pattern_is_part_of_the_cache_key(self, built_requirements_index):
        index, _, corpus = built_requirements_index
        planner = QueryPlanner(index)
        triple = corpus.all_triples()[0]
        bare = planner.plan(QuerySpec.k_nearest(triple, 3))
        pattern = TriplePattern(subject=triple.subject)
        filtered = planner.plan(QuerySpec.k_nearest(triple, 3, pattern=pattern))
        assert bare.cache_key != filtered.cache_key

    def test_deadline_is_not_part_of_the_cache_key(self, built_requirements_index):
        index, _, corpus = built_requirements_index
        planner = QueryPlanner(index)
        triple = corpus.all_triples()[0]
        fast = planner.plan(QuerySpec.k_nearest(triple, 3, deadline=0.1))
        slow = planner.plan(QuerySpec.k_nearest(triple, 3, deadline=30.0))
        assert fast.cache_key == slow.cache_key

    def test_plan_batch_deduplicates(self, built_requirements_index):
        index, _, corpus = built_requirements_index
        planner = QueryPlanner(index)
        triples = corpus.all_triples()
        specs = [
            QuerySpec.k_nearest(triples[0], 3),
            QuerySpec.k_nearest(triples[1], 3),
            QuerySpec.k_nearest(triples[0], 3),  # duplicate of the first
            QuerySpec.range_query(triples[0], 0.2),
        ]
        unique, assignment = planner.plan_batch(specs)
        assert len(unique) == 3
        assert assignment == [0, 1, 0, 2]

    def test_unbuilt_index_is_rejected(self, requirement_distance):
        from repro.core import SemTreeIndex
        from repro.errors import IndexError_
        from repro.rdf import Triple

        planner = QueryPlanner(SemTreeIndex(requirement_distance))
        with pytest.raises(IndexError_):
            planner.plan(QuerySpec.k_nearest(Triple.of("A", "Fun:accept_cmd", "CmdType:x"), 1))
