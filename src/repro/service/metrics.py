"""Serving metrics: QPS, latency percentiles, cache hit rate, partition load.

The module follows the style of :mod:`repro.evaluation.timing`: plain
counters plus immutable snapshots, no external dependencies.  The engine
records one observation per query result; :meth:`ServiceMetrics.snapshot`
turns the accumulated state into the flat dictionary the benchmarks print.

Latency samples are kept in a bounded deque (most recent ``max_samples``)
so a long-running service's metrics stay O(1) in memory; percentiles are
therefore over the recent window, which is what a serving dashboard wants
anyway.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Callable, Dict, Iterable, Optional

from repro.errors import EvaluationError

__all__ = ["IngestMetrics", "ServiceMetrics", "percentile"]


def percentile(samples: Iterable[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample set (``fraction`` in [0, 1]).

    Raises
    ------
    EvaluationError
        If the sample set is empty or the fraction is out of range.
    """
    if not 0.0 <= fraction <= 1.0:
        raise EvaluationError(f"percentile fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    if not ordered:
        raise EvaluationError("cannot take a percentile of an empty sample set")
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class ServiceMetrics:
    """Thread-safe accumulator of per-query serving observations."""

    def __init__(self, *, max_samples: int = 10_000,
                 clock: Callable[[], float] = time.monotonic):
        if max_samples < 1:
            raise EvaluationError("max_samples must be >= 1")
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._latencies: deque = deque(maxlen=max_samples)
        self._queries = 0
        self._executed = 0
        self._served_from_cache = 0
        self._timeouts = 0
        self._errors = 0
        self._by_kind: Counter = Counter()
        self._partition_loads: Counter = Counter()

    # -- recording ----------------------------------------------------------------------

    def record(self, kind: str, latency_seconds: float, *, cached: bool,
               timed_out: bool = False, failed: bool = False,
               visited_partitions: Iterable[str] = ()) -> None:
        """Record one served query.

        ``visited_partitions`` are the identities of the partitions the tree
        search entered (empty for cache hits), feeding the per-partition
        load counters.

        Only successfully *executed* queries contribute a latency sample:
        cache hits would flood the percentiles with ~0 values and mask the
        tree-search distribution, and a timed-out query has no completion
        time (counting it as 0 would make percentiles improve as timeouts
        increase).  Hits and timeouts are still counted in their own
        counters.
        """
        now = self._clock()
        with self._lock:
            if self._started_at is None:
                self._started_at = now
            self._queries += 1
            self._by_kind[kind] += 1
            if cached:
                self._served_from_cache += 1
            else:
                self._executed += 1
            if timed_out:
                self._timeouts += 1
            if failed:
                self._errors += 1
            if not cached and not timed_out and not failed:
                self._latencies.append(latency_seconds)
            for partition_id in visited_partitions:
                self._partition_loads[partition_id] += 1

    # -- readings -----------------------------------------------------------------------

    @property
    def queries(self) -> int:
        """Total queries recorded."""
        with self._lock:
            return self._queries

    def partition_loads(self) -> Dict[str, int]:
        """Queries served per partition (how often each partition was searched)."""
        with self._lock:
            return dict(self._partition_loads)

    def snapshot(self) -> Dict[str, object]:
        """A flat dictionary of every serving metric (for reports and tests)."""
        with self._lock:
            elapsed = (self._clock() - self._started_at) if self._started_at is not None else 0.0
            latencies = list(self._latencies)
            queries = self._queries
            snapshot: Dict[str, object] = {
                "queries": queries,
                "executed": self._executed,
                "served_from_cache": self._served_from_cache,
                "timeouts": self._timeouts,
                "errors": self._errors,
                "wall_seconds": elapsed,
                "qps": queries / elapsed if elapsed > 0 else 0.0,
                "queries_by_kind": dict(self._by_kind),
                "partition_loads": dict(self._partition_loads),
            }
        if latencies:
            snapshot["latency_ms"] = {
                "mean": sum(latencies) / len(latencies) * 1000.0,
                "p50": percentile(latencies, 0.50) * 1000.0,
                "p90": percentile(latencies, 0.90) * 1000.0,
                "p99": percentile(latencies, 0.99) * 1000.0,
                "max": max(latencies) * 1000.0,
            }
        return snapshot

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ServiceMetrics(queries={self._queries}, executed={self._executed}, "
                f"served_from_cache={self._served_from_cache})"
            )


class IngestMetrics:
    """Thread-safe accumulator for the live-ingestion write path.

    The read path keeps its own :class:`ServiceMetrics`; this class covers
    the other half of a mixed workload: insert throughput (ingest QPS), WAL
    replays at recovery, and compactions (count, points folded, latency).
    Delta size is a gauge owned by the index itself —
    :meth:`repro.ingest.ingesting.IngestingIndex.statistics` merges it into
    this snapshot.
    """

    def __init__(self, *, max_samples: int = 1_000,
                 clock: Callable[[], float] = time.monotonic):
        if max_samples < 1:
            raise EvaluationError("max_samples must be >= 1")
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._inserts = 0
        self._replayed = 0
        self._compactions = 0
        self._points_compacted = 0
        self._compaction_seconds: deque = deque(maxlen=max_samples)

    def record_insert(self, count: int = 1) -> None:
        """Record ``count`` accepted inserts."""
        now = self._clock()
        with self._lock:
            if self._started_at is None:
                self._started_at = now
            self._inserts += count

    def record_replay(self, count: int) -> None:
        """Record ``count`` WAL records replayed at recovery."""
        with self._lock:
            self._replayed += count

    def record_compaction(self, points: int, seconds: float) -> None:
        """Record one delta-into-tree fold of ``points`` points."""
        with self._lock:
            self._compactions += 1
            self._points_compacted += points
            self._compaction_seconds.append(seconds)

    @property
    def inserts(self) -> int:
        """Total inserts recorded."""
        with self._lock:
            return self._inserts

    @property
    def compactions(self) -> int:
        """Total compactions recorded."""
        with self._lock:
            return self._compactions

    def snapshot(self) -> Dict[str, object]:
        """A flat dictionary of every ingest metric (for reports and tests)."""
        with self._lock:
            elapsed = (self._clock() - self._started_at) if self._started_at is not None else 0.0
            samples = list(self._compaction_seconds)
            snapshot: Dict[str, object] = {
                "inserts": self._inserts,
                "replayed": self._replayed,
                "ingest_wall_seconds": elapsed,
                "ingest_qps": self._inserts / elapsed if elapsed > 0 else 0.0,
                "compactions": self._compactions,
                "points_compacted": self._points_compacted,
            }
        if samples:
            snapshot["compaction_ms"] = {
                "mean": sum(samples) / len(samples) * 1000.0,
                "max": max(samples) * 1000.0,
                "last": samples[-1] * 1000.0,
            }
        return snapshot

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"IngestMetrics(inserts={self._inserts}, "
                f"compactions={self._compactions}, replayed={self._replayed})"
            )
