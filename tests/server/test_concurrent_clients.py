"""Threaded stress: concurrent HTTP clients mixing reads and writes.

N client threads hammer one live server with interleaved k-NN, range and
insert requests.  Liveness and isolation are asserted while the storm runs
(every response is well-formed, every insert is acknowledged durably); the
*answers* are verified after the dust settles, against a sequential oracle
rebuilt from scratch — both on the still-running server and on a second
server recovered from the shutdown checkpoint + WAL.
"""

from __future__ import annotations

import threading

from server_corpus import BASE_TRIPLES, QUERY_TRIPLES, STREAM_TRIPLES
from repro.core import SemTreeConfig, SemTreeIndex
from repro.rdf import Triple
from repro.server import recover_index
from repro.workloads import ServerClient

CLIENT_THREADS = 4
OPS_PER_THREAD = 12


def distance_profile(matches):
    """The sorted distance multiset of a result (wire payloads or matches).

    The stream pool makes exact distance ties common (distinct signal
    triples can embed onto the same point), and a top-k cut between tied
    candidates may keep either one — both answers are correct.  The profile
    compares what is invariant: the distances.
    """
    return sorted(
        round(match["distance"] if isinstance(match, dict) else match.distance, 9)
        for match in matches
    )


def stream_triple(thread_index: int, position: int) -> Triple:
    """A distinct triple from the shared stream pool per (thread, op) pair."""
    return STREAM_TRIPLES[thread_index * OPS_PER_THREAD + position]


class TestConcurrentClients:
    def test_mixed_storm_then_oracle(self, make_server, tmp_path, distance):
        server, _ = make_server(compaction_threshold=8)
        url = server.url
        inserted_lock = threading.Lock()
        inserted: list[Triple] = []
        failures: list[str] = []

        def worker(thread_index: int) -> None:
            client = ServerClient(url)
            for position in range(OPS_PER_THREAD):
                try:
                    op = position % 3
                    if op == 0:
                        triple = stream_triple(thread_index, position)
                        response = client.insert(triple, document_id=f"t{thread_index}")
                        if response["seq"] < 1:
                            failures.append(f"bad seq: {response}")
                        with inserted_lock:
                            inserted.append(triple)
                    elif op == 1:
                        query = QUERY_TRIPLES[position % len(QUERY_TRIPLES)]
                        result = client.knn(query, 3)
                        if result["error"] is not None or len(result["matches"]) != 3:
                            failures.append(f"bad knn result: {result}")
                    else:
                        query = QUERY_TRIPLES[position % len(QUERY_TRIPLES)]
                        result = client.range(query, 0.35)
                        if result["error"] is not None:
                            failures.append(f"bad range result: {result}")
                except Exception as error:  # noqa: BLE001 - collected for the report
                    failures.append(f"thread {thread_index}: {error!r}")

        threads = [
            threading.Thread(target=worker, args=(index,), name=f"client-{index}")
            for index in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures, failures
        # one insert per position % 3 == 0, i.e. ceil(OPS_PER_THREAD / 3)
        assert len(inserted) == CLIENT_THREADS * ((OPS_PER_THREAD + 2) // 3)

        # -- the sequential oracle: a from-scratch rebuild over base + stream -----------
        oracle = SemTreeIndex(distance, SemTreeConfig(
            dimensions=3, bucket_size=4, max_partitions=2, partition_capacity=8,
        ))
        oracle.add_triples(BASE_TRIPLES)
        oracle.build()
        oracle.insert_triples(inserted)

        # 1. the live server, post-storm, answers exactly like the oracle
        client = ServerClient(url)
        probes = QUERY_TRIPLES + inserted[:: max(1, len(inserted) // 6)]
        for triple in probes:
            assert distance_profile(client.knn(triple, 4)["matches"]) == \
                distance_profile(oracle.k_nearest(triple, 4)), \
                f"live mismatch for {triple}"

        # 2. shutdown + recovery preserves every concurrent write.  Recovery
        # derives its distance from the *stored* corpus, so the probes here
        # stick to stored triples — a query term that was never stored would
        # embed through the string-distance fallback on the recovered side
        # (see repro.server.bootstrap) and is not a recovery invariant.
        wal_seq = server.close()
        assert wal_seq == len(inserted)
        recovered = recover_index(tmp_path / "snapshot.json", tmp_path / "wal.jsonl")
        assert len(recovered) == len(BASE_TRIPLES) + len(inserted)
        for triple in BASE_TRIPLES + inserted[:: max(1, len(inserted) // 6)]:
            assert distance_profile(recovered.k_nearest(triple, 4)) == \
                distance_profile(oracle.k_nearest(triple, 4)), \
                f"recovery mismatch for {triple}"
