"""Messages exchanged between partitions.

The paper's SemTree navigates across partitions "by a proper communication
protocol (in our implementation based on MPJ libraries)": when the child of
a routing node lives on another partition, a message carrying the operation
(insert this point / continue this k-search / continue this range search)
is sent to the partition hosting that child.  The reproduction models those
messages explicitly so they can be counted and charged to the simulated
network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

__all__ = ["MessageKind", "Message"]

_message_counter = itertools.count()


class MessageKind(Enum):
    """The operation carried by an inter-partition message."""

    INSERT = "insert"
    KNN_DESCEND = "knn_descend"
    KNN_RESULT = "knn_result"
    RANGE_DESCEND = "range_descend"
    RANGE_RESULT = "range_result"
    SCAN_KNN = "scan_knn"
    SCAN_RANGE = "scan_range"
    SCAN_RESULT = "scan_result"
    BUILD_PARTITION = "build_partition"
    MOVE_LEAF = "move_leaf"
    ACK = "ack"


@dataclass(frozen=True, slots=True)
class Message:
    """One message on the simulated network.

    Attributes
    ----------
    kind:
        What the receiving partition should do.
    source / target:
        Partition identifiers.
    payload:
        Operation-specific data (the point being inserted, the query state, ...).
    message_id:
        Monotonic identifier, useful in tests and traces.
    """

    kind: MessageKind
    source: str
    target: str
    payload: Dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_counter))

    def reply(self, kind: MessageKind, payload: Optional[Dict[str, Any]] = None) -> "Message":
        """Build a reply message flowing back from target to source."""
        return Message(kind=kind, source=self.target, target=self.source,
                       payload=payload or {})

    def __repr__(self) -> str:
        return (
            f"Message(id={self.message_id}, kind={self.kind.value}, "
            f"{self.source} -> {self.target})"
        )
