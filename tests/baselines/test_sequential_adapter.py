"""Tests for the sequential single-partition baseline adapter."""

import pytest

from repro.baselines import LinearScanIndex, SequentialKDTreeBaseline
from repro.core import LabeledPoint, SemTreeConfig, SplitStrategy


@pytest.fixture
def config():
    return SemTreeConfig(dimensions=2, bucket_size=8)


class TestConstructors:
    def test_balanced_builder(self, uniform_points_2d, config):
        baseline = SequentialKDTreeBaseline.balanced(uniform_points_2d, config)
        assert len(baseline) == len(uniform_points_2d)
        assert baseline.tree.depth() <= 10

    def test_unbalanced_chain_builder(self, uniform_points_2d, config):
        baseline = SequentialKDTreeBaseline.unbalanced_chain(uniform_points_2d[:80], config)
        assert len(baseline) == 80
        assert baseline.tree.depth() == 79
        assert baseline.config.split_strategy is SplitStrategy.FIRST_POINT

    def test_dynamic_insertion_builder(self, uniform_points_2d, config):
        baseline = SequentialKDTreeBaseline.by_dynamic_insertion(uniform_points_2d[:50], config)
        assert len(baseline) == 50

    def test_incremental_insert(self, config):
        baseline = SequentialKDTreeBaseline(config)
        baseline.insert(LabeledPoint.of([0.1, 0.2]))
        baseline.insert_all([LabeledPoint.of([0.3, 0.4])])
        assert len(baseline) == 2


class TestQueries:
    def test_knn_matches_linear_scan(self, uniform_points_2d, config):
        baseline = SequentialKDTreeBaseline.balanced(uniform_points_2d, config)
        scan = LinearScanIndex(uniform_points_2d)
        query = LabeledPoint.of([0.3, 0.7])
        assert ([n.distance for n in baseline.k_nearest(query, 5)]
                == pytest.approx([n.distance for n in scan.k_nearest(query, 5)]))

    def test_range_matches_linear_scan(self, uniform_points_2d, config):
        baseline = SequentialKDTreeBaseline.balanced(uniform_points_2d, config)
        scan = LinearScanIndex(uniform_points_2d)
        query = LabeledPoint.of([0.3, 0.7])
        assert ({n.point for n in baseline.range_query(query, 0.15)}
                == {n.point for n in scan.range_query(query, 0.15)})

    def test_chain_and_balanced_agree_on_results(self, uniform_points_2d, config):
        subset = uniform_points_2d[:100]
        balanced = SequentialKDTreeBaseline.balanced(subset, config)
        chain = SequentialKDTreeBaseline.unbalanced_chain(subset, config)
        query = LabeledPoint.of([0.6, 0.4])
        assert ([n.distance for n in balanced.k_nearest(query, 3)]
                == pytest.approx([n.distance for n in chain.k_nearest(query, 3)]))
