"""Launching shard (and coordinator) subprocesses from a checkpoint snapshot.

The deployment unit of the sharded story is a plain ``python -m
repro.server --shard Pk`` process per partition plus one ``python -m
repro.coordinator`` front end.  This module wraps the subprocess plumbing —
spawn, wait for the ``listening on <url>`` boot line, terminate — so the
example (``examples/run_sharded_cluster.py``), the throughput benchmark and
the oracle tests all drive *real* processes through one code path.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.coordinator.topology import REPLICA_SEPARATOR
from repro.errors import ShardError

__all__ = ["ManagedProcess", "launch_shard", "launch_shards", "launch_coordinator",
           "launch_replica_fleet", "shutdown_processes"]

#: Marker line both server CLIs print once their socket is accepting.
_READY_PREFIX = "listening on "


@dataclass
class ManagedProcess:
    """One launched server process and the URL it bound.

    ``boot_lines`` keeps everything the process printed before the ready
    marker (partition info, recovery summary) for diagnostics.
    """

    process: subprocess.Popen
    url: str
    role: str
    partition_id: Optional[str] = None
    boot_lines: List[str] = field(default_factory=list)

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self, *, timeout: float = 15.0) -> int:
        """SIGTERM (graceful: the servers drain and close), then wait.

        A process that ignores SIGTERM — wedged in a handler, blocked on a
        dead socket — is SIGKILLed after ``timeout`` seconds, so teardown
        always reclaims the process instead of hanging a chaos run forever.
        """
        if self.alive:
            self.process.terminate()
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
        return self.process.returncode

    def kill(self) -> None:
        """SIGKILL — the shard-failure tests use this to simulate a crash."""
        if self.alive:
            self.process.kill()
            self.process.wait()


def _spawn(arguments: Sequence[str], *, role: str,
           partition_id: Optional[str] = None,
           startup_timeout: float = 60.0,
           python: Optional[str] = None,
           env: Optional[Dict[str, str]] = None) -> ManagedProcess:
    command = [python or sys.executable, *arguments]
    # env=None inherits the parent environment (how $REPRO_FAULTS set by a
    # chaos run reaches every child); an explicit mapping replaces it.
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, bufsize=1, env=env,
    )
    boot_lines: List[str] = []
    deadline = time.monotonic() + startup_timeout
    assert process.stdout is not None
    while True:
        if time.monotonic() > deadline:
            process.kill()
            raise ShardError(
                f"{role} process did not print {_READY_PREFIX!r} within "
                f"{startup_timeout}s; output so far: {boot_lines}"
            )
        line = process.stdout.readline()
        if not line:
            process.wait()
            raise ShardError(
                f"{role} process exited with code {process.returncode} before "
                f"binding; output: {boot_lines}"
            )
        line = line.strip()
        boot_lines.append(line)
        if line.startswith(_READY_PREFIX):
            url = line[len(_READY_PREFIX):].strip()
            return ManagedProcess(process=process, url=url, role=role,
                                  partition_id=partition_id, boot_lines=boot_lines)


def launch_shard(snapshot: str | pathlib.Path, partition_id: str, *,
                 host: str = "127.0.0.1", port: int = 0,
                 startup_timeout: float = 60.0,
                 python: Optional[str] = None,
                 env: Optional[Dict[str, str]] = None) -> ManagedProcess:
    """Launch ``python -m repro.server --shard <partition_id>`` and wait for it."""
    return _spawn(
        ["-m", "repro.server", "--snapshot", str(snapshot), "--shard", partition_id,
         "--host", host, "--port", str(port), "--quiet"],
        role=f"shard {partition_id}", partition_id=partition_id,
        startup_timeout=startup_timeout, python=python, env=env,
    )


def launch_shards(snapshot: str | pathlib.Path, partition_ids: Sequence[str], *,
                  host: str = "127.0.0.1",
                  startup_timeout: float = 60.0,
                  python: Optional[str] = None,
                  env: Optional[Dict[str, str]] = None) -> List[ManagedProcess]:
    """Launch one shard process per partition (ephemeral ports), in order.

    On any boot failure the already-launched shards are terminated before
    the error propagates, so a failed launch never leaks processes.
    """
    launched: List[ManagedProcess] = []
    try:
        for partition_id in partition_ids:
            launched.append(launch_shard(
                snapshot, partition_id, host=host,
                startup_timeout=startup_timeout, python=python, env=env,
            ))
    except Exception:
        shutdown_processes(launched)
        raise
    return launched


def launch_replica_fleet(snapshot: str | pathlib.Path,
                         partition_ids: Sequence[str], *,
                         replicas: int = 2,
                         host: str = "127.0.0.1",
                         startup_timeout: float = 60.0,
                         python: Optional[str] = None,
                         env: Optional[Dict[str, str]] = None,
                         ) -> Dict[str, List[ManagedProcess]]:
    """Launch ``replicas`` shard processes per partition, for failover runs.

    Every replica of a partition serves the identical subtree from the
    same snapshot — which is exactly why failover keeps answers exact.
    Returns ``{partition_id: [replica processes]}``; any boot failure
    tears down everything already launched.
    """
    if replicas < 1:
        raise ShardError(f"replicas must be >= 1, got {replicas}")
    fleet: Dict[str, List[ManagedProcess]] = {pid: [] for pid in partition_ids}
    try:
        for partition_id in partition_ids:
            for _ in range(replicas):
                fleet[partition_id].append(launch_shard(
                    snapshot, partition_id, host=host,
                    startup_timeout=startup_timeout, python=python, env=env,
                ))
    except Exception:
        shutdown_processes([m for group in fleet.values() for m in group])
        raise
    return fleet


def _shard_argument(shards: Dict[str, Union[str, Sequence[str]]]) -> str:
    """The ``--shards`` inline form, replica groups joined with ``|``."""
    entries = []
    for partition_id, urls in sorted(shards.items()):
        if isinstance(urls, str):
            urls = [urls]
        entries.append(f"{partition_id}={REPLICA_SEPARATOR.join(urls)}")
    return ",".join(entries)


def launch_coordinator(snapshot: str | pathlib.Path,
                       shards: Dict[str, Union[str, Sequence[str]]], *,
                       host: str = "127.0.0.1", port: int = 0,
                       workers: int = 4, scatter_workers: int = 8,
                       startup_timeout: float = 120.0,
                       python: Optional[str] = None,
                       env: Optional[Dict[str, str]] = None,
                       extra_args: Sequence[str] = ()) -> ManagedProcess:
    """Launch ``python -m repro.coordinator`` over already-running shards.

    ``shards`` maps each partition to its URL — or to a *sequence* of
    replica URLs, rendered in the ``P0=http://a|http://b`` inline form.
    ``extra_args`` appends raw CLI flags (failover tuning, admission
    control, ``--faults``) without this wrapper growing a mirror of the
    whole coordinator argument surface.
    """
    return _spawn(
        ["-m", "repro.coordinator", "--snapshot", str(snapshot),
         "--shards", _shard_argument(shards), "--host", host, "--port", str(port),
         "--workers", str(workers), "--scatter-workers", str(scatter_workers),
         "--quiet", *extra_args],
        role="coordinator", startup_timeout=startup_timeout, python=python, env=env,
    )


def shutdown_processes(processes: Sequence[ManagedProcess]) -> None:
    """Terminate a fleet, coordinator-first-agnostic, ignoring the dead."""
    for managed in processes:
        try:
            managed.terminate()
        except Exception:  # pragma: no cover - best-effort teardown
            managed.kill()
