"""Shared fixtures for the SemTree reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import LabeledPoint, SemTreeConfig, SemTreeIndex
from repro.requirements import (
    GeneratorConfig,
    RequirementsGenerator,
    build_requirement_distance,
    build_requirement_vocabularies,
)
from repro.semantics import Taxonomy, TripleDistance, Vocabulary


@pytest.fixture
def small_taxonomy() -> Taxonomy:
    """A small hand-built taxonomy used by the similarity tests.

    Structure (root is implicit)::

        ⊤ ── entity ── vehicle ── car ── sports_car
             │            │        └── truck
             │            └── bicycle
             └── animal ── dog
                        └── cat
    """
    taxonomy = Taxonomy()
    taxonomy.add_concept("entity")
    taxonomy.add_concept("vehicle", "entity")
    taxonomy.add_concept("car", "vehicle")
    taxonomy.add_concept("sports_car", "car")
    taxonomy.add_concept("truck", "vehicle")
    taxonomy.add_concept("bicycle", "entity")
    taxonomy.add_concept("animal", "entity")
    taxonomy.add_concept("dog", "animal")
    taxonomy.add_concept("cat", "animal")
    return taxonomy


@pytest.fixture
def function_vocabulary() -> Vocabulary:
    """The requirements function vocabulary (taxonomy + antinomy pairs)."""
    return build_requirement_vocabularies()["Fun"]


@pytest.fixture
def requirement_vocabularies():
    """All requirements vocabularies keyed by prefix."""
    return build_requirement_vocabularies()


@pytest.fixture
def requirement_distance(requirement_vocabularies) -> TripleDistance:
    """The default requirements triple distance (α=0.4, β=0.2, γ=0.4)."""
    return build_requirement_distance(requirement_vocabularies)


@pytest.fixture
def uniform_points_2d():
    """300 reproducible uniform 2-D points."""
    rng = random.Random(42)
    return [
        LabeledPoint.of([rng.random(), rng.random()], label=index)
        for index in range(300)
    ]


@pytest.fixture
def small_corpus():
    """A small synthetic requirements corpus (deterministic)."""
    config = GeneratorConfig(
        documents=6, requirements_per_document=5, sentences_per_requirement=3,
        actors=12, inconsistency_rate=0.3, restatement_rate=0.2, seed=13,
    )
    return RequirementsGenerator(config).generate()


@pytest.fixture
def built_requirements_index(small_corpus):
    """A SemTree index built over the small corpus (shared by retrieval tests)."""
    vocabularies = build_requirement_vocabularies(
        small_corpus.actor_names, small_corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=3, partition_capacity=64,
    ))
    for document in small_corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    return index, vocabularies, small_corpus
