"""Shard server mode: scan endpoints, schemas, snapshot boot, staleness guard."""

from __future__ import annotations

import pytest

from server_corpus import BASE_TRIPLES
from repro.errors import IndexError_, PartitionError, ServerError
from repro.ingest import IngestingIndex
from repro.server import create_server, ShardApp, load_shard
from repro.server.__main__ import build_server
from repro.workloads import ServerClient


@pytest.fixture
def checkpoint(make_base, tmp_path):
    """A checkpointed multi-partition index on disk; returns (index, snapshot)."""
    index = make_base()
    live = IngestingIndex(index, tmp_path / "wal.jsonl")
    snapshot = tmp_path / "snapshot.json"
    live.checkpoint(snapshot)
    live.close()
    return index, snapshot


@pytest.fixture
def shard(make_base):
    """An in-process shard server over one partition of a built index."""
    index = make_base()
    partition_id = next(p.partition_id for p in index.tree.partitions
                        if p.point_count > 0)
    server = create_server(ShardApp.from_index(index, partition_id)).serve_background()
    yield index, partition_id, server, ServerClient(server.url)
    if not server.app.closed:
        server.close()


class TestScanEndpoints:
    def test_knn_scan_equals_local_partition_scan(self, shard):
        index, partition_id, _, client = shard
        point = index.embed_query(BASE_TRIPLES[0])
        wire = client.shard_knn(point.coordinates, 3)
        state = index.tree.scan_partition_knn(partition_id, point, 3)
        assert wire["partition_id"] == partition_id
        assert [m["distance"] for m in wire["matches"]] == \
               [n.distance for n in state.results.neighbours()]
        assert wire["points_examined"] == state.points_examined

    def test_range_scan_equals_local_partition_scan(self, shard):
        index, partition_id, _, client = shard
        point = index.embed_query(BASE_TRIPLES[1])
        wire = client.shard_range(point.coordinates, 0.3)
        state = index.tree.scan_partition_range(partition_id, point, 0.3)
        assert [m["distance"] for m in wire["matches"]] == \
               [n.distance for n in state.sorted_results()]

    def test_matches_carry_lossless_triples_and_coordinates(self, shard):
        index, _, _, client = shard
        point = index.embed_query(BASE_TRIPLES[0])
        wire = client.shard_knn(point.coordinates, 2)
        for match in wire["matches"]:
            assert {"triple", "text", "coordinates", "distance"} <= set(match)
            assert len(match["coordinates"]) == index.config.dimensions

    def test_full_query_api_is_absent(self, shard):
        _, _, _, client = shard
        with pytest.raises(ServerError) as excinfo:
            client.knn(BASE_TRIPLES[0], 3)
        assert excinfo.value.status == 404

    def test_scans_accumulate_cost_counters(self, shard):
        index, partition_id, _, client = shard
        point = index.embed_query(BASE_TRIPLES[0])
        wire = client.shard_knn(point.coordinates, 3)
        assert wire["cost"]["distance_computations"] > 0
        metrics = client.metrics()
        cost = metrics["shard"]["cost"]
        assert cost["distance_computations"] >= \
            wire["cost"]["distance_computations"]
        exposition = client.metrics_prometheus()
        assert 'repro_query_cost_total{counter="distance_computations"}' \
            in exposition

    def test_profile_and_history_endpoints(self, shard):
        _, _, server, client = shard
        profile = client.request("GET", "/v1/debug/profile?seconds=0.05")
        assert profile["source"] == "on_demand"
        assert profile["samples"] > 0
        point_history = client.request("GET", "/v1/history")
        assert set(point_history) == {"interval_seconds", "capacity", "entries"}
        server.app.history.tick()
        assert client.request("GET", "/v1/history")["entries"]

    def test_health_and_info_and_metrics(self, shard):
        index, partition_id, _, client = shard
        health = client.health()
        assert health["role"] == "shard"
        assert health["partition_id"] == partition_id
        info = client.shard_info()
        assert info["partition_id"] == partition_id
        assert set(info["snapshot_partitions"]) == {
            p.partition_id for p in index.tree.partitions
        }
        point = index.embed_query(BASE_TRIPLES[0])
        client.shard_knn(point.coordinates, 2)
        metrics = client.metrics()
        assert set(metrics) == {"shard"}
        assert metrics["shard"]["scans"] >= 1
        assert metrics["shard"]["points_examined"] >= 1


class TestScanSchemas:
    @pytest.mark.parametrize("body, field", [
        ({}, "body"),
        ({"coordinates": []}, "coordinates"),
        ({"coordinates": "nope"}, "coordinates"),
        ({"coordinates": [0.1, "x"]}, "coordinates[1]"),
        ({"coordinates": [0.1, 0.2, 0.3], "k": "three"}, "k"),
        ({"coordinates": [0.1, 0.2, 0.3], "k": 0}, "k"),
        ({"coordinates": [0.1, 0.2, 0.3], "radius": 1.0}, "body"),
    ])
    def test_knn_scan_validation(self, shard, body, field):
        _, _, _, client = shard
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/v1/shard/knn", body)
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "SchemaError"
        assert field in str(excinfo.value)

    def test_range_scan_requires_radius(self, shard):
        _, _, _, client = shard
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/v1/shard/range",
                           {"coordinates": [0.1, 0.2, 0.3]})
        assert excinfo.value.status == 400

    def test_dimension_mismatch_is_a_schema_error(self, shard):
        _, _, _, client = shard
        with pytest.raises(ServerError) as excinfo:
            client.shard_knn([0.1, 0.2], 3)  # the index is 3-dimensional
        assert excinfo.value.status == 400
        assert "coordinates" in str(excinfo.value)


class TestSnapshotBoot:
    def test_load_shard_restores_one_partition(self, checkpoint):
        index, snapshot = checkpoint
        for partition in index.tree.partitions:
            boot = load_shard(snapshot, partition.partition_id)
            assert boot.points == partition.point_count
            assert boot.config.dimensions == index.tree.config.dimensions

    def test_load_shard_unknown_partition(self, checkpoint):
        _, snapshot = checkpoint
        with pytest.raises(PartitionError, match="no partition 'P99'"):
            load_shard(snapshot, "P99")

    def test_snapshot_booted_shard_scans_identically(self, checkpoint):
        index, snapshot = checkpoint
        partition_id = next(p.partition_id for p in index.tree.partitions
                            if p.point_count > 0)
        server = create_server(ShardApp(load_shard(snapshot, partition_id)))
        with server:
            server.serve_background()
            client = ServerClient(server.url)
            point = index.embed_query(BASE_TRIPLES[0])
            wire = client.shard_knn(point.coordinates, 4)
            state = index.tree.scan_partition_knn(partition_id, point, 4)
            assert [m["distance"] for m in wire["matches"]] == \
                   [n.distance for n in state.results.neighbours()]

    def test_cli_refuses_a_stale_wal_tail(self, checkpoint, tmp_path):
        index, snapshot = checkpoint
        # Write inserts past the checkpoint: the shard view would be stale.
        live = IngestingIndex.recover(
            snapshot, tmp_path / "wal.jsonl", index.distance
        )
        from server_corpus import INSERT_TRIPLES
        live.insert(INSERT_TRIPLES[0])
        live.close()
        with pytest.raises(IndexError_, match="checkpoint the full server first"):
            build_server(["--snapshot", str(snapshot), "--wal",
                          str(tmp_path / "wal.jsonl"), "--shard", "P0"])

    def test_cli_requires_wal_unless_shard(self, checkpoint):
        _, snapshot = checkpoint
        with pytest.raises(SystemExit):
            build_server(["--snapshot", str(snapshot)])

    def test_cli_shard_honours_slow_query_ms(self, checkpoint):
        # Regression: shard mode used to drop --slow-query-ms on the floor.
        _, snapshot = checkpoint
        server, _ = build_server(["--snapshot", str(snapshot),
                                  "--shard", "P0", "--slow-query-ms", "5"])
        try:
            assert server.app.slow_queries.enabled
            assert server.app.slow_queries.threshold_ms == 5.0
        finally:
            server.close()

    def test_cli_shard_reads_slow_query_env(self, checkpoint, monkeypatch):
        _, snapshot = checkpoint
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "7.5")
        server, _ = build_server(["--snapshot", str(snapshot), "--shard", "P0"])
        try:
            assert server.app.slow_queries.threshold_ms == 7.5
        finally:
            server.close()

    def test_cli_shard_profile_flag_runs_a_continuous_profiler(self, checkpoint):
        _, snapshot = checkpoint
        server, _ = build_server(["--snapshot", str(snapshot),
                                  "--shard", "P0", "--profile"])
        try:
            assert server.app.profiler is not None
            assert server.app.profiler.running
        finally:
            server.close()
        assert not server.app.profiler.running  # close() stops sampling
