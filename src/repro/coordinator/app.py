"""The coordinator application: endpoint logic of the scatter-gather front end.

:class:`CoordinatorApp` is the sharded twin of
:class:`~repro.server.app.ServerApp`: the same query endpoints
(``POST /v1/knn`` / ``/v1/range``, single and batched, with the same wire
schemas), served by the same :class:`~repro.service.engine.QueryEngine` —
batching, result cache, deadlines and serving metrics work unchanged —
except the engine searches a :class:`~repro.coordinator.sharded.ShardedIndex`
that fans every tree scan out to shard servers.

The coordinator is read-only (``/v1/insert`` does not exist here): inserts
go to a full server, which checkpoints, and the shards re-boot from the new
snapshot.  See ``docs/cluster.md`` for the deployment story and the failure
semantics (a lost shard fails queries with a structured 502-style error
rather than returning silently-partial answers).
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Any, Callable, Dict, Optional

from repro import __version__
from repro.coordinator.sharded import ShardedIndex
from repro.errors import ServerClosingError, ShardError
from repro.io.serialization import json_ready
from repro.obs import export as obs_export
from repro.obs.history import MetricsHistory
from repro.obs.logging import SlowQueryLog
from repro.obs.profile import SamplingProfiler, profile_endpoint
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import span
from repro.server.app import _observe_slow_queries, _strictest_deadline
from repro.server.context import current_context
from repro.server.schemas import parse_query_request, render_results
from repro.service.admission import AdmissionController
from repro.service.engine import QueryEngine
from repro.service.planner import QueryKind

__all__ = ["CoordinatorApp"]

_EMPTY_LATENCY = {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}


class CoordinatorApp:
    """Endpoint logic over one :class:`ShardedIndex`.

    Parameters
    ----------
    index:
        The sharded index to serve.
    workers / cache_capacity / cache_ttl / cache_segmented / default_deadline:
        Passed through to :class:`QueryEngine` (worker threads here issue
        scatters; the scatter pool inside the sharded index bounds the
        total scan concurrency).
    max_queue_depth / client_rate / client_burst:
        Admission control, same semantics as :class:`ServerApp`'s (bound on
        outstanding scatters, per-``X-Client-Id`` rate limits); off by
        default.
    """

    def __init__(self, index: ShardedIndex, *, workers: int = 4,
                 cache_capacity: int = 1024, cache_ttl: float | None = None,
                 cache_segmented: bool = False,
                 default_deadline: float | None = None,
                 registry: MetricsRegistry | None = None,
                 slow_query_ms: float | None = None,
                 profiler: SamplingProfiler | None = None,
                 history_interval: float = 5.0,
                 max_queue_depth: int | None = None,
                 client_rate: float | None = None,
                 client_burst: int = 10):
        self.index = index
        self.engine = QueryEngine(
            index, workers=workers, cache_capacity=cache_capacity,
            cache_ttl=cache_ttl, cache_segmented=cache_segmented,
            default_deadline=default_deadline,
        )
        self.admission = AdmissionController(
            self.engine, max_queue_depth=max_queue_depth,
            client_rate=client_rate, client_burst=client_burst,
        )
        self._started = time.monotonic()
        self._requests: Counter = Counter()
        self._requests_lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._closed = False
        self.slow_query_log = SlowQueryLog(slow_query_ms)
        self.registry = registry or MetricsRegistry()
        self._bind_registry()
        self.profiler = profiler
        self.history = MetricsHistory(
            self.registry, interval=history_interval).start()

    def _bind_registry(self) -> None:
        """Same contract as :meth:`ServerApp._bind_registry`: the exposition
        reads the identical locked counters the JSON payload reports."""
        self.engine.metrics.bind_registry(self.registry)
        obs_export.bind_cache(self.registry, self.engine.cache)
        obs_export.bind_runtime(self.registry, role="coordinator",
                                version=__version__)
        obs_export.bind_http_requests(self.registry, self.request_counts)
        self.index.bind_registry(self.registry)
        self.admission.bind_registry(self.registry)
        self.registry.gauge(
            "repro_engine_workers", "Query-engine worker threads.",
        ).set(float(self.engine.workers))

    def request_counts(self) -> Dict[str, int]:
        """Requests received so far, by endpoint (a stable read surface)."""
        with self._requests_lock:
            return dict(self._requests)

    # -- routing (consumed by repro.server.http) ----------------------------------------

    def post_routes(self) -> Dict[str, Callable[[Any], Dict[str, Any]]]:
        return {
            "/v1/knn": self.handle_knn,
            "/v1/range": self.handle_range,
        }

    def get_routes(self) -> Dict[str, Callable[[], Dict[str, Any]]]:
        return {
            "/v1/metrics": self.metrics,
            "/v1/healthz": self.health,
            "/v1/topology": self.topology,
        }

    def get_param_routes(self) -> Dict[str, Callable[[Dict[str, str]], Any]]:
        return {
            "/v1/debug/profile": self.debug_profile,
            "/v1/history": self.history_payload,
        }

    def debug_profile(self, params: Dict[str, str]):
        """``GET /v1/debug/profile`` — sample the coordinator, render the profile."""
        self._count("debug_profile")
        return profile_endpoint(params, self.profiler)

    def history_payload(self, params: Dict[str, str]) -> Dict[str, Any]:
        """``GET /v1/history`` — the coordinator's metrics history ring buffer."""
        self._count("history")
        return self.history.payload()

    # -- bookkeeping --------------------------------------------------------------------

    def _count(self, endpoint: str) -> None:
        with self._requests_lock:
            self._requests[endpoint] += 1

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; endpoints refuse further work."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ServerClosingError("the coordinator is shutting down")

    # -- query endpoints ----------------------------------------------------------------

    def handle_knn(self, body: Any) -> Dict[str, Any]:
        """``POST /v1/knn`` — single or batched k-NN, scattered across shards."""
        return self._handle_query(QueryKind.KNN, body, "knn")

    def handle_range(self, body: Any) -> Dict[str, Any]:
        """``POST /v1/range`` — single or batched range, scattered across shards."""
        return self._handle_query(QueryKind.RANGE, body, "range")

    def _handle_query(self, kind: QueryKind, body: Any, endpoint: str) -> Dict[str, Any]:
        self._check_open()
        self._count(endpoint)
        with span("parse"):
            specs, batched = parse_query_request(body, kind)
        if self.admission.enabled:
            self.admission.admit(
                queries=len(specs),
                deadline=_strictest_deadline(specs, self.engine.default_deadline),
                client_id=current_context().client_id,
            )
        results = self.engine.execute_batch(specs)
        if self.slow_query_log.enabled:
            _observe_slow_queries(self.slow_query_log, results)
        if not batched and isinstance(results[0].exception, ShardError):
            # A lost shard on a single query is a backend failure, not a
            # result: surface it as HTTP 502 with the structured
            # failed/completed details, so status-checking clients and load
            # balancers never mistake it for a successful empty answer.
            # (Batched responses keep per-result error fields — one dead
            # shard must not discard the batch's healthy answers.)
            raise results[0].exception
        with span("render"):
            return render_results(results, batched)

    # -- observability endpoints --------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz`` — liveness plus the fan-out vitals.

        When the transport tracks replica circuit breakers, the payload
        carries per-partition replica health and the overall ``status``
        downgrades to ``"degraded"`` while any partition has no replica
        with a closed circuit — a load balancer can pull a coordinator
        whose answers would start failing (or going partial), without
        waiting for a query to hit the dead partition.
        """
        self._count("healthz")
        status = "closing" if self._closed else "ok"
        payload: Dict[str, Any] = {
            "status": status,
            "role": "coordinator",
            "points": len(self.index.base),
            "generation": self.index.generation,
            "shards": len(self.index.transport.partition_ids()),
            "uptime_seconds": time.monotonic() - self._started,
        }
        replica_health = getattr(self.index.transport, "replica_health", None)
        if callable(replica_health):
            health = replica_health()
            payload["partitions"] = health
            if status == "ok" and any(
                    entry.get("healthy", 0) == 0 for entry in health.values()):
                payload["status"] = "degraded"
        return json_ready(payload)

    def topology(self) -> Dict[str, Any]:
        """``GET /v1/topology`` — which replicas serve which partition."""
        self._check_open()
        self._count("topology")
        transport = self.index.transport
        topology = getattr(transport, "topology", None)
        shards = getattr(topology, "shards", None)
        tree = self.index.base.tree
        payload: Dict[str, Any] = {
            "partitions": list(transport.partition_ids()),
            "shards": dict(shards) if shards is not None else {},
            "points_per_partition": {
                partition.partition_id: partition.point_count
                for partition in tree.partitions
            },
        }
        replicas_of = getattr(topology, "replicas_of", None)
        if callable(replicas_of):
            payload["replicas_per_partition"] = {
                partition_id: len(replicas_of(partition_id))
                for partition_id in transport.partition_ids()
            }
        return json_ready(payload)

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics`` — serving + cache + scatter-gather payload.

        The ``serving`` and ``cache`` sections are schema-identical to a
        full server's (same engine); ``shards`` replaces the single-process
        ``ingest``/``index`` sections with fan-out counts and per-shard
        latency.
        """
        self._count("metrics")
        serving = self.engine.statistics()
        cache = serving.pop("cache")
        serving.setdefault("latency_ms", dict(_EMPTY_LATENCY))
        with self._requests_lock:
            requests = dict(self._requests)
        return json_ready({
            "serving": serving,
            "cache": cache,
            "shards": self.index.statistics(),
            "coordinator": {
                "uptime_seconds": time.monotonic() - self._started,
                "requests": requests,
                "points": len(self.index.base),
                "generation": self.index.generation,
                "admission": self.admission.snapshot(),
            },
        })

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus`` — text exposition v0.0.4.

        Rendered from the same registry whose callbacks read the counters
        behind :meth:`metrics`, so the two formats cannot disagree.
        """
        self._count("metrics")
        return self.registry.render()

    # -- lifecycle ----------------------------------------------------------------------

    def close(self, *, checkpoint: bool | None = None) -> Optional[int]:
        """Drain the engine, shut the scatter pool down.  Idempotent.

        ``checkpoint`` is accepted (and ignored — the coordinator owns no
        durable state) so the HTTP transport closes any app type uniformly.
        """
        with self._close_lock:
            if self._closed:
                return None
            self._closed = True
        self.history.stop()
        if self.profiler is not None:
            self.profiler.stop()
        self.engine.close(wait=True)
        self.index.close()
        return None

    def __enter__(self) -> "CoordinatorApp":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"CoordinatorApp(index={self.index!r}, closed={self._closed})"
