"""Quickstart: index a handful of triples and run semantic queries.

This example walks through the full SemTree pipeline on the paper's own
motivating example (Section II): on-board-software requirements expressed as
``(Actor, Function, Parameter)`` triples, indexed semantically, and queried
with an antinomic *target triple* to surface potential inconsistencies.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import SemTreeConfig, SemTreeIndex
from repro.rdf import Triple, parse_turtle
from repro.requirements import build_requirement_distance, build_requirement_vocabularies

#: The resources of the paper's Section III-A, in its Turtle-like format,
#: plus a few more statements so the index has something to rank.
REQUIREMENTS_DOCUMENT = """
# On-board software requirements (excerpt)
(OBSW001, Fun:acquire_in, InType:pre-launch-phase)
(OBSW001, Fun:accept_cmd, CmdType:start-up)
(OBSW001, Fun:send_msg, MsgType:power-amplifier)
(OBSW002, Fun:accept_cmd, CmdType:shutdown)
(OBSW002, Fun:send_msg, MsgType:heartbeat)
(OBSW003, Fun:block_cmd, CmdType:start-up)
(OBSW001, Fun:block_cmd, CmdType:start-up)
(OBSW004, Fun:transmit_tm, TmType:temperature-frame)
(OBSW004, Fun:withhold_tm, TmType:temperature-frame)
(OBSW005, Fun:enable_mode, ModeType:safe-mode)
"""


def main() -> None:
    # 1. Parse the document into triples (the paper's Turtle-like listing).
    triples = parse_turtle(REQUIREMENTS_DOCUMENT)
    print(f"Parsed {len(triples)} triples, e.g. {triples[0]}")

    # 2. Build the semantic distance: the requirements vocabularies provide
    #    the taxonomy used by Wu & Palmer and the antinomy relation.
    actor_names = sorted({t.subject.name for t in triples})  # type: ignore[union-attr]
    vocabularies = build_requirement_vocabularies(actor_names)
    distance = build_requirement_distance(vocabularies)

    # 3. Build the index: FastMap embeds the triples, the distributed
    #    KD-tree indexes the resulting points over 3 partitions.
    config = SemTreeConfig(dimensions=4, bucket_size=4, max_partitions=3,
                           partition_capacity=8)
    index = SemTreeIndex(distance, config)
    index.add_triples(triples, document_id="quickstart")
    index.build()
    print(f"Index built: {index.statistics()}")

    # 4. k-nearest query with the paper's example target triple: the command
    #    'start-up' being *blocked* by OBSW001 — any close match is a
    #    candidate inconsistency with the 'accept start-up' requirement.
    target = Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up")
    print(f"\nTop-3 semantic neighbours of the target triple {target}:")
    for match in index.k_nearest(target, 3):
        print(f"  distance={match.distance:.4f}  {match.triple}")

    # 5. Range query: everything within a small semantic radius.
    print("\nTriples within embedded distance 0.15 of the target:")
    for match in index.range_query(target, 0.15):
        print(f"  distance={match.distance:.4f}  {match.triple}")


if __name__ == "__main__":
    main()
