"""Tests for the concurrent query engine: batching, caching, deadlines."""

import time

import pytest

from repro.errors import QueryError
from repro.rdf import TriplePattern
from repro.service import QueryEngine, QuerySpec
from repro.workloads import mixed_query_specs


@pytest.fixture
def engine(built_requirements_index):
    index, _, corpus = built_requirements_index
    with QueryEngine(index, workers=4) as engine:
        yield engine, corpus


class TestSingleQueries:
    def test_knn_matches_the_index_facade(self, engine):
        engine_, corpus = engine
        triple = corpus.all_triples()[0]
        result = engine_.execute(QuerySpec.k_nearest(triple, 3))
        assert result.ok
        assert list(result.matches) == engine_.index.k_nearest(triple, 3)

    def test_range_matches_the_index_facade(self, engine):
        engine_, corpus = engine
        triple = corpus.all_triples()[0]
        result = engine_.execute(QuerySpec.range_query(triple, 0.2))
        assert result.ok
        assert list(result.matches) == engine_.index.range_query(triple, 0.2)

    def test_pattern_filter_restricts_results(self, engine):
        engine_, corpus = engine
        triple = corpus.all_triples()[0]
        pattern = TriplePattern(subject=triple.subject)
        result = engine_.execute(QuerySpec.k_nearest(triple, 5, pattern=pattern))
        assert result.ok
        assert len(result.matches) >= 1
        assert all(match.triple.subject == triple.subject for match in result.matches)
        assert all(pattern.matches(match.triple) for match in result.matches)

    def test_pattern_filter_on_range_queries(self, engine):
        engine_, corpus = engine
        triple = corpus.all_triples()[0]
        pattern = TriplePattern(predicate=triple.predicate)
        result = engine_.execute(QuerySpec.range_query(triple, 0.3, pattern=pattern))
        unfiltered = engine_.execute(QuerySpec.range_query(triple, 0.3))
        assert all(pattern.matches(match.triple) for match in result.matches)
        expected = [m for m in unfiltered.matches if pattern.matches(m.triple)]
        assert list(result.matches) == expected


class TestBatchExecution:
    def test_acceptance_batch_of_256_equals_sequential(self, engine):
        """A batch of >= 256 mixed k-NN/range queries over 4 workers returns
        results identical to sequential execution (the PR's acceptance bar)."""
        engine_, corpus = engine
        triples = list(dict.fromkeys(corpus.all_triples()))
        specs = mixed_query_specs(triples, 256, k=3, radius=0.15, seed=11)
        batch = engine_.execute_batch(specs)
        sequential = engine_.execute_sequential(specs)
        assert len(batch) == len(sequential) == 256
        for concurrent_result, sequential_result in zip(batch, sequential):
            assert concurrent_result.ok
            assert concurrent_result.matches == sequential_result.matches

    def test_results_come_back_in_input_order(self, engine):
        engine_, corpus = engine
        triples = corpus.all_triples()
        specs = [QuerySpec.k_nearest(t, 2) for t in triples[:10]]
        results = engine_.execute_batch(specs)
        assert [r.spec for r in results] == specs

    def test_in_batch_duplicates_execute_once(self, engine):
        engine_, corpus = engine
        triple = corpus.all_triples()[0]
        spec = QuerySpec.k_nearest(triple, 3)
        results = engine_.execute_batch([spec, spec, spec])
        assert all(r.matches == results[0].matches for r in results)
        assert not results[0].cached           # the one that ran
        assert results[1].cached and results[2].cached

    def test_repeated_workload_has_nonzero_cache_hit_rate(self, engine):
        engine_, corpus = engine
        triples = list(dict.fromkeys(corpus.all_triples()))
        specs = mixed_query_specs(triples, 64, seed=3)
        first = engine_.execute_batch(specs)
        second = engine_.execute_batch(specs)
        assert engine_.cache.stats.hit_rate > 0.0
        assert all(r.cached for r in second)
        for a, b in zip(first, second):
            assert a.matches == b.matches

    def test_empty_batch(self, engine):
        engine_, _ = engine
        assert engine_.execute_batch([]) == []

    def test_batch_is_deterministic_across_worker_counts(self, built_requirements_index):
        index, _, corpus = built_requirements_index
        triples = list(dict.fromkeys(corpus.all_triples()))
        specs = mixed_query_specs(triples, 48, seed=5)
        outcomes = []
        for workers in (1, 4, 8):
            with QueryEngine(index, workers=workers) as engine_:
                outcomes.append([r.matches for r in engine_.execute_batch(specs)])
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestDeadlines:
    def test_slow_query_times_out(self, built_requirements_index, monkeypatch):
        index, _, corpus = built_requirements_index
        triple = corpus.all_triples()[0]
        with QueryEngine(index, workers=2) as engine_:
            slow_run = engine_._run

            def delayed(planned):
                time.sleep(0.25)
                return slow_run(planned)

            monkeypatch.setattr(engine_, "_run", delayed)
            result = engine_.execute(QuerySpec.k_nearest(triple, 3, deadline=0.02))
            assert result.timed_out
            assert not result.ok
            assert result.matches == ()

    def test_default_deadline_applies(self, built_requirements_index, monkeypatch):
        index, _, corpus = built_requirements_index
        triple = corpus.all_triples()[0]
        with QueryEngine(index, workers=2, default_deadline=0.02) as engine_:
            slow_run = engine_._run

            def delayed(planned):
                time.sleep(0.25)
                return slow_run(planned)

            monkeypatch.setattr(engine_, "_run", delayed)
            assert engine_.execute(QuerySpec.k_nearest(triple, 3)).timed_out

    def test_generous_deadline_succeeds(self, engine):
        engine_, corpus = engine
        triple = corpus.all_triples()[0]
        result = engine_.execute(QuerySpec.k_nearest(triple, 3, deadline=30.0))
        assert result.ok and result.matches

    def test_in_batch_duplicates_keep_their_own_deadlines(self, built_requirements_index,
                                                          monkeypatch):
        index, _, corpus = built_requirements_index
        triple = corpus.all_triples()[0]
        with QueryEngine(index, workers=2) as engine_:
            real_run = engine_._run

            def delayed(planned):
                time.sleep(0.1)
                return real_run(planned)

            monkeypatch.setattr(engine_, "_run", delayed)
            generous = QuerySpec.k_nearest(triple, 3, deadline=10.0)
            strict = QuerySpec.k_nearest(triple, 3, deadline=0.01)
            results = engine_.execute_batch([generous, strict])
            assert results[0].ok and results[0].matches
            assert results[1].timed_out

        # ... regardless of which duplicate comes first in the batch
        # (fresh engine: the first one's cache would serve the repeat instantly)
        with QueryEngine(index, workers=2) as engine_:
            real_run = engine_._run

            def delayed_again(planned):
                time.sleep(0.1)
                return real_run(planned)

            monkeypatch.setattr(engine_, "_run", delayed_again)
            results = engine_.execute_batch([strict, generous])
            assert results[0].timed_out
            assert results[1].ok and results[1].matches


class TestFailures:
    def test_worker_errors_are_reported_per_query(self, built_requirements_index,
                                                  monkeypatch):
        index, _, corpus = built_requirements_index
        triple = corpus.all_triples()[0]
        with QueryEngine(index, workers=2) as engine_:
            def explode(planned):
                raise RuntimeError("partition on fire")

            monkeypatch.setattr(engine_, "_run", explode)
            result = engine_.execute(QuerySpec.k_nearest(triple, 3))
            assert not result.ok
            assert "partition on fire" in result.error
            assert result.matches == ()

    def test_closed_engine_refuses_queries(self, built_requirements_index):
        index, _, corpus = built_requirements_index
        engine_ = QueryEngine(index, workers=1)
        engine_.close()
        with pytest.raises(QueryError):
            engine_.execute(QuerySpec.k_nearest(corpus.all_triples()[0], 1))

    def test_invalid_worker_count_rejected(self, built_requirements_index):
        index, _, _ = built_requirements_index
        with pytest.raises(QueryError):
            QueryEngine(index, workers=0)


class TestObservability:
    def test_statistics_cover_cache_and_latency(self, engine):
        engine_, corpus = engine
        triples = list(dict.fromkeys(corpus.all_triples()))
        specs = mixed_query_specs(triples, 64, seed=9)
        engine_.execute_batch(specs)
        engine_.execute_batch(specs)
        stats = engine_.statistics()
        assert stats["queries"] == 128
        assert stats["executed"] > 0
        assert stats["served_from_cache"] > 0
        assert stats["qps"] > 0
        assert stats["cache"]["hit_rate"] > 0
        assert stats["latency_ms"]["p50"] >= 0
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]
        assert stats["workers"] == 4

    def test_partition_loads_are_recorded(self, engine):
        engine_, corpus = engine
        triples = list(dict.fromkeys(corpus.all_triples()))
        engine_.execute_batch([QuerySpec.k_nearest(t, 3) for t in triples[:20]])
        loads = engine_.metrics.partition_loads()
        assert loads, "expected at least the root partition to be loaded"
        assert "P0" in loads
        assert all(count > 0 for count in loads.values())
