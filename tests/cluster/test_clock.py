"""Tests for the simulated clock (cost accounting)."""

import pytest

from repro.cluster import SimulatedClock


class TestCharging:
    def test_initial_state_is_zero(self):
        clock = SimulatedClock()
        assert clock.total_work == 0.0
        assert clock.critical_path == 0.0
        assert clock.messages == 0

    def test_charge_accumulates_per_resource(self):
        clock = SimulatedClock()
        clock.charge("P0", 2.0)
        clock.charge("P0", 3.0)
        clock.charge("P1", 4.0)
        assert clock.work_of("P0") == 5.0
        assert clock.work_of("P1") == 4.0
        assert clock.total_work == 9.0

    def test_negative_cost_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.charge("P0", -1.0)
        with pytest.raises(ValueError):
            clock.charge_message(-1.0)

    def test_critical_path_is_busiest_resource_plus_network(self):
        clock = SimulatedClock()
        clock.charge("P0", 10.0)
        clock.charge("P1", 4.0)
        clock.charge_message(2.0)            # unattributed: serial network pool
        assert clock.critical_path == 12.0
        assert clock.total_work == 16.0

    def test_message_charged_to_resource_counts_as_its_work(self):
        clock = SimulatedClock()
        clock.charge("P1", 1.0)
        clock.charge_message(5.0, resource="P1")
        assert clock.work_of("P1") == 6.0
        assert clock.network_cost == 0.0
        assert clock.messages == 1

    def test_message_counter(self):
        clock = SimulatedClock()
        clock.charge_message(1.0)
        clock.charge_message(1.0, resource="P0")
        assert clock.messages == 2


class TestSnapshotAndReset:
    def test_snapshot_is_immutable_copy(self):
        clock = SimulatedClock()
        clock.charge("P0", 1.0)
        snapshot = clock.snapshot()
        clock.charge("P0", 1.0)
        assert snapshot.per_resource["P0"] == 1.0
        assert snapshot.total_work == 1.0

    def test_snapshot_fields(self):
        clock = SimulatedClock()
        clock.charge("P0", 3.0)
        clock.charge_message(2.0)
        snapshot = clock.snapshot()
        assert snapshot.total_work == 5.0
        assert snapshot.critical_path == 5.0
        assert snapshot.network_cost == 2.0
        assert snapshot.messages == 1

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge("P0", 3.0)
        clock.charge_message(1.0)
        clock.reset()
        assert clock.total_work == 0.0
        assert clock.messages == 0
        assert clock.work_of("P0") == 0.0
