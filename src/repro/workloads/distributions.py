"""Synthetic point distributions for the efficiency experiments.

The paper's efficiency figures (3–7) vary the *size* of the tree, not the
distribution of the underlying triples, so any controlled point workload
works as long as it can be scaled.  Three classical distributions are
provided — uniform, Gaussian clusters and skewed (exponential tails) — plus
a sorted variant used to build the "totally unbalanced" configuration.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.point import LabeledPoint
from repro.errors import WorkloadError

__all__ = [
    "uniform_points",
    "clustered_points",
    "skewed_points",
    "sorted_points",
    "grid_points",
]


def _check(count: int, dimensions: int) -> None:
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    if dimensions < 1:
        raise WorkloadError(f"dimensions must be >= 1, got {dimensions}")


def uniform_points(count: int, dimensions: int, *, seed: int = 0,
                   low: float = 0.0, high: float = 1.0) -> List[LabeledPoint]:
    """Points drawn uniformly at random from ``[low, high]^dimensions``."""
    _check(count, dimensions)
    if high <= low:
        raise WorkloadError("high must be greater than low")
    rng = random.Random(seed)
    return [
        LabeledPoint.of([rng.uniform(low, high) for _ in range(dimensions)], label=index)
        for index in range(count)
    ]


def clustered_points(count: int, dimensions: int, *, clusters: int = 5, spread: float = 0.05,
                     seed: int = 0) -> List[LabeledPoint]:
    """Points drawn from ``clusters`` Gaussian blobs with centres in the unit cube.

    Clustered data exercises the KD-tree's ability to "adapt to different
    densities in various regions of the space" that the paper highlights.
    """
    _check(count, dimensions)
    if clusters < 1:
        raise WorkloadError(f"clusters must be >= 1, got {clusters}")
    rng = random.Random(seed)
    centres = [
        [rng.random() for _ in range(dimensions)]
        for _ in range(clusters)
    ]
    points: List[LabeledPoint] = []
    for index in range(count):
        centre = centres[index % clusters]
        coordinates = [rng.gauss(mu, spread) for mu in centre]
        points.append(LabeledPoint.of(coordinates, label=index))
    return points


def skewed_points(count: int, dimensions: int, *, rate: float = 3.0,
                  seed: int = 0) -> List[LabeledPoint]:
    """Points with exponentially distributed coordinates (heavy corner skew)."""
    _check(count, dimensions)
    if rate <= 0:
        raise WorkloadError("rate must be positive")
    rng = random.Random(seed)
    return [
        LabeledPoint.of([min(rng.expovariate(rate), 1.0) for _ in range(dimensions)],
                        label=index)
        for index in range(count)
    ]


def sorted_points(count: int, dimensions: int, *, seed: int = 0) -> List[LabeledPoint]:
    """Uniform points sorted lexicographically by their coordinates.

    Feeding these to a dynamic-insertion tree with the FIRST_POINT split
    strategy produces the paper's "totally unbalanced (chain)" structure.
    """
    points = uniform_points(count, dimensions, seed=seed)
    ordered = sorted(points, key=lambda point: point.coordinates)
    return [
        LabeledPoint(point.coordinates, label=index)
        for index, point in enumerate(ordered)
    ]


def grid_points(side: int, dimensions: int) -> List[LabeledPoint]:
    """A deterministic regular grid with ``side`` steps per dimension.

    Useful for exact-answer tests: every distance can be computed by hand.
    """
    if side < 1:
        raise WorkloadError(f"side must be >= 1, got {side}")
    if dimensions < 1:
        raise WorkloadError(f"dimensions must be >= 1, got {dimensions}")
    if side ** dimensions > 1_000_000:
        raise WorkloadError("grid would exceed one million points; reduce side or dimensions")
    coordinates = [index / max(side - 1, 1) for index in range(side)]

    def build(prefix: List[float], depth: int, out: List[LabeledPoint]) -> None:
        if depth == dimensions:
            out.append(LabeledPoint.of(prefix, label=len(out)))
            return
        for value in coordinates:
            build(prefix + [value], depth + 1, out)

    points: List[LabeledPoint] = []
    build([], 0, points)
    return points
