"""Tests for SemTree nodes (leaf/routing, edge/internal, remote children)."""

import pytest

from repro.core import LabeledPoint, Node, RemoteChild
from repro.errors import IndexError_


def leaf(points=()):
    return Node(bucket=[LabeledPoint.of(p) for p in points])


class TestKinds:
    def test_new_node_is_a_leaf(self):
        node = Node()
        assert node.is_leaf and not node.is_routing

    def test_routing_node(self):
        node = Node(split_index=0, split_value=0.5, left=leaf(), right=leaf())
        assert node.is_routing and not node.is_leaf

    def test_leaf_is_always_an_edge_node(self):
        assert leaf().is_edge()
        assert not leaf().is_internal()

    def test_routing_node_with_local_children_is_internal(self):
        node = Node(split_index=0, split_value=0.5, left=leaf(), right=leaf())
        assert node.is_internal() and not node.is_edge()

    def test_routing_node_with_remote_child_is_edge(self):
        node = Node(split_index=0, split_value=0.5, left=leaf(), right=RemoteChild("P3"))
        assert node.is_edge() and not node.is_internal()

    def test_node_ids_are_monotonic(self):
        assert Node().node_id < Node().node_id


class TestNavigation:
    def test_child_for_left_and_right(self):
        left, right = leaf(), leaf()
        node = Node(split_index=1, split_value=0.5, left=left, right=right)
        assert node.child_for(LabeledPoint.of([0.9, 0.5])) is left   # equal goes left
        assert node.child_for(LabeledPoint.of([0.9, 0.2])) is left
        assert node.child_for(LabeledPoint.of([0.9, 0.8])) is right

    def test_child_for_on_leaf_raises(self):
        with pytest.raises(IndexError_):
            leaf().child_for(LabeledPoint.of([0.0]))

    def test_other_child(self):
        left, right = leaf(), leaf()
        node = Node(split_index=0, split_value=0.5, left=left, right=right)
        assert node.other_child(left) is right
        assert node.other_child(right) is left

    def test_other_child_unknown_node_raises(self):
        node = Node(split_index=0, split_value=0.5, left=leaf(), right=leaf())
        with pytest.raises(IndexError_):
            node.other_child(leaf())


class TestLeafMutation:
    def test_add_to_bucket(self):
        node = leaf()
        node.add_to_bucket(LabeledPoint.of([1.0]))
        assert len(node.bucket) == 1

    def test_add_to_routing_node_raises(self):
        node = Node(split_index=0, split_value=0.5, left=leaf(), right=leaf())
        with pytest.raises(IndexError_):
            node.add_to_bucket(LabeledPoint.of([1.0]))

    def test_convert_to_routing_moves_points_out(self):
        node = leaf([(0.2,), (0.8,)])
        left = leaf([(0.2,)])
        right = leaf([(0.8,)])
        node.convert_to_routing(0, 0.5, left, right)
        assert node.is_routing
        assert node.bucket == []
        assert node.left is left and node.right is right

    def test_convert_routing_node_again_raises(self):
        node = Node(split_index=0, split_value=0.5, left=leaf(), right=leaf())
        with pytest.raises(IndexError_):
            node.convert_to_routing(0, 0.5, leaf(), leaf())
