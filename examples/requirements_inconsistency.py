"""Case study: finding inconsistencies in software requirements (Section IV-B).

This example reproduces the paper's end-to-end workflow on a synthetic
on-board-software corpus:

1. generate a requirements corpus (documents → requirements → controlled
   English sentences);
2. extract triples from the sentences with the NLP-lite extractor;
3. index the triples with SemTree;
4. probe the corpus with antinomic *target triples* and report the detected
   inconsistencies, together with precision/recall against the ground-truth
   oracle.

Run with::

    python examples/requirements_inconsistency.py
"""

from __future__ import annotations

from repro.core import SemTreeConfig, SemTreeIndex
from repro.evaluation import average_precision_recall, evaluate_retrieval
from repro.nlp import TripleExtractor
from repro.requirements import (
    GeneratorConfig,
    GroundTruthOracle,
    InconsistencyDetector,
    RequirementsGenerator,
    build_requirement_distance,
    build_requirement_vocabularies,
)


def main() -> None:
    # 1. Generate the synthetic corpus (a scaled-down stand-in for the
    #    proprietary CIRA corpus; see DESIGN.md, substitution table).
    generator_config = GeneratorConfig(
        documents=12, requirements_per_document=8, sentences_per_requirement=3,
        actors=25, inconsistency_rate=0.3, seed=42,
    )
    corpus = RequirementsGenerator(generator_config).generate()
    print(f"Generated corpus: {corpus}")

    # 2. Extract triples from the natural-language sentences (round-trip
    #    through the NLP-lite pipeline instead of trusting the generator).
    extractor = TripleExtractor()
    extracted = []
    for document in corpus.documents:
        for requirement in document:
            extracted.extend(extractor.extract_from_text(requirement.text))
    print(f"Extracted {len(extracted)} triples from the controlled-English sentences")

    # 3. Build the semantic index over the extracted triples.
    vocabularies = build_requirement_vocabularies(corpus.actor_names, corpus.parameter_values)
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=4, bucket_size=8, max_partitions=5, partition_capacity=64,
    ))
    index.add_triples(extracted)
    index.build()
    print(f"Index: {index.statistics()}")

    # 4. Probe for inconsistencies with the detector.
    function_vocabulary = vocabularies["Fun"]
    detector = InconsistencyDetector(index, function_vocabulary, k=5)
    pairs = detector.conflicting_pairs(corpus.all_triples()[:200])
    print(f"\nDetected {len(pairs)} conflicting requirement pairs; first five:")
    for source, conflict in pairs[:5]:
        print(f"  {source}   <->   {conflict}")

    # 5. Effectiveness against the ground-truth oracle (the Fig. 8 protocol).
    oracle = GroundTruthOracle(corpus.all_triples(), function_vocabulary)
    cases = oracle.build_cases(50, seed=7)
    print(f"\nEffectiveness over {len(cases)} target-triple queries:")
    print(f"{'K':>4}  {'precision':>9}  {'recall':>7}  {'F1':>6}")
    for k in (1, 2, 3, 5, 8, 12):
        per_query = []
        for case in cases:
            retrieved = [match.triple for match in index.k_nearest(case.target_triple, k)]
            per_query.append(evaluate_retrieval(retrieved, case.expected))
        averaged = average_precision_recall(per_query)
        print(f"{k:>4}  {averaged.precision:>9.3f}  {averaged.recall:>7.3f}  {averaged.f1:>6.3f}")


if __name__ == "__main__":
    main()
