"""Synthetic workloads: point distributions and query batches for the
efficiency experiments (Figures 3–7), plus the HTTP client and load
generator that drive a live ``repro.server`` instance."""

from repro.workloads.distributions import (
    clustered_points,
    grid_points,
    skewed_points,
    sorted_points,
    uniform_points,
)
from repro.workloads.http_client import ServerClient, generate_load, query_payloads
from repro.workloads.queries import (QueryWorkload, mixed_query_specs,
                                     perturbed_queries, uniform_queries)

__all__ = [
    "uniform_points",
    "clustered_points",
    "skewed_points",
    "sorted_points",
    "grid_points",
    "QueryWorkload",
    "uniform_queries",
    "perturbed_queries",
    "mixed_query_specs",
    "ServerClient",
    "generate_load",
    "query_payloads",
]
