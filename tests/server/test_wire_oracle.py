"""Wire-vs-oracle property test: the transport never changes an answer.

A seeded random workload of interleaved inserts, k-NN and range queries
runs against a live HTTP server while an in-process
:class:`~repro.core.SemTreeIndex` oracle applies the same operations.
Every query's wire answer must equal the oracle's, on both transports —
so the framing layer, the dispatch path, the engine result cache *and*
the async transport's wire-byte cache (enabled here precisely to prove
its insert invalidation) are all transparent to correctness.
"""

from __future__ import annotations

import random

import pytest

from server_corpus import BASE_TRIPLES, INSERT_TRIPLES, STREAM_TRIPLES, canonical
from repro.workloads import ServerClient

SEED = 20260808
STEPS = 120


@pytest.mark.parametrize("transport", ["threaded", "async"])
def test_random_workload_matches_in_process_oracle(
        make_transport_server, make_base, transport):
    server_kwargs = {"wire_cache": True} if transport == "async" else {}
    server = make_transport_server(transport, server_kwargs=server_kwargs)
    oracle = make_base()  # the identical deterministic base index
    rng = random.Random(SEED)
    pool = list(INSERT_TRIPLES + STREAM_TRIPLES)
    visible = list(BASE_TRIPLES)
    queries = inserts = 0
    with ServerClient(server.url) as client:
        for _ in range(STEPS):
            action = rng.random()
            if action < 0.25 and pool:
                triple = pool.pop(0)
                client.insert(triple)
                oracle.insert_triples([triple])
                visible.append(triple)
                inserts += 1
            elif action < 0.70:
                triple = visible[rng.randrange(len(visible))]
                k = rng.randint(1, 4)
                wire = client.knn(triple, k)
                assert wire["error"] is None
                assert canonical(wire["matches"]) == \
                    canonical(oracle.k_nearest(triple, k)), \
                    f"knn({triple}, {k}) diverged after {inserts} inserts"
                queries += 1
            else:
                triple = visible[rng.randrange(len(visible))]
                radius = rng.choice([0.15, 0.3, 0.5])
                wire = client.range(triple, radius)
                assert canonical(wire["matches"]) == \
                    canonical(oracle.range_query(triple, radius)), \
                    f"range({triple}, {radius}) diverged after {inserts} inserts"
                queries += 1
    assert queries > 50 and inserts > 10  # the seed exercised both paths
    if transport == "async":
        stats = server.wire_cache_stats()
        # The workload repeats queries, so the byte cache genuinely served
        # hits — meaning the equality above also proves its invalidation.
        assert stats["hits"] > 0
        assert stats["misses"] > 0


@pytest.mark.parametrize("transport", ["threaded", "async"])
def test_identical_queries_stay_identical_across_inserts(
        make_transport_server, transport):
    """The hot-loop shape wire caches get wrong first: ask, insert a
    point that changes the answer, ask the same bytes again."""
    server_kwargs = {"wire_cache": True} if transport == "async" else {}
    server = make_transport_server(transport, server_kwargs=server_kwargs)
    with ServerClient(server.url) as client:
        before = client.knn(INSERT_TRIPLES[0], 3)
        repeat = client.knn(INSERT_TRIPLES[0], 3)
        assert canonical(repeat["matches"]) == canonical(before["matches"])
        client.insert(INSERT_TRIPLES[0])  # exact match now exists
        after = client.knn(INSERT_TRIPLES[0], 3)
        texts = [match["text"] for match in after["matches"]]
        assert str(INSERT_TRIPLES[0]) in texts
        assert after["matches"][0]["distance"] == pytest.approx(0.0)
