"""Deterministic corpus and equivalence helpers for the coordinator suite.

The corpus is big enough to force several data-bearing partitions (the
whole point of the sharded deployment) and deliberately *contains exact
distance ties* — distinct triples projecting to equal distances — because
tie handling is where a naive scatter-gather diverges from the sequential
search.

``assert_equivalent`` encodes the exactness contract of
``docs/cluster.md``: identical distance lists (exact floats, no rounding),
identical triple sets within every fully-included tie group, and the same
number of results at the boundary distance (which triples of an exactly-
tied boundary group survive a k-truncation is traversal-order latitude the
sequential engine itself has).
"""

from __future__ import annotations

import itertools

from repro.core import SemTreeConfig, SemTreeIndex
from repro.requirements import (GeneratorConfig, RequirementsGenerator,
                                build_requirement_distance,
                                build_requirement_vocabularies)


def build_corpus_index(*, max_partitions: int = 4, dimensions: int = 3,
                       bucket_size: int = 4, partition_capacity: int = 24):
    """A built index over a synthetic requirements corpus, plus its triples."""
    config = GeneratorConfig(
        documents=6, requirements_per_document=5, sentences_per_requirement=3,
        actors=12, inconsistency_rate=0.25, restatement_rate=0.25, seed=41,
    )
    corpus = RequirementsGenerator(config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=dimensions, bucket_size=bucket_size,
        max_partitions=max_partitions, partition_capacity=partition_capacity,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    triples = list(dict.fromkeys(corpus.all_triples()))
    return index, triples


def rows_of(matches):
    """Normalise engine matches or wire payloads to ``(distance, text)`` rows."""
    rows = []
    for match in matches:
        if isinstance(match, dict):
            rows.append((match["distance"], match["text"]))
        else:
            rows.append((match.distance, str(match.triple)))
    return rows


def tie_groups(rows):
    """Group rows by exact distance, texts sorted within each group."""
    return [
        (distance, sorted(text for _, text in group))
        for distance, group in itertools.groupby(rows, key=lambda row: row[0])
    ]


def assert_equivalent(actual, expected, *, truncated: bool):
    """Assert two result lists are equal under the exactness contract.

    ``truncated`` is True for k-NN results (the k-th boundary may cut
    through an exact tie group); range results are never truncated, so
    their comparison is fully strict.
    """
    rows_a, rows_b = rows_of(actual), rows_of(expected)
    assert [distance for distance, _ in rows_a] == [distance for distance, _ in rows_b], \
        (rows_a, rows_b)
    groups_a, groups_b = tie_groups(rows_a), tie_groups(rows_b)
    assert len(groups_a) == len(groups_b)
    strict = groups_a if not truncated else groups_a[:-1]
    for (distance_a, texts_a), (distance_b, texts_b) in zip(strict, groups_b):
        assert distance_a == distance_b and texts_a == texts_b, (groups_a, groups_b)
    if truncated and groups_a:
        assert groups_a[-1][0] == groups_b[-1][0]
        assert len(groups_a[-1][1]) == len(groups_b[-1][1])
