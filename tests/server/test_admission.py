"""Admission control: token buckets, shed decisions, 503 + Retry-After.

Unit tests drive :class:`AdmissionController` against a stub engine and a
fake clock; the end-to-end tests boot a real server and assert the HTTP
contract — status 503, the structured ``reason``, and a ``Retry-After``
header the client surfaces on :class:`ServerError`.
"""

from __future__ import annotations

import pytest

from server_corpus import QUERY_TRIPLES
from repro.errors import AdmissionError, QueryError, ServerError
from repro.service.admission import (
    AdmissionController, TokenBucket, CLIENT_BUCKET_LIMIT, MIN_RETRY_AFTER,
)
from repro.workloads import ServerClient


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class StubEngine:
    def __init__(self, outstanding=0, wait=0.0):
        self._outstanding = outstanding
        self._wait = wait

    def outstanding(self):
        return self._outstanding

    def predicted_wait_seconds(self):
        return self._wait


class TestTokenBucket:
    def test_burst_then_starve_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, 3.0, clock=clock)
        assert all(bucket.take() for _ in range(3)), "starts full"
        assert not bucket.take()
        clock.advance(0.5)  # one token accrues at 2/s
        assert bucket.take()
        assert not bucket.take()

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.take() and bucket.take()
        assert not bucket.take()

    def test_retry_after_predicts_accrual(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, 1.0, clock=clock)
        assert bucket.retry_after() == 0.0
        bucket.take()
        assert bucket.retry_after() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(QueryError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(QueryError):
            TokenBucket(1.0, 0.0)


class TestAdmissionController:
    def test_disabled_by_default_and_admits_everything(self):
        controller = AdmissionController(StubEngine(outstanding=10 ** 6))
        assert not controller.enabled
        controller.admit(queries=100)
        assert controller.snapshot()["admitted"] == 100

    def test_queue_full_sheds_with_retry_after(self):
        engine = StubEngine(outstanding=4, wait=2.5)
        controller = AdmissionController(engine, max_queue_depth=5)
        controller.admit()  # 4 + 1 <= 5
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(queries=2)  # 4 + 2 > 5
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.retry_after == pytest.approx(2.5)
        assert controller.snapshot()["shed"] == {"queue_full": 2}

    def test_deadline_rejection_uses_predicted_wait(self):
        controller = AdmissionController(StubEngine(wait=0.8),
                                         max_queue_depth=100)
        controller.admit(deadline=1.0)  # predicted wait fits the budget
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(deadline=0.5)
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.retry_after == pytest.approx(0.8)

    def test_rate_limit_is_per_client(self):
        clock = FakeClock()
        controller = AdmissionController(StubEngine(), client_rate=1.0,
                                         client_burst=2, clock=clock)
        controller.admit(client_id="a")
        controller.admit(client_id="a")
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(client_id="a")
        assert excinfo.value.reason == "rate_limit"
        assert excinfo.value.retry_after >= MIN_RETRY_AFTER
        controller.admit(client_id="b")  # a fresh client has its own bucket
        clock.advance(1.0)
        controller.admit(client_id="a")  # tokens accrued back

    def test_anonymous_clients_share_one_bucket(self):
        controller = AdmissionController(StubEngine(), client_rate=1.0,
                                         client_burst=1, clock=FakeClock())
        controller.admit(client_id=None)
        with pytest.raises(AdmissionError):
            controller.admit(client_id=None)

    def test_client_buckets_are_lru_bounded(self):
        controller = AdmissionController(StubEngine(), client_rate=100.0,
                                         client_burst=1, clock=FakeClock())
        for n in range(CLIENT_BUCKET_LIMIT + 10):
            controller.admit(client_id=f"client-{n}")
        assert controller.snapshot()["tracked_clients"] == CLIENT_BUCKET_LIMIT

    def test_validation(self):
        with pytest.raises(QueryError):
            AdmissionController(StubEngine(), max_queue_depth=0)
        with pytest.raises(QueryError):
            AdmissionController(StubEngine(), client_rate=-1.0)
        with pytest.raises(QueryError):
            AdmissionController(StubEngine(), client_burst=0)


class TestAdmissionOverHttp:
    def test_batch_larger_than_queue_depth_is_shed_with_headers(self, make_server):
        _, client = make_server(max_queue_depth=2)
        payloads = [ServerClient.knn_payload(t, 3) for t in QUERY_TRIPLES[:4]]
        with pytest.raises(ServerError) as excinfo:
            client.knn_batch(payloads)
        error = excinfo.value
        assert error.status == 503
        assert error.kind == "AdmissionError"
        assert error.retry_after is not None and error.retry_after >= 1.0
        # Within the depth limit the same server answers normally.
        assert client.knn(QUERY_TRIPLES[0], 3)["matches"] is not None

    def test_rate_limited_client_gets_503_and_others_proceed(self, make_server):
        _, client = make_server(client_rate=0.001, client_burst=2)
        noisy = {"X-Client-Id": "noisy"}
        payload = ServerClient.knn_payload(QUERY_TRIPLES[0], 3)
        client.request("POST", "/v1/knn", payload, headers=noisy)
        client.request("POST", "/v1/knn", payload, headers=noisy)
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/v1/knn", payload, headers=noisy)
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after >= 1.0
        # A different client id still has its full burst.
        assert "matches" in client.request("POST", "/v1/knn", payload,
                                           headers={"X-Client-Id": "quiet"})

    def test_shed_counters_reach_metrics_and_prometheus(self, make_server):
        _, client = make_server(client_rate=0.001, client_burst=1)
        payload = ServerClient.knn_payload(QUERY_TRIPLES[0], 3)
        client.request("POST", "/v1/knn", payload)
        for _ in range(2):
            with pytest.raises(ServerError):
                client.request("POST", "/v1/knn", payload)
        admission = client.metrics()["server"]["admission"]
        assert admission["enabled"] is True
        assert admission["admitted"] == 1
        assert admission["shed"] == {"rate_limit": 2}
        exposition = client.metrics_prometheus()
        assert 'repro_requests_shed_total{reason="rate_limit"} 2' in exposition
        assert "repro_requests_admitted_total 1" in exposition

    def test_engine_exposes_admission_signals(self, make_server):
        server, client = make_server()
        engine = server.app.engine
        assert engine.outstanding() == 0
        assert engine.predicted_wait_seconds() == 0.0
        client.knn(QUERY_TRIPLES[0], 3)
        assert engine.mean_execution_seconds() > 0.0
        assert engine.outstanding() == 0, "settles back after execution"
