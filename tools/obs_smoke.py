#!/usr/bin/env python3
"""CI observability smoke: boot a server, scrape it, validate the exposition.

Boots a real :class:`~repro.server.http.SemTreeServer` over a small
synthetic corpus on an ephemeral loopback port, then checks the
observability surface end to end:

1. ``GET /v1/metrics?format=prometheus`` answers with the v0.0.4 content
   type, parses, and passes every exposition invariant
   (:func:`~repro.obs.prometheus.validate_exposition`);
2. the core metric families are present — including the per-query cost
   counters (``repro_query_cost_total``);
3. the exposition agrees with the JSON ``/v1/metrics`` payload on the
   shared counters (the two are rendered from the same registry);
4. a request with ``X-Debug-Trace`` returns a span tree carrying the
   client's ``X-Trace-Id`` and a cost annotation on its ``execute`` span;
5. ``GET /v1/debug/profile`` returns collapsed stacks with ``repro.*``
   frames, and ``GET /v1/history`` records the traffic just generated.

A second stage launches a *real* shard fleet (``python -m repro.server
--shard`` subprocesses plus a ``python -m repro.coordinator``) and checks
the same surface across processes: cluster-wide cost annotations in a
traced response, cost counters in the shard exposition, and the profile /
history endpoints on every tier.

Exit status 0 on success, 1 with one line per failure — what the CI
observability job keys off.  Run from the repository root::

    PYTHONPATH=src python tools/obs_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.ingest import IngestingIndex
from repro.obs.prometheus import CONTENT_TYPE, parse_exposition, validate_exposition
from repro.requirements import (
    GeneratorConfig,
    RequirementsGenerator,
    build_requirement_distance,
    build_requirement_vocabularies,
)
from repro.core import SemTreeConfig, SemTreeIndex
from repro.server import create_server, ServerApp

CORE_FAMILIES = {
    "repro_build_info",
    "repro_uptime_seconds",
    "repro_http_requests_total",
    "repro_http_bytes_total",
    "repro_queries_total",
    "repro_queries_executed_total",
    "repro_query_latency_seconds",
    "repro_query_cost_total",
    "repro_queue_wait_seconds",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_inserts_total",
    "repro_index_points",
    "repro_index_generation",
    "repro_engine_workers",
}


def walk_spans(node):
    yield node
    for child in node.get("children", ()):
        yield from walk_spans(child)


def cost_of(trace, span_name: str):
    """The ``cost`` annotation of the first span named ``span_name``."""
    for root in trace.get("spans", ()):
        for node in walk_spans(root):
            if node.get("name") == span_name:
                return (node.get("meta") or {}).get("cost")
    return None


def build_server(tmp_dir: Path):
    corpus = RequirementsGenerator(GeneratorConfig(
        documents=4, requirements_per_document=4, sentences_per_requirement=2,
        actors=8, seed=7,
    )).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values)
    index = SemTreeIndex(build_requirement_distance(vocabularies), SemTreeConfig(
        dimensions=3, bucket_size=4, max_partitions=2, partition_capacity=16,
    ))
    triples = []
    for document in corpus.documents:
        rdf_document = document.to_rdf_document()
        triples.extend(rdf_document.triples)
        index.add_document(rdf_document)
    index.build()
    live = IngestingIndex(index, tmp_dir / "wal.jsonl")
    app = ServerApp(live, workers=2,
                    checkpoint_path=tmp_dir / "snapshot.json")
    return create_server(app).serve_background(), triples


def fetch(url: str, *, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


def post(url: str, payload: dict, *, headers: dict | None = None):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), \
            json.loads(response.read())


def run_smoke() -> list[str]:
    problems: list[str] = []
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        server, triples = build_server(Path(tmp))
        try:
            # Traffic first, so counters and histograms are non-trivial.
            from repro.workloads import ServerClient

            with ServerClient(server.url) as client:
                for triple in triples[:4]:
                    client.knn(triple, 3)
                    client.knn(triple, 3)       # cache hit

            status, headers, raw = fetch(
                f"{server.url}/v1/metrics?format=prometheus")
            if status != 200:
                problems.append(f"prometheus endpoint answered {status}")
            if headers.get("Content-Type") != CONTENT_TYPE:
                problems.append(
                    f"wrong content type: {headers.get('Content-Type')!r}")
            families = parse_exposition(raw.decode("utf-8"))
            problems.extend(validate_exposition(families))
            missing = CORE_FAMILIES - set(families)
            if missing:
                problems.append(f"missing core families: {sorted(missing)}")

            # The JSON payload and the exposition must agree.
            metrics = json.loads(fetch(f"{server.url}/v1/metrics")[2])

            def value_of(name):
                return families[name].samples[0].value
            if value_of("repro_queries_executed_total") != \
                    metrics["serving"]["executed"]:
                problems.append("executed-query counter disagrees with JSON")
            if value_of("repro_cache_hits_total") != metrics["cache"]["hits"]:
                problems.append("cache-hit counter disagrees with JSON")

            # Tracing: opt-in span tree with the client's trace id, whose
            # execute span carries the query's cost-counter annotation.
            from repro.io.serialization import triple_to_dict
            status, headers, traced = post(
                f"{server.url}/v1/knn",
                {"triple": triple_to_dict(triples[0]), "k": 7},
                headers={"X-Trace-Id": "obs-smoke-1", "X-Debug-Trace": "1"})
            if headers.get("X-Trace-Id") != "obs-smoke-1":
                problems.append("X-Trace-Id was not echoed")
            trace = traced.get("debug", {}).get("trace")
            if not trace or trace.get("trace_id") != "obs-smoke-1":
                problems.append("debug trace missing or with wrong trace id")
            elif not trace.get("spans"):
                problems.append("debug trace has no spans")
            else:
                cost = cost_of(trace, "execute")
                if not cost or cost.get("distance_computations", 0) <= 0:
                    problems.append(
                        f"traced execute span has no cost annotation: {cost}")

            # Cost counters must reach the exposition too.
            families = parse_exposition(
                fetch(f"{server.url}/v1/metrics?format=prometheus")[2]
                .decode("utf-8"))
            cost_series = {
                dict(sample.labels).get("counter"): sample.value
                for sample in families["repro_query_cost_total"].samples
            } if "repro_query_cost_total" in families else {}
            if cost_series.get("distance_computations", 0) <= 0:
                problems.append(
                    f"exposition cost counters are empty: {cost_series}")

            # Sampling profiler: collapsed stacks with repro frames.
            status, _, collapsed = fetch(
                f"{server.url}/v1/debug/profile?seconds=0.3&format=collapsed")
            if status != 200:
                problems.append(f"profile endpoint answered {status}")
            lines = collapsed.decode("utf-8").strip().splitlines()
            if not lines:
                problems.append("profile returned no stacks")
            elif not any("repro." in line for line in lines):
                problems.append("no repro frames in the profile")

            # History: force one window to close, then read it back.
            server.app.history.tick()
            status, _, raw_history = fetch(f"{server.url}/v1/history")
            history = json.loads(raw_history)
            entries = history.get("entries", [])
            if not entries:
                problems.append("history has no entries after a tick")
            elif entries[-1].get("queries", 0) <= 0:
                problems.append(f"history recorded no queries: {entries[-1]}")
        finally:
            server.close(checkpoint=False)
    return problems


def run_fleet_smoke() -> list[str]:
    """The same surface across a real coordinator + shard subprocess fleet."""
    from repro.coordinator import (launch_coordinator, launch_shards,
                                   shutdown_processes)
    from repro.core import SemTreeConfig, SemTreeIndex
    from repro.io.serialization import triple_to_dict
    from repro.server.bootstrap import vocabulary_hints

    problems: list[str] = []
    with tempfile.TemporaryDirectory(prefix="obs-smoke-fleet-") as tmp:
        tmp_dir = Path(tmp)
        corpus = RequirementsGenerator(GeneratorConfig(
            documents=5, requirements_per_document=4,
            sentences_per_requirement=2, actors=8, seed=11,
        )).generate()
        vocabularies = build_requirement_vocabularies(
            corpus.actor_names, corpus.parameter_values)
        index = SemTreeIndex(
            build_requirement_distance(vocabularies),
            SemTreeConfig(dimensions=3, bucket_size=4, max_partitions=4,
                          partition_capacity=16))
        triples = []
        for document in corpus.documents:
            rdf_document = document.to_rdf_document()
            triples.extend(rdf_document.triples)
            index.add_document(rdf_document)
        index.build()
        actors, parameters = vocabulary_hints(triples)
        live = IngestingIndex(
            index, tmp_dir / "wal.jsonl",
            vocabulary_hints={"actors": actors, "parameters": parameters})
        snapshot = tmp_dir / "snapshot.json"
        live.checkpoint(snapshot)
        live.close()

        data_partitions = [p.partition_id for p in index.tree.partitions
                           if p.point_count > 0]
        if len(data_partitions) < 2:
            return [f"fleet corpus built only {len(data_partitions)} "
                    "data partitions"]
        fleet = []
        try:
            shards = launch_shards(snapshot, data_partitions)
            fleet.extend(shards)
            coordinator = launch_coordinator(
                snapshot, {shard.partition_id: shard.url for shard in shards})
            fleet.append(coordinator)

            _, _, traced = post(
                f"{coordinator.url}/v1/knn",
                {"triple": triple_to_dict(triples[0]), "k": 5},
                headers={"X-Debug-Trace": "1"})
            trace = traced.get("debug", {}).get("trace", {})
            cost = cost_of(trace, "execute")
            if not cost or cost.get("distance_computations", 0) <= 0:
                problems.append(
                    f"fleet execute span has no cost annotation: {cost}")
            scan_costs = [
                (node.get("meta") or {}).get("cost")
                for root in trace.get("spans", ())
                for node in walk_spans(root)
                if node.get("name") == "shard_scan"
            ]
            if len(scan_costs) != len(shards) or not all(scan_costs):
                problems.append(
                    f"expected {len(shards)} annotated shard_scan spans, "
                    f"got {scan_costs}")
            elif cost and cost.get("distance_computations") != sum(
                    c.get("distance_computations", 0) for c in scan_costs):
                problems.append(
                    "cluster-wide cost does not sum the shard scans")

            # Cost counters in the shard exposition; profile + history on
            # every tier of the fleet.
            for managed in fleet:
                exposition = parse_exposition(fetch(
                    f"{managed.url}/v1/metrics?format=prometheus")[2]
                    .decode("utf-8"))
                if "repro_query_cost_total" not in exposition:
                    problems.append(
                        f"{managed.role}: no cost counters in exposition")
                status, _, collapsed = fetch(
                    f"{managed.url}/v1/debug/profile"
                    "?seconds=0.2&format=collapsed")
                if status != 200 or not collapsed.decode("utf-8").strip():
                    problems.append(f"{managed.role}: empty profile")
                status, _, raw_history = fetch(f"{managed.url}/v1/history")
                history = json.loads(raw_history)
                if status != 200 or "entries" not in history:
                    problems.append(f"{managed.role}: bad history payload")
        finally:
            shutdown_processes(fleet)
    return problems


def main() -> int:
    problems = run_smoke()
    problems += run_fleet_smoke()
    for problem in problems:
        print(f"obs smoke: {problem}", file=sys.stderr)
    if not problems:
        print("obs smoke: exposition valid, core series present, formats "
              "agree, tracing round-trips, cost accounting sums across the "
              "fleet, profile and history answer on every tier")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
