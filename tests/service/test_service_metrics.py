"""Tests for the serving metrics accumulator."""

import pytest

from repro.errors import EvaluationError
from repro.service import ServiceMetrics, percentile


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestPercentile:
    def test_known_values(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0

    def test_unordered_input(self):
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_empty_returns_zero(self):
        # Zero, not an exception: a snapshot taken before any traffic must
        # render a zeroed latency block, not crash the metrics endpoint.
        assert percentile([], 0.0) == 0.0
        assert percentile([], 0.5) == 0.0
        assert percentile([], 1.0) == 0.0

    def test_single_sample(self):
        # Every fraction of a one-sample distribution is that sample.
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_linear_interpolation_between_ranks(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        # rank = fraction * (n - 1): p50 of four samples sits halfway
        # between the 2nd and 3rd order statistics.
        assert percentile(samples, 0.5) == pytest.approx(2.5)
        assert percentile(samples, 0.25) == pytest.approx(1.75)
        assert percentile(samples, 0.9) == pytest.approx(3.7)

    def test_two_samples_midpoint(self):
        assert percentile([10.0, 20.0], 0.5) == pytest.approx(15.0)

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(EvaluationError):
            percentile([1.0], 1.5)
        with pytest.raises(EvaluationError):
            percentile([1.0], -0.1)


class TestServiceMetrics:
    def test_counters(self):
        metrics = ServiceMetrics()
        metrics.record("knn", 0.010, cached=False, visited_partitions=("P0", "P1"))
        metrics.record("knn", 0.000, cached=True)
        metrics.record("range", 0.020, cached=False, visited_partitions=("P0",))
        metrics.record("knn", 0.050, cached=False, timed_out=True)
        metrics.record("range", 0.001, cached=False, failed=True)
        snapshot = metrics.snapshot()
        assert snapshot["queries"] == 5
        assert snapshot["executed"] == 4
        assert snapshot["served_from_cache"] == 1
        assert snapshot["timeouts"] == 1
        assert snapshot["errors"] == 1
        assert snapshot["queries_by_kind"] == {"knn": 3, "range": 2}

    def test_partition_loads(self):
        metrics = ServiceMetrics()
        metrics.record("knn", 0.01, cached=False, visited_partitions=("P0", "P2"))
        metrics.record("knn", 0.01, cached=False, visited_partitions=("P0",))
        assert metrics.partition_loads() == {"P0": 2, "P2": 1}

    def test_qps_uses_elapsed_time(self):
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        metrics.record("knn", 0.01, cached=False)
        clock.advance(2.0)
        metrics.record("knn", 0.01, cached=False)
        snapshot = metrics.snapshot()
        assert snapshot["wall_seconds"] == pytest.approx(2.0)
        assert snapshot["qps"] == pytest.approx(1.0)

    def test_latency_percentiles(self):
        metrics = ServiceMetrics()
        for latency in (0.001, 0.002, 0.003, 0.004, 0.100):
            metrics.record("knn", latency, cached=False)
        latency_ms = metrics.snapshot()["latency_ms"]
        assert latency_ms["p50"] == pytest.approx(3.0)
        assert latency_ms["max"] == pytest.approx(100.0)
        assert latency_ms["p99"] <= latency_ms["max"]

    def test_bounded_samples(self):
        metrics = ServiceMetrics(max_samples=10)
        for index in range(100):
            metrics.record("knn", float(index), cached=False)
        # only the most recent 10 samples feed the percentiles
        assert metrics.snapshot()["latency_ms"]["p50"] >= 90_000
        assert metrics.queries == 100

    def test_empty_snapshot_has_no_latency_block(self):
        snapshot = ServiceMetrics().snapshot()
        assert snapshot["queries"] == 0
        assert "latency_ms" not in snapshot
