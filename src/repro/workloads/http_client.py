"""A stdlib HTTP client and load generator for ``repro.server``.

:class:`ServerClient` is the Python-side counterpart of the wire API in
``docs/server.md``: one method per endpoint, triples passed as
:class:`~repro.rdf.triple.Triple` objects and shipped in the lossless
dictionary form, server-side failures surfaced as
:class:`~repro.errors.ServerError` carrying the HTTP status and the
structured error type the server reported.

The transport keeps one persistent connection per thread (the server
speaks HTTP/1.1 with Content-Length framing, so keep-alive is free):
repeated requests skip the TCP handshake, which is what makes a
coordinator→shard fan-out viable and measurably speeds the load
generator.  A request that hits a *stale* keep-alive socket — the server
closed an idle connection between requests — is retried exactly once on a
fresh connection; the retry only fires for idempotent requests (GETs and
the read-only query/scan POSTs) whose failure arrived before a byte of
response on a previously-used socket, so a non-idempotent insert is never
replayed blindly.

:func:`generate_load` is the benchmark driver: N client threads, each with
its own connection, replaying a shared list of request payloads against a
live server and reporting aggregate QPS plus client-observed latency
percentiles.  ``benchmarks/bench_server_throughput.py`` sweeps it over
thread counts.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServerError, WorkloadError
from repro.io.serialization import term_to_dict, triple_to_dict
from repro.obs.tracing import current_trace
from repro.rdf.triple import Triple, TriplePattern
from repro.service.metrics import percentile

__all__ = ["ServerClient", "generate_load", "query_payloads", "trace_costs"]

#: Connection failures that can hit a reused keep-alive socket before any
#: response byte arrives; safe to retry once on a fresh connection — for
#: idempotent requests only (the server may have processed a request whose
#: response was lost, so replaying a write could apply it twice).
_STALE_SOCKET_ERRORS = (http.client.RemoteDisconnected, http.client.BadStatusLine,
                        BrokenPipeError, ConnectionResetError, ConnectionAbortedError)

#: POST endpoints that are pure reads: replaying one cannot change state.
_IDEMPOTENT_POST_PATHS = frozenset(
    {"/v1/knn", "/v1/range", "/v1/shard/knn", "/v1/shard/range"}
)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """The ``Retry-After`` header as seconds (the servers only emit the
    integer-seconds form), or ``None`` when absent/unparseable."""
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None


def _pattern_payload(pattern: TriplePattern) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for position in ("subject", "predicate", "object"):
        term = getattr(pattern, position)
        if term is not None:
            # The lossless dictionary form, like query triples: str(term) is
            # lossy (a literal's datatype is dropped, a concept name holding
            # ':' reparses as prefix:name) and the server-side pattern match
            # is strict equality, so a lossy round trip silently matches the
            # wrong set.
            payload[position] = term_to_dict(term)
    return payload


class ServerClient:
    """A small, dependency-free client for one ``repro.server`` instance.

    Thread-compatibility: one client may be shared across threads — the
    persistent connection lives in thread-local storage, so every thread
    reuses its *own* socket.  The load generator still gives each thread its
    own instance to keep accounting separate.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ServerError(f"unsupported URL scheme {parsed.scheme!r} "
                              f"in {base_url!r} (only http is spoken)")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._path_prefix = parsed.path.rstrip("/")
        self._local = threading.local()
        # Every live connection across all threads, so close_all() can
        # actually release the sockets other threads opened (the thread-
        # local slot alone is invisible from the closing thread).
        self._connections_lock = threading.Lock()
        self._connections: set = set()
        self._stats_lock = threading.Lock()
        self._stats = {"requests": 0, "connections_opened": 0,
                       "requests_reused": 0, "stale_retries": 0}

    def _note(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._stats[counter] += amount

    def stats(self) -> Dict[str, int]:
        """Transport counters: requests, opened connections, keep-alive reuse
        (``requests_reused``) and one-shot stale-socket retries — enough to
        tell whether the 44 ms-floor fix (TCP_NODELAY + reuse) is working."""
        with self._stats_lock:
            return dict(self._stats)

    # -- the persistent per-thread connection -------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            self._local.connection = connection
            self._local.served = 0
            with self._connections_lock:
                self._connections.add(connection)
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            with self._connections_lock:
                self._connections.discard(connection)
            connection.close()
        self._local.connection = None
        self._local.served = 0

    def close(self) -> None:
        """Close the calling thread's persistent connection (if any).

        Other threads' connections are untouched (they live in their own
        thread-local slots; use :meth:`close_all` at teardown to release
        every socket the client ever opened).
        """
        self._drop_connection()

    def close_all(self) -> None:
        """Close every connection this client holds, across all threads.

        Teardown-only: a thread with a request in flight on one of these
        sockets sees it fail (and its thread-local slot is repaired on the
        next use by the stale-socket handling).
        """
        self._drop_connection()
        with self._connections_lock:
            connections, self._connections = set(self._connections), set()
        for connection in connections:
            connection.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ----------------------------------------------------------------------

    def _headers(self, extra: Optional[Dict[str, str]]) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        # Trace propagation: a request issued while a trace is active carries
        # its ID, so coordinator→shard hops (HttpShardTransport uses this
        # client) and client-side spans land in the same trace as the server
        # logs.  No header when untraced — the server mints its own.
        trace = current_trace()
        if trace is not None:
            headers["X-Trace-Id"] = trace.trace_id
        if extra:
            headers.update(extra)
        return headers

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None, *,
                headers: Optional[Dict[str, str]] = None,
                idempotent: Optional[bool] = None) -> Dict[str, Any]:
        """One HTTP round trip; non-2xx responses raise :class:`ServerError`.

        ``idempotent`` overrides the path-based safe-to-retry inference — an
        insert carrying an ``Idempotency-Key`` sets it true (the server
        deduplicates a replay), everything else relies on the default.
        """
        data = json.dumps(body).encode("utf-8") if body is not None else None
        raw, response = self.request_bytes(method, path, data, headers=headers,
                                           idempotent=idempotent)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            # A 2xx with a non-JSON body means whatever answered is not
            # a repro server (wrong port, proxy); keep the one-type
            # contract so wait_ready's retry loop can handle it.
            raise ServerError(
                f"non-JSON response from {self.base_url}: "
                f"{raw[:120]!r}", status=response.status,
            ) from error

    def request_bytes(self, method: str, path: str,
                      data: Optional[bytes] = None, *,
                      headers: Optional[Dict[str, str]] = None,
                      idempotent: Optional[bool] = None,
                      ) -> Tuple[bytes, http.client.HTTPResponse]:
        """One round trip over pre-encoded bytes, skipping response decoding.

        The load generator's fast path: encoding a payload once and never
        parsing successful response bodies keeps client-side CPU out of a
        throughput measurement.  Errors still decode — a 4xx/5xx raises the
        same structured :class:`ServerError` as :meth:`request`.
        """
        # http.client derives Content-Length from the bytes body; GETs carry
        # no body and no length header (a "Content-Length: 0" would make the
        # server treat the request as having an unread body and drop the
        # keep-alive connection).
        if idempotent is None:
            idempotent = (method in ("GET", "HEAD")
                          or path in _IDEMPOTENT_POST_PATHS)
        response, raw = self._round_trip(method, f"{self._path_prefix}{path}",
                                         data, self._headers(headers),
                                         idempotent=idempotent)
        if response.status >= 400:
            try:
                payload = json.loads(raw).get("error", {})
            except (json.JSONDecodeError, AttributeError):
                payload = {}
            retry_after = _parse_retry_after(response.getheader("Retry-After"))
            raise ServerError(
                payload.get("message",
                            raw.decode("utf-8", "replace") or response.reason),
                status=response.status, kind=payload.get("type"),
                retry_after=retry_after,
            )
        return raw, response

    def _round_trip(self, method: str, path: str, data: Optional[bytes],
                    headers: Dict[str, str], *,
                    idempotent: bool) -> Tuple[http.client.HTTPResponse, bytes]:
        """Send one request over the thread's connection, reading the full body.

        A stale keep-alive socket (the server closed an idle connection, and
        the failure arrived before any response byte) is retried exactly
        once on a fresh connection — but only for *idempotent* requests: a
        reused-socket close proves the server shut the connection, not that
        it never processed the request, so a write (``/v1/insert``) whose
        response was lost must surface as an error for the caller to
        reconcile, never be silently replayed.  A failure on a *fresh*
        connection is a real connectivity problem and surfaces immediately.
        """
        for attempt in (1, 2):
            connection = self._connection()
            reused = self._local.served > 0
            try:
                if connection.sock is None:
                    # Connect eagerly so TCP_NODELAY is set before the first
                    # byte: a small POST otherwise sits in Nagle's buffer
                    # waiting on the peer's delayed ACK (the ~44 ms floor
                    # described in ROADMAP Open item 1).
                    connection.connect()
                    connection.sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    self._note("connections_opened")
                connection.request(method, path, body=data, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except _STALE_SOCKET_ERRORS as error:
                self._drop_connection()
                if idempotent and reused and attempt == 1:
                    self._note("stale_retries")
                    continue
                raise ServerError(
                    f"cannot reach {self.base_url}: {error!r}"
                ) from error
            except (http.client.HTTPException, ConnectionError, TimeoutError,
                    OSError) as error:
                # Timeouts and other socket-level failures are never retried
                # here: the request may have reached the server (an insert
                # could have been applied), so replaying it blindly is not
                # this transport's call to make.
                self._drop_connection()
                raise ServerError(
                    f"transport failure talking to {self.base_url}: {error!r}"
                ) from error
            self._local.served += 1
            with self._stats_lock:
                self._stats["requests"] += 1
                if reused:
                    self._stats["requests_reused"] += 1
            if response.will_close:
                self._drop_connection()
            return response, raw
        raise AssertionError("unreachable")  # pragma: no cover

    # -- query payload builders (also used by the load generator) -----------------------

    @staticmethod
    def knn_payload(triple: Triple, k: int = 3, *,
                    pattern: TriplePattern | None = None,
                    deadline: float | None = None,
                    allow_partial: bool = False) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"triple": triple_to_dict(triple), "k": k}
        if pattern is not None:
            payload["pattern"] = _pattern_payload(pattern)
        if deadline is not None:
            payload["deadline"] = deadline
        if allow_partial:
            payload["allow_partial"] = True
        return payload

    @staticmethod
    def range_payload(triple: Triple, radius: float, *,
                      pattern: TriplePattern | None = None,
                      deadline: float | None = None,
                      allow_partial: bool = False) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"triple": triple_to_dict(triple), "radius": radius}
        if pattern is not None:
            payload["pattern"] = _pattern_payload(pattern)
        if deadline is not None:
            payload["deadline"] = deadline
        if allow_partial:
            payload["allow_partial"] = True
        return payload

    # -- endpoints ----------------------------------------------------------------------

    def knn(self, triple: Triple, k: int = 3, *, pattern: TriplePattern | None = None,
            deadline: float | None = None) -> Dict[str, Any]:
        """``POST /v1/knn`` with one query; returns the result object."""
        return self.request("POST", "/v1/knn",
                            self.knn_payload(triple, k, pattern=pattern,
                                             deadline=deadline))

    def knn_batch(self, payloads: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """``POST /v1/knn`` with a batch of query payloads; returns the results."""
        return self.request("POST", "/v1/knn", {"queries": list(payloads)})["results"]

    def range(self, triple: Triple, radius: float, *,
              pattern: TriplePattern | None = None,
              deadline: float | None = None) -> Dict[str, Any]:
        """``POST /v1/range`` with one query; returns the result object."""
        return self.request("POST", "/v1/range",
                            self.range_payload(triple, radius, pattern=pattern,
                                               deadline=deadline))

    def range_batch(self, payloads: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """``POST /v1/range`` with a batch of query payloads; returns the results."""
        return self.request("POST", "/v1/range", {"queries": list(payloads)})["results"]

    def insert(self, triple: Triple, *, document_id: str | None = None,
               idempotency_key: str | None = None) -> Dict[str, Any]:
        """``POST /v1/insert`` with one triple; returns ``{"seq": ..., ...}``.

        With ``idempotency_key``, the server deduplicates replays of the
        same key — which is what makes the stale-socket retry (and any
        caller-level retry loop) safe for this write.
        """
        payload: Dict[str, Any] = {"triple": triple_to_dict(triple)}
        if document_id is not None:
            payload["document_id"] = document_id
        return self._insert_request(payload, idempotency_key)

    def insert_many(self, triples: Sequence[Triple], *,
                    document_id: str | None = None,
                    idempotency_key: str | None = None) -> Dict[str, Any]:
        """``POST /v1/insert`` with a batch; returns the acceptance summary."""
        inserts: List[Dict[str, Any]] = []
        for triple in triples:
            entry: Dict[str, Any] = {"triple": triple_to_dict(triple)}
            if document_id is not None:
                entry["document_id"] = document_id
            inserts.append(entry)
        return self._insert_request({"inserts": inserts}, idempotency_key)

    def _insert_request(self, payload: Dict[str, Any],
                        idempotency_key: str | None) -> Dict[str, Any]:
        if idempotency_key is None:
            return self.request("POST", "/v1/insert", payload)
        return self.request(
            "POST", "/v1/insert", payload,
            headers={"Idempotency-Key": idempotency_key},
            # The key makes a replay a no-op server-side, so the transport's
            # one-shot stale-socket retry becomes safe for this write.
            idempotent=True,
        )

    # -- shard endpoints (partition scans over raw coordinates) -------------------------

    def shard_knn(self, coordinates: Sequence[float], k: int = 3) -> Dict[str, Any]:
        """``POST /v1/shard/knn`` against a shard server; returns the scan."""
        return self.request("POST", "/v1/shard/knn",
                            {"coordinates": list(coordinates), "k": k})

    def shard_range(self, coordinates: Sequence[float], radius: float) -> Dict[str, Any]:
        """``POST /v1/shard/range`` against a shard server; returns the scan."""
        return self.request("POST", "/v1/shard/range",
                            {"coordinates": list(coordinates), "radius": radius})

    def shard_info(self) -> Dict[str, Any]:
        """``GET /v1/shard`` — which partition the shard serves."""
        return self.request("GET", "/v1/shard")

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics`` — the unified metrics payload."""
        return self.request("GET", "/v1/metrics")

    def request_text(self, path: str, *,
                     headers: Optional[Dict[str, str]] = None) -> str:
        """One GET returning the raw body as text (non-JSON endpoints)."""
        response, raw = self._round_trip(
            "GET", f"{self._path_prefix}{path}", None,
            self._headers(headers), idempotent=True)
        if response.status >= 400:
            raise ServerError(raw.decode("utf-8", "replace") or response.reason,
                              status=response.status)
        return raw.decode("utf-8")

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus`` — the text exposition."""
        return self.request_text("/v1/metrics?format=prometheus")

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz``."""
        return self.request("GET", "/v1/healthz")

    def index_info(self) -> Dict[str, Any]:
        """``GET /v1/index``."""
        return self.request("GET", "/v1/index")

    def wait_ready(self, *, attempts: int = 50, delay: float = 0.1) -> Dict[str, Any]:
        """Poll ``/v1/healthz`` until the server answers (boot synchronisation)."""
        last_error: Optional[ServerError] = None
        for _ in range(attempts):
            try:
                return self.health()
            except ServerError as error:
                last_error = error
                time.sleep(delay)
        raise ServerError(
            f"server at {self.base_url} did not become ready: {last_error}"
        )


# -- the load generator --------------------------------------------------------------------

def query_payloads(triples: Sequence[Triple], count: int, *, k: int = 3,
                   radius: float = 0.1, knn_fraction: float = 0.6,
                   repeat_fraction: float = 0.3,
                   seed: int = 1) -> List[Tuple[str, Dict[str, Any]]]:
    """A reproducible wire-level mixed workload: ``(endpoint, payload)`` pairs.

    The HTTP twin of :func:`repro.workloads.queries.mixed_query_specs`, with
    the same mixing rules (k-NN share, in-batch repeats feeding the cache).
    """
    import random

    if not triples:
        raise WorkloadError("cannot derive query payloads from an empty triple set")
    if count < 1:
        raise WorkloadError("count must be >= 1")
    rng = random.Random(seed)
    payloads: List[Tuple[str, Dict[str, Any]]] = []
    for _ in range(count):
        if payloads and rng.random() < repeat_fraction:
            payloads.append(payloads[rng.randrange(len(payloads))])
            continue
        triple = triples[rng.randrange(len(triples))]
        if rng.random() < knn_fraction:
            payloads.append(("/v1/knn", ServerClient.knn_payload(triple, k)))
        else:
            payloads.append(("/v1/range", ServerClient.range_payload(triple, radius)))
    return payloads


def trace_costs(trace: Optional[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Every span of a ``debug.trace`` tree carrying cost counters, flattened.

    Returns ``{"span", "depth", "cost", ["partition"]}`` entries in tree
    order — the ``execute`` span's cluster-wide totals first, then each
    ``shard_scan``'s per-partition share on a sharded deployment.
    """
    found: List[Dict[str, Any]] = []

    def visit(node: Dict[str, Any], depth: int) -> None:
        meta = node.get("meta") or {}
        cost = meta.get("cost")
        if isinstance(cost, dict):
            entry: Dict[str, Any] = {
                "span": node.get("name"), "depth": depth, "cost": dict(cost),
            }
            if meta.get("partition") is not None:
                entry["partition"] = meta["partition"]
            found.append(entry)
        for child in node.get("children", ()):
            visit(child, depth + 1)

    if trace:
        for root in trace.get("spans", ()):
            visit(root, 0)
    return found


def _uncached_variant(body: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``body`` whose cache key no workload payload shares.

    The load run caches every payload it sends, and a cached result runs
    no search — sampling one verbatim would always report empty costs.
    Bumping ``k`` (or nudging ``radius``) keeps the query representative
    while forcing a real execution.
    """
    variant = dict(body)
    if "k" in variant:
        variant["k"] = int(variant["k"]) + 1
    elif "radius" in variant:
        variant["radius"] = float(variant["radius"]) * 1.0009765625
    return variant


def generate_load(base_url: str, payloads: Sequence[Tuple[str, Dict[str, Any]]], *,
                  threads: int = 4, timeout: float = 30.0,
                  on_result: Callable[[Dict[str, Any]], None] | None = None,
                  trace_sample: bool = False,
                  cost_sample: bool = False) -> Dict[str, Any]:
    """Replay a wire workload from ``threads`` concurrent clients.

    The payload list is split round-robin across the threads (every payload
    is sent exactly once).  Latency is measured client-side per request;
    the summary reports aggregate QPS over the whole run plus interpolated
    percentiles in milliseconds.  ``on_result`` (optional) sees every
    response body, called from the issuing thread.

    With ``trace_sample=True`` one extra request (the first payload) is sent
    *after* the timed run with ``X-Debug-Trace`` set, and the server's span
    tree lands in the summary under ``"trace_sample"`` — the quickest way to
    see where one request's wall time goes without touching the measured
    QPS.  (Run after, not during: the debug round trip serialises the whole
    span tree into the response and must not pollute the latency samples.)
    ``cost_sample=True`` rides the same debug round trip and additionally
    reports that request's per-span cost counters under ``"cost_sample"``.
    Because the timed run itself caches every workload payload — and a
    cache hit runs no search, so carries no cost — the cost sample sends
    an *uncached variant* of the first payload (``k`` bumped by one, or
    ``radius`` nudged) so the traced request demonstrably executes.
    """
    if threads < 1:
        raise WorkloadError(f"threads must be >= 1, got {threads}")
    if not payloads:
        raise WorkloadError("the load generator needs at least one payload")

    # Encode every distinct payload exactly once, up front: repeats in the
    # list reuse the same dict object, so the memo also guarantees repeated
    # queries hit the server with byte-identical bodies (what the async
    # transport's wire cache keys on).  Encoding outside the timed loop —
    # and, when no ``on_result`` wants the bodies, never decoding success
    # responses — keeps client CPU from polluting a server measurement.
    encoded: Dict[int, bytes] = {}
    for _, body in payloads:
        if id(body) not in encoded:
            encoded[id(body)] = json.dumps(body).encode("utf-8")

    shards: List[List[Tuple[str, bytes, Dict[str, Any]]]] = [[] for _ in range(threads)]
    for position, (path, body) in enumerate(payloads):
        shards[position % threads].append((path, encoded[id(body)], body))

    latencies: List[List[float]] = [[] for _ in range(threads)]
    failures: List[Optional[Exception]] = [None] * threads

    def worker(shard_index: int) -> None:
        client = ServerClient(base_url, timeout=timeout)
        try:
            for path, data, body in shards[shard_index]:
                started = time.perf_counter()
                try:
                    if on_result is None:
                        client.request_bytes("POST", path, data)
                        latencies[shard_index].append(
                            time.perf_counter() - started)
                    else:
                        raw, _ = client.request_bytes("POST", path, data)
                        latencies[shard_index].append(
                            time.perf_counter() - started)
                        on_result(json.loads(raw))
                except Exception as error:  # noqa: BLE001 - reported to the caller
                    # Covers the callback too: a raising on_result must surface
                    # as a run failure, not silently abandon the shard.
                    failures[shard_index] = error
                    return
        finally:
            client.close()

    workers = [
        threading.Thread(target=worker, args=(index,), name=f"load-gen-{index}")
        for index in range(threads)
    ]
    started = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    wall_seconds = time.perf_counter() - started

    for failure in failures:
        if failure is not None:
            raise failure

    samples = [sample for shard in latencies for sample in shard]
    summary: Dict[str, Any] = {
        "threads": float(threads),
        "requests": float(len(samples)),
        "wall_seconds": wall_seconds,
        "qps": len(samples) / wall_seconds if wall_seconds > 0 else 0.0,
        "latency_ms_mean": sum(samples) / len(samples) * 1000.0,
        "latency_ms_p50": percentile(samples, 0.50) * 1000.0,
        "latency_ms_p90": percentile(samples, 0.90) * 1000.0,
        "latency_ms_p99": percentile(samples, 0.99) * 1000.0,
    }
    if trace_sample or cost_sample:
        path, body = payloads[0]
        if cost_sample:
            body = _uncached_variant(body)
        with ServerClient(base_url, timeout=timeout) as client:
            response = client.request("POST", path, body,
                                      headers={"X-Debug-Trace": "1"})
        trace = response.get("debug", {}).get("trace")
        if trace_sample:
            summary["trace_sample"] = trace
        if cost_sample:
            summary["cost_sample"] = trace_costs(trace)
    return summary
