"""Ground-truth oracle for the effectiveness experiment (Fig. 8).

The paper asked five CIRA software engineers to specify, for each selected
triple, "the set of possible inconsistencies (ground truth)" by analysing
the requirements expressed as triples.  The engineers were applying the
formal definition of Section II (same subject, same object, antinomic
predicates); the reproduction therefore derives the ground truth from that
definition, with an optional *annotator-noise* model (random omissions and
spurious additions) so the sensitivity of the precision/recall figures to
imperfect annotations can be studied.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.errors import EvaluationError
from repro.rdf.triple import Triple
from repro.requirements.inconsistency import are_inconsistent, make_target_triple
from repro.semantics.vocabulary import Vocabulary

__all__ = ["GroundTruthCase", "GroundTruthOracle"]


@dataclass(frozen=True, slots=True)
class GroundTruthCase:
    """One effectiveness query case.

    Attributes
    ----------
    source_triple:
        The stored triple selected from a requirement.
    target_triple:
        The antinomic query triple built from it.
    expected:
        The ground-truth set ``T*``: the stored triples an annotator marks as
        inconsistent with the source triple.
    """

    source_triple: Triple
    target_triple: Triple
    expected: frozenset[Triple]


class GroundTruthOracle:
    """Derives ground-truth inconsistency sets from the corpus triples.

    Parameters
    ----------
    corpus_triples:
        Every stored (indexed) triple.
    vocabulary:
        The requirements function vocabulary (antinomy relation).
    omission_rate / addition_rate:
        Annotator-noise model: each true inconsistency is omitted with
        probability ``omission_rate``; with probability ``addition_rate`` a
        same-subject triple that is *not* formally inconsistent is added.
        Both default to 0 (perfect annotators).
    match_object_variants:
        When true (default), the oracle treats spelling variants of the same
        parameter ("start-up" / "startup" / "start_up") as the same object —
        which is what human annotators do when they read restated
        requirements.  When false, the strict formal definition (object
        equality) is applied.
    seed:
        Seed of the noise model.
    """

    def __init__(self, corpus_triples: Sequence[Triple], vocabulary: Vocabulary, *,
                 omission_rate: float = 0.0, addition_rate: float = 0.0,
                 match_object_variants: bool = True, seed: int = 11):
        if not corpus_triples:
            raise EvaluationError("the oracle needs a non-empty corpus")
        for name, value in (("omission_rate", omission_rate), ("addition_rate", addition_rate)):
            if not 0.0 <= value <= 1.0:
                raise EvaluationError(f"{name} must be in [0, 1], got {value}")
        self.corpus_triples = list(dict.fromkeys(corpus_triples))
        self.vocabulary = vocabulary
        self.omission_rate = omission_rate
        self.addition_rate = addition_rate
        self.match_object_variants = match_object_variants
        self._rng = random.Random(seed)
        self._by_subject: Dict[object, List[Triple]] = {}
        for triple in self.corpus_triples:
            self._by_subject.setdefault(triple.subject, []).append(triple)

    # -- ground-truth construction -----------------------------------------------------------

    @staticmethod
    def _normalise_object_name(name: str) -> str:
        return name.replace("-", "").replace("_", "").lower()

    def _objects_match(self, triple_a: Triple, triple_b: Triple) -> bool:
        if triple_a.object == triple_b.object:
            return True
        if not self.match_object_variants:
            return False
        from repro.rdf.terms import Concept

        object_a, object_b = triple_a.object, triple_b.object
        if isinstance(object_a, Concept) and isinstance(object_b, Concept):
            return (
                object_a.prefix == object_b.prefix
                and self._normalise_object_name(object_a.name)
                == self._normalise_object_name(object_b.name)
            )
        return False

    def _annotator_marks_inconsistent(self, source: Triple, candidate: Triple) -> bool:
        """What an annotator applying the Section II definition would mark.

        The subject must match exactly; the object must match up to spelling
        variants (when enabled); the predicates must be antinomic.
        """
        if candidate == source or candidate.subject != source.subject:
            return False
        if not self._objects_match(source, candidate):
            return False
        normalised_candidate = candidate.replace(object=source.object)
        return are_inconsistent(source, normalised_candidate, self.vocabulary)

    def expected_inconsistencies(self, source: Triple) -> Set[Triple]:
        """The ground truth ``T*``: stored triples an annotator marks as
        inconsistent with ``source``."""
        candidates = self._by_subject.get(source.subject, [])
        return {
            triple for triple in candidates
            if self._annotator_marks_inconsistent(source, triple)
        }

    def _with_noise(self, source: Triple, expected: Set[Triple]) -> Set[Triple]:
        if self.omission_rate == 0.0 and self.addition_rate == 0.0:
            return expected
        noisy = {
            triple for triple in expected if self._rng.random() >= self.omission_rate
        }
        if self.addition_rate > 0.0:
            candidates = [
                triple for triple in self._by_subject.get(source.subject, [])
                if triple != source and triple not in expected
            ]
            for triple in candidates:
                if self._rng.random() < self.addition_rate:
                    noisy.add(triple)
        return noisy

    def case_for(self, source: Triple) -> GroundTruthCase:
        """Build the full query case (target triple + ground truth) for one source triple."""
        target = make_target_triple(source, self.vocabulary)
        expected = self._with_noise(source, self.expected_inconsistencies(source))
        return GroundTruthCase(
            source_triple=source,
            target_triple=target,
            expected=frozenset(expected),
        )

    def build_cases(self, count: int, *, require_nonempty: bool = True,
                    seed: int | None = None) -> List[GroundTruthCase]:
        """Randomly select ``count`` source triples and build their query cases.

        This mirrors the paper's protocol: "for 100 different requirements,
        we randomly selected a triple from the related set and generated the
        equivalent target (query) triple".  When ``require_nonempty`` is
        true, only source triples whose ground-truth set is non-empty are
        selected (the paper's annotators always had at least the injected
        conflicting statement to point at).

        Raises
        ------
        EvaluationError
            If the corpus does not contain enough eligible source triples.
        """
        if count < 1:
            raise EvaluationError("count must be >= 1")
        rng = random.Random(self._rng.random() if seed is None else seed)
        shuffled = list(self.corpus_triples)
        rng.shuffle(shuffled)
        cases: List[GroundTruthCase] = []
        for triple in shuffled:
            try:
                case = self.case_for(triple)
            except Exception:
                continue
            if require_nonempty and not case.expected:
                continue
            cases.append(case)
            if len(cases) == count:
                return cases
        if not cases:
            raise EvaluationError(
                "no eligible source triples found (is the inconsistency rate zero?)"
            )
        return cases
