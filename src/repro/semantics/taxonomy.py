"""Concept taxonomies (IS-A hierarchies).

The paper computes concept/concept sub-distances with "any distance semantic
based on the available ontologies, taxonomies or vocabularies, i.e.
Wu & Palmer".  All of the classical similarity measures (Wu & Palmer, path,
Leacock–Chodorow, Resnik, Lin, Jiang–Conrath) need the same primitives from
the underlying taxonomy:

* the depth of a concept (distance from the root),
* the set of ancestors of a concept,
* the least common subsumer (LCS) of two concepts,
* the shortest IS-A path length between two concepts,
* optionally, per-concept information content.

:class:`Taxonomy` provides those primitives over an in-memory IS-A DAG
(multiple parents are allowed; cycles are rejected).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import TaxonomyError

__all__ = ["Taxonomy"]


class Taxonomy:
    """An IS-A directed acyclic graph over concept names.

    Concepts are identified by plain strings (the fully-qualified or local
    names used by the vocabulary layer).  Every taxonomy has a single
    *virtual root*; top-level concepts added without a parent become
    children of that root so that any two concepts always have a least
    common subsumer.
    """

    #: Name of the implicit root concept.
    ROOT = "⊤"

    def __init__(self, root_name: str | None = None):
        self._root = root_name or self.ROOT
        self._parents: Dict[str, Set[str]] = {self._root: set()}
        self._children: Dict[str, Set[str]] = {self._root: set()}
        self._depth_cache: Dict[str, int] = {}
        self._ancestor_cache: Dict[str, Set[str]] = {}

    # -- construction -----------------------------------------------------------

    @property
    def root(self) -> str:
        """The name of the (virtual) root concept."""
        return self._root

    def add_concept(self, concept: str, parents: Sequence[str] | str | None = None) -> None:
        """Add ``concept`` with the given parent(s).

        A concept added without parents (or with an unknown parent list)
        hangs directly below the root.  Adding an existing concept with new
        parents extends its parent set.

        Raises
        ------
        TaxonomyError
            If the edge would introduce a cycle, or a parent is unknown.
        """
        if not concept:
            raise TaxonomyError("cannot add a concept with an empty name")
        if concept == self._root:
            raise TaxonomyError("the root concept is implicit and cannot be re-added")
        if isinstance(parents, str):
            parents = [parents]
        parent_list = list(parents) if parents else [self._root]

        self._parents.setdefault(concept, set())
        self._children.setdefault(concept, set())

        for parent in parent_list:
            if parent not in self._parents:
                raise TaxonomyError(
                    f"unknown parent {parent!r} for concept {concept!r}; add parents first"
                )
            if parent == concept or self._reachable(concept, parent):
                raise TaxonomyError(
                    f"adding {concept!r} below {parent!r} would create a cycle"
                )
            self._parents[concept].add(parent)
            self._children[parent].add(concept)
        self._invalidate_caches()

    def add_edges(self, edges: Iterable[Tuple[str, str]]) -> None:
        """Add many ``(child, parent)`` edges, creating missing parents under the root."""
        for child, parent in edges:
            if parent not in self._parents:
                self.add_concept(parent)
            self.add_concept(child, parent)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, str]], root_name: str | None = None) -> "Taxonomy":
        """Build a taxonomy from ``(child, parent)`` pairs."""
        taxonomy = cls(root_name)
        taxonomy.add_edges(edges)
        return taxonomy

    @classmethod
    def from_nested(cls, tree: Mapping[str, object], root_name: str | None = None) -> "Taxonomy":
        """Build a taxonomy from a nested mapping ``{concept: {child: {...}}}``."""
        taxonomy = cls(root_name)

        def _add(sub: Mapping[str, object], parent: Optional[str]) -> None:
            for concept, children in sub.items():
                taxonomy.add_concept(concept, parent)
                if isinstance(children, Mapping):
                    _add(children, concept)

        _add(tree, None)
        return taxonomy

    def _invalidate_caches(self) -> None:
        self._depth_cache.clear()
        self._ancestor_cache.clear()

    def _reachable(self, start: str, target: str) -> bool:
        """True if ``target`` is reachable from ``start`` following child edges."""
        if start not in self._children:
            return False
        queue = deque([start])
        seen = {start}
        while queue:
            node = queue.popleft()
            if node == target:
                return True
            for child in self._children.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return False

    # -- basic queries ------------------------------------------------------------

    def __contains__(self, concept: str) -> bool:
        return concept in self._parents

    def __len__(self) -> int:
        """Number of concepts, excluding the virtual root."""
        return len(self._parents) - 1

    def __iter__(self) -> Iterator[str]:
        return (concept for concept in self._parents if concept != self._root)

    def concepts(self) -> List[str]:
        """All concept names (excluding the virtual root), sorted."""
        return sorted(self)

    def parents_of(self, concept: str) -> Set[str]:
        """Direct parents of a concept."""
        self._require(concept)
        return set(self._parents[concept])

    def children_of(self, concept: str) -> Set[str]:
        """Direct children of a concept."""
        self._require(concept)
        return set(self._children[concept])

    def leaves(self) -> List[str]:
        """Concepts with no children."""
        return sorted(c for c in self if not self._children[c])

    def _require(self, concept: str) -> None:
        if concept not in self._parents:
            raise TaxonomyError(f"unknown concept {concept!r}")

    # -- structural primitives used by similarity measures --------------------------

    def depth(self, concept: str) -> int:
        """Length of the shortest path from the root to ``concept`` (root depth is 0)."""
        self._require(concept)
        cached = self._depth_cache.get(concept)
        if cached is not None:
            return cached
        depth = self._shortest_up_path(concept, self._root)
        if depth is None:  # pragma: no cover - every concept is attached to the root
            raise TaxonomyError(f"concept {concept!r} is not connected to the root")
        self._depth_cache[concept] = depth
        return depth

    def max_depth(self) -> int:
        """Depth of the deepest concept in the taxonomy."""
        if len(self) == 0:
            return 0
        return max(self.depth(concept) for concept in self)

    def ancestors(self, concept: str, *, include_self: bool = True) -> Set[str]:
        """All ancestors of ``concept`` (including the root and, optionally, itself)."""
        self._require(concept)
        cached = self._ancestor_cache.get(concept)
        if cached is None:
            cached = set()
            queue = deque([concept])
            while queue:
                node = queue.popleft()
                for parent in self._parents.get(node, ()):
                    if parent not in cached:
                        cached.add(parent)
                        queue.append(parent)
            self._ancestor_cache[concept] = cached
        result = set(cached)
        if include_self:
            result.add(concept)
        return result

    def descendants(self, concept: str, *, include_self: bool = True) -> Set[str]:
        """All descendants of ``concept`` (optionally including itself)."""
        self._require(concept)
        result: Set[str] = {concept} if include_self else set()
        queue = deque([concept])
        while queue:
            node = queue.popleft()
            for child in self._children.get(node, ()):
                if child not in result:
                    result.add(child)
                    queue.append(child)
        if not include_self:
            result.discard(concept)
        return result

    def _shortest_up_path(self, start: str, target: str) -> Optional[int]:
        """Shortest number of IS-A edges from ``start`` up to ``target``."""
        if start == target:
            return 0
        queue = deque([(start, 0)])
        seen = {start}
        while queue:
            node, distance = queue.popleft()
            for parent in self._parents.get(node, ()):
                if parent == target:
                    return distance + 1
                if parent not in seen:
                    seen.add(parent)
                    queue.append((parent, distance + 1))
        return None

    def lcs(self, concept_a: str, concept_b: str) -> str:
        """Least common subsumer: the deepest shared ancestor of the two concepts."""
        ancestors_a = self.ancestors(concept_a)
        ancestors_b = self.ancestors(concept_b)
        common = ancestors_a & ancestors_b
        if not common:  # pragma: no cover - the root is always shared
            return self._root
        return max(common, key=lambda concept: (self.depth(concept), concept))

    def path_length(self, concept_a: str, concept_b: str) -> int:
        """Shortest IS-A path length between two concepts (through their LCS)."""
        self._require(concept_a)
        self._require(concept_b)
        if concept_a == concept_b:
            return 0
        best: Optional[int] = None
        common = self.ancestors(concept_a) & self.ancestors(concept_b)
        for ancestor in common:
            up_a = self._shortest_up_path(concept_a, ancestor)
            up_b = self._shortest_up_path(concept_b, ancestor)
            if up_a is None or up_b is None:
                continue
            total = up_a + up_b
            if best is None or total < best:
                best = total
        if best is None:  # pragma: no cover - the root is always shared
            raise TaxonomyError(
                f"no common ancestor between {concept_a!r} and {concept_b!r}"
            )
        return best

    # -- information content ---------------------------------------------------------

    def intrinsic_information_content(self, concept: str) -> float:
        """Intrinsic IC (Seco et al.): ``1 - log(|descendants|)/log(|concepts|)``.

        Returns a value in ``[0, 1]``; leaves get IC 1, the root gets IC 0.
        Used by Resnik/Lin/Jiang–Conrath when no corpus statistics are
        available.
        """
        self._require(concept)
        total = len(self) + 1  # include the root in the universe
        if total <= 1:
            return 0.0
        if concept == self._root:
            return 0.0
        import math

        descendant_count = len(self.descendants(concept, include_self=True))
        return 1.0 - math.log(descendant_count) / math.log(total)

    def __repr__(self) -> str:
        return f"Taxonomy(concepts={len(self)}, max_depth={self.max_depth()})"
