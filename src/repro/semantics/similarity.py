"""Taxonomy-based concept similarity and dissimilarity measures.

The paper computes concept/concept sub-distances with "any distance semantic
based on the available ontologies, taxonomies or vocabularies, i.e.
Wu & Palmer" and cites Resnik's information-based measure [9].  This module
implements the classical family over a :class:`~repro.semantics.taxonomy.Taxonomy`:

* Wu & Palmer similarity (default in the reproduction, as in the paper),
* path similarity,
* Leacock–Chodorow similarity,
* Resnik, Lin and Jiang–Conrath information-content measures.

Every measure exposes a similarity in ``[0, 1]`` (after normalisation where
needed) and a corresponding distance ``1 - similarity`` so that it can plug
into the weighted triple distance of Eq. (1).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional

from repro.errors import DistanceError
from repro.semantics.taxonomy import Taxonomy

__all__ = [
    "ConceptSimilarity",
    "WuPalmerSimilarity",
    "PathSimilarity",
    "LeacockChodorowSimilarity",
    "ResnikSimilarity",
    "LinSimilarity",
    "JiangConrathSimilarity",
    "similarity_by_name",
]


class ConceptSimilarity:
    """Base class for taxonomy-based concept similarity measures.

    Subclasses implement :meth:`similarity` returning a value in ``[0, 1]``
    (1 = identical meaning).  :meth:`distance` is always ``1 - similarity``.
    """

    #: Registry name used by :func:`similarity_by_name`.
    name = "abstract"

    def __init__(self, taxonomy: Taxonomy):
        self.taxonomy = taxonomy

    def similarity(self, concept_a: str, concept_b: str) -> float:
        raise NotImplementedError

    def distance(self, concept_a: str, concept_b: str) -> float:
        """Normalised dissimilarity in ``[0, 1]``."""
        return 1.0 - self.similarity(concept_a, concept_b)

    def __call__(self, concept_a: str, concept_b: str) -> float:
        return self.similarity(concept_a, concept_b)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(taxonomy={self.taxonomy!r})"


class WuPalmerSimilarity(ConceptSimilarity):
    """Wu & Palmer (1994): ``2·depth(lcs) / (depth(a) + depth(b))``.

    The measure the paper explicitly names for concept/concept pairs.  The
    virtual root has depth 0, so two top-level siblings have similarity 0
    and identical concepts have similarity 1.
    """

    name = "wu-palmer"

    def similarity(self, concept_a: str, concept_b: str) -> float:
        if concept_a == concept_b:
            return 1.0
        lcs = self.taxonomy.lcs(concept_a, concept_b)
        depth_lcs = self.taxonomy.depth(lcs)
        depth_a = self.taxonomy.depth(concept_a)
        depth_b = self.taxonomy.depth(concept_b)
        denominator = depth_a + depth_b
        if denominator == 0:
            return 1.0
        return (2.0 * depth_lcs) / denominator


class PathSimilarity(ConceptSimilarity):
    """Path similarity: ``1 / (1 + shortest_path_length)``."""

    name = "path"

    def similarity(self, concept_a: str, concept_b: str) -> float:
        length = self.taxonomy.path_length(concept_a, concept_b)
        return 1.0 / (1.0 + length)


class LeacockChodorowSimilarity(ConceptSimilarity):
    """Leacock–Chodorow: ``-log(path / (2 * max_depth))``, normalised to [0, 1].

    The raw LCh value is unbounded, so the similarity is normalised by the
    value obtained for identical concepts (path length clamped to 1), which
    makes it comparable to the other measures.
    """

    name = "leacock-chodorow"

    def similarity(self, concept_a: str, concept_b: str) -> float:
        max_depth = max(self.taxonomy.max_depth(), 1)
        length = max(self.taxonomy.path_length(concept_a, concept_b), 0)
        # Clamp to at least 1 edge to keep the logarithm finite; identical
        # concepts are handled by returning the normalising maximum.
        raw = -math.log((length + 1) / (2.0 * max_depth + 1))
        best = -math.log(1.0 / (2.0 * max_depth + 1))
        if best <= 0:
            return 1.0 if concept_a == concept_b else 0.0
        return max(0.0, min(1.0, raw / best))


class _InformationContentMixin:
    """Shared IC lookup: corpus-provided IC when available, intrinsic IC otherwise."""

    def __init__(self, taxonomy: Taxonomy,
                 information_content: Mapping[str, float] | None = None):
        super().__init__(taxonomy)  # type: ignore[call-arg]
        self._ic: Optional[Dict[str, float]] = (
            dict(information_content) if information_content is not None else None
        )

    def information_content(self, concept: str) -> float:
        """Information content of a concept (corpus IC if provided, else intrinsic)."""
        if self._ic is not None and concept in self._ic:
            return self._ic[concept]
        return self.taxonomy.intrinsic_information_content(concept)


class ResnikSimilarity(_InformationContentMixin, ConceptSimilarity):
    """Resnik (1995/2011): similarity is the IC of the least common subsumer.

    With intrinsic IC the value already lies in ``[0, 1]``; with corpus IC it
    is normalised by the maximum IC observed so the result stays comparable.
    """

    name = "resnik"

    def similarity(self, concept_a: str, concept_b: str) -> float:
        if concept_a == concept_b:
            return 1.0
        lcs = self.taxonomy.lcs(concept_a, concept_b)
        value = self.information_content(lcs)
        maximum = self._max_ic()
        if maximum <= 0:
            return 0.0
        return max(0.0, min(1.0, value / maximum))

    def _max_ic(self) -> float:
        if self._ic:
            return max(self._ic.values(), default=1.0)
        return 1.0


class LinSimilarity(_InformationContentMixin, ConceptSimilarity):
    """Lin (1998): ``2·IC(lcs) / (IC(a) + IC(b))``."""

    name = "lin"

    def similarity(self, concept_a: str, concept_b: str) -> float:
        if concept_a == concept_b:
            return 1.0
        lcs = self.taxonomy.lcs(concept_a, concept_b)
        ic_lcs = self.information_content(lcs)
        ic_a = self.information_content(concept_a)
        ic_b = self.information_content(concept_b)
        denominator = ic_a + ic_b
        if denominator <= 0:
            return 1.0 if ic_lcs == 0 else 0.0
        return max(0.0, min(1.0, (2.0 * ic_lcs) / denominator))


class JiangConrathSimilarity(_InformationContentMixin, ConceptSimilarity):
    """Jiang–Conrath: distance ``IC(a) + IC(b) - 2·IC(lcs)``, mapped to a similarity.

    The raw JC distance for intrinsic IC lies in ``[0, 2]``; the similarity
    is ``1 - distance/2`` clamped to ``[0, 1]``.
    """

    name = "jiang-conrath"

    def similarity(self, concept_a: str, concept_b: str) -> float:
        if concept_a == concept_b:
            return 1.0
        lcs = self.taxonomy.lcs(concept_a, concept_b)
        jc_distance = (
            self.information_content(concept_a)
            + self.information_content(concept_b)
            - 2.0 * self.information_content(lcs)
        )
        return max(0.0, min(1.0, 1.0 - jc_distance / 2.0))


_MEASURES: Dict[str, Callable[..., ConceptSimilarity]] = {
    WuPalmerSimilarity.name: WuPalmerSimilarity,
    PathSimilarity.name: PathSimilarity,
    LeacockChodorowSimilarity.name: LeacockChodorowSimilarity,
    ResnikSimilarity.name: ResnikSimilarity,
    LinSimilarity.name: LinSimilarity,
    JiangConrathSimilarity.name: JiangConrathSimilarity,
}


def similarity_by_name(name: str, taxonomy: Taxonomy, **kwargs) -> ConceptSimilarity:
    """Instantiate a similarity measure by registry name.

    Raises
    ------
    DistanceError
        If the name is unknown.
    """
    try:
        factory = _MEASURES[name]
    except KeyError:
        known = ", ".join(sorted(_MEASURES))
        raise DistanceError(f"unknown similarity measure {name!r}; known: {known}") from None
    return factory(taxonomy, **kwargs)
