"""Deep-observability endpoints over HTTP: profile, history, cost, wire bytes.

Everything here runs against a *real* server on the loopback interface —
the point is that the profiler, the history ring and the cost counters are
reachable (and correct) through the same transport production traffic
uses.
"""

from __future__ import annotations

import logging
import threading

import pytest

from server_corpus import BASE_TRIPLES
from repro.errors import ServerError
from repro.obs.prometheus import parse_exposition
from repro.workloads import ServerClient
from repro.workloads.http_client import trace_costs


class TestProfileEndpoint:
    def test_on_demand_top_profile(self, make_server):
        _, client = make_server()
        payload = client.request("GET", "/v1/debug/profile?seconds=0.05")
        assert payload["source"] == "on_demand"
        assert payload["samples"] > 0
        assert payload["functions"]

    def test_collapsed_profile_is_plain_text(self, make_server):
        _, client = make_server()
        text = client.request_text(
            "/v1/debug/profile?seconds=0.05&format=collapsed")
        for line in text.strip().splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and frames

    def test_bad_format_is_a_400(self, make_server):
        _, client = make_server()
        with pytest.raises(ServerError) as excinfo:
            client.request("GET", "/v1/debug/profile?format=svg")
        assert excinfo.value.status == 400

    def test_profile_under_load_attributes_samples_to_repro_frames(
            self, make_server):
        """Acceptance: >= 80% of load-time samples land in repro code.

        Every thread that matters during a load burst — handler threads,
        engine workers, the client threads themselves — runs inside
        ``repro.*`` modules; only the accept loop (and pytest's own main
        thread, which is blocked inside the repro HTTP client here) is
        pure stdlib.
        """
        # Two engine workers + eight clients keep the pool saturated: an
        # *idle* pool worker parks in stdlib queue frames, which is honest
        # but not what this acceptance check is about (the async transport
        # keeps its own pool of spare workers, so those lines are skipped
        # below rather than counted against the attribution ratio).
        server, client = make_server(workers=2)
        stop = threading.Event()

        def load():
            with ServerClient(server.url) as worker:
                i = 0
                while not stop.is_set():
                    worker.knn(BASE_TRIPLES[i % len(BASE_TRIPLES)], 1 + i % 4)
                    i += 1

        threads = [threading.Thread(target=load, daemon=True)
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        try:
            text = client.request_text(
                "/v1/debug/profile?seconds=0.5&format=collapsed")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        total = repro = 0
        for line in text.strip().splitlines():
            frames, count = line.rsplit(" ", 1)
            if frames.endswith("concurrent.futures.thread._worker"):
                continue  # an idle pool worker parked between requests
            total += int(count)
            if "repro." in frames:
                repro += int(count)
        assert total > 0
        assert repro / total >= 0.8, text


class TestHistoryEndpoint:
    def test_history_payload_shape(self, make_server):
        _, client = make_server()
        payload = client.request("GET", "/v1/history")
        assert set(payload) == {"interval_seconds", "capacity", "entries"}
        assert payload["capacity"] > 0

    def test_history_records_query_activity(self, make_server):
        server, client = make_server()
        for k in (1, 2, 3):
            client.knn(BASE_TRIPLES[0], k)
        # Force a window to close now instead of waiting out the interval.
        server.app.history.tick()
        payload = client.request("GET", "/v1/history")
        latest = payload["entries"][-1]
        assert latest["queries"] >= 3
        assert latest["qps"] > 0
        assert latest["p50_ms"] is not None
        assert latest["distance_computations"] > 0


class TestCostAccounting:
    def test_traced_query_carries_per_span_cost(self, make_server):
        server, client = make_server()
        client.knn(BASE_TRIPLES[0], 3)  # warm-up; the traced request is next
        payload = client.request(
            "POST", "/v1/knn", ServerClient.knn_payload(BASE_TRIPLES[1], 4),
            headers={"X-Debug-Trace": "1"})
        entries = trace_costs(payload["debug"]["trace"])
        assert entries, payload["debug"]["trace"]
        (execute,) = [e for e in entries if e["span"] == "execute"]
        assert execute["cost"]["distance_computations"] > 0
        assert execute["cost"]["buckets_scanned"] > 0

    def test_cached_results_report_no_cost(self, make_server):
        _, client = make_server()
        body = ServerClient.knn_payload(BASE_TRIPLES[2], 3)
        client.request("POST", "/v1/knn", body)
        payload = client.request("POST", "/v1/knn", body,
                                 headers={"X-Debug-Trace": "1"})
        assert trace_costs(payload["debug"]["trace"]) == []

    def test_cost_totals_reach_metrics_and_exposition(self, make_server):
        _, client = make_server()
        client.knn(BASE_TRIPLES[0], 5)
        cost = client.metrics()["serving"]["cost"]
        assert cost["distance_computations"] > 0
        families = parse_exposition(client.metrics_prometheus())
        series = {dict(s.labels)["counter"]: s.value
                  for s in families["repro_query_cost_total"].samples}
        assert series == {k: float(v) for k, v in cost.items()}
        histogram = families["repro_query_distance_computations"]
        counts = [s for s in histogram.samples
                  if s.name.endswith("_count")]
        assert sum(s.value for s in counts) >= 1

    def test_slow_query_log_explains_cost(self, make_server, caplog):
        _, client = make_server(slow_query_ms=0.0)
        with caplog.at_level(logging.WARNING, logger="repro.slow_query"):
            client.knn(BASE_TRIPLES[0], 3)
        records = [r for r in caplog.records
                   if getattr(r, "event", None) == "slow_query"]
        assert records
        assert records[-1].cost["distance_computations"] > 0


class TestWireBytes:
    def test_http_body_bytes_are_counted_both_ways(self, make_server):
        server, client = make_server()
        client.knn(BASE_TRIPLES[0], 3)
        totals = server.wire_bytes()
        assert totals["in"] > 0 and totals["out"] > 0
        families = parse_exposition(client.metrics_prometheus())
        series = {dict(s.labels)["direction"]: s.value
                  for s in families["repro_http_bytes_total"].samples}
        assert series["in"] >= totals["in"]
        assert series["out"] >= totals["out"]
