"""Tests for the context-local span recorder."""

import concurrent.futures
import time

from repro.obs.tracing import (
    Trace,
    activate,
    capture_context,
    current_trace,
    new_trace_id,
    record_span,
    resume_context,
    sanitize_trace_id,
    span,
)


class TestTraceIds:
    def test_new_ids_are_unique_hex(self):
        first, second = new_trace_id(), new_trace_id()
        assert first != second
        assert len(first) == 32
        int(first, 16)  # parses as hex

    def test_sanitize_accepts_plausible_client_ids(self):
        assert sanitize_trace_id("abc-123") == "abc-123"
        assert sanitize_trace_id("  padded  ") == "padded"

    def test_sanitize_replaces_garbage(self):
        assert sanitize_trace_id(None) != ""
        assert sanitize_trace_id("") not in ("", None)
        assert sanitize_trace_id("has space") != "has space"
        assert sanitize_trace_id("x" * 200) != "x" * 200
        assert sanitize_trace_id("\x00\x01") not in ("\x00\x01",)


class TestSpans:
    def test_span_is_noop_without_active_trace(self):
        assert current_trace() is None
        with span("anything") as trace:
            assert trace is None
        record_span("also_nothing", 0.0, 1.0)  # must not raise

    def test_nested_spans_build_a_tree(self):
        trace = Trace("t1")
        with activate(trace):
            with span("request"):
                with span("parse"):
                    pass
                with span("handle", endpoint="/v1/knn"):
                    with span("execute"):
                        pass
        tree = trace.to_dict()
        assert tree["trace_id"] == "t1"
        (request,) = tree["spans"]
        assert request["name"] == "request"
        assert [child["name"] for child in request["children"]] == \
            ["parse", "handle"]
        (execute,) = request["children"][1]["children"]
        assert execute["name"] == "execute"
        assert request["children"][1]["meta"] == {"endpoint": "/v1/knn"}

    def test_durations_are_positive_and_nested(self):
        trace = Trace()
        with activate(trace):
            with span("outer"):
                time.sleep(0.01)
        (outer,) = trace.to_dict()["spans"]
        assert outer["duration_ms"] >= 10.0
        assert "in_progress" not in outer

    def test_unfinished_span_reported_in_progress(self):
        trace = Trace()
        trace.begin("open_ended", None)
        (node,) = trace.to_dict()["spans"]
        assert node["in_progress"] is True

    def test_record_span_attaches_measured_interval(self):
        trace = Trace()
        with activate(trace):
            with span("handle"):
                start = time.perf_counter() - 0.05
                record_span("queue_wait", start, time.perf_counter())
        (handle,) = trace.to_dict()["spans"]
        (queue_wait,) = handle["children"]
        assert queue_wait["name"] == "queue_wait"
        assert queue_wait["duration_ms"] >= 45.0

    def test_activation_restores_previous_state(self):
        outer = Trace("outer")
        inner = Trace("inner")
        with activate(outer):
            with span("outer_span"):
                with activate(inner):
                    assert current_trace() is inner
                    # the inner trace does not inherit the outer parent span
                    with span("inner_span"):
                        pass
                assert current_trace() is outer
        assert [node["name"] for node in inner.to_dict()["spans"]] == \
            ["inner_span"]


class TestThreadHandoff:
    def test_worker_spans_parent_under_the_submitting_span(self):
        trace = Trace()
        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            with activate(trace):
                with span("scatter"):
                    context = capture_context()

                    def scan(partition):
                        with resume_context(context):
                            with span("shard_scan", partition=partition):
                                return partition

                    futures = [pool.submit(scan, p) for p in ("P0", "P1")]
                    for future in futures:
                        future.result()
        (scatter,) = trace.to_dict()["spans"]
        names = sorted(child["meta"]["partition"]
                       for child in scatter["children"])
        assert names == ["P0", "P1"]
        assert all(child["name"] == "shard_scan"
                   for child in scatter["children"])

    def test_resume_of_empty_context_is_noop(self):
        with resume_context((None, None)) as trace:
            assert trace is None
            with span("ignored"):
                pass
