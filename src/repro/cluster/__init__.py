"""Simulated distributed environment: compute nodes, message bus, cost clock.

This package is the reproduction's substitute for the paper's MPJ-based
cluster (see DESIGN.md, substitution table)."""

from repro.cluster.clock import CostSnapshot, SimulatedClock
from repro.cluster.cluster import SimulatedCluster
from repro.cluster.message import Message, MessageKind
from repro.cluster.network import MessageBus
from repro.cluster.node import ComputeNode
from repro.cluster.transport import (PartitionRouter, PartitionScan,
                                     PartitionTransport, SimulatedBusRouter,
                                     SimulatedClusterTransport)

__all__ = [
    "SimulatedClock",
    "CostSnapshot",
    "SimulatedCluster",
    "Message",
    "MessageKind",
    "MessageBus",
    "ComputeNode",
    "PartitionScan",
    "PartitionTransport",
    "PartitionRouter",
    "SimulatedBusRouter",
    "SimulatedClusterTransport",
]
