"""The append-only write-ahead log of the live-ingestion subsystem.

Every insert is appended here *before* it becomes visible in the delta
segment, so a crash loses nothing: recovery replays the log tail on top of
the last index snapshot (:func:`repro.service.snapshot.save_index` records
the highest sequence number already folded into the tree, everything after
it is re-projected into a fresh delta).

Format: JSON lines, one record per insert, via the
:mod:`repro.io.serialization` helpers::

    {"seq": 17, "triple": {...}, "document_id": "doc-3"}

Sequence numbers are contiguous and start at 1.  Opening an existing log
scans it once to find the next sequence number (replay-on-open); a torn
final line — the signature of a process killed mid-append — is dropped and
counted, never treated as corruption.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.errors import ParseError
from repro.io.serialization import (dump_json_line, iter_json_lines, triple_from_dict,
                                    triple_to_dict)
from repro.rdf.triple import Triple

__all__ = ["WalRecord", "WriteAheadLog"]


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One logged insert: its sequence number, triple and optional provenance."""

    seq: int
    triple: Triple
    document_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"seq": self.seq, "triple": triple_to_dict(self.triple)}
        if self.document_id is not None:
            payload["document_id"] = self.document_id
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WalRecord":
        return cls(
            seq=int(payload["seq"]),
            triple=triple_from_dict(payload["triple"]),
            document_id=payload.get("document_id"),
        )


class WriteAheadLog:
    """An append-only, crash-tolerant log of inserted triples.

    Parameters
    ----------
    path:
        The log file; created (with parents) when missing.
    fsync:
        When True every append is ``fsync``-ed for durability against power
        loss, not just process death.  Off by default: the simulated-cluster
        benchmarks measure ingest throughput, and per-record fsync is the
        dominant cost on real disks.
    keep_records:
        When True the open-time scan retains every parsed record payload in
        memory, so the first :meth:`replay` (and any vocabulary harvesting
        in between, via :meth:`preloaded_payloads`) is served without
        re-reading the file — the log is read exactly once at boot.  The
        retained list is dropped after that first replay.

    Appends are serialised by an internal lock, so the log can be shared by
    concurrent inserter threads.
    """

    def __init__(self, path: str | pathlib.Path, *, fsync: bool = False,
                 keep_records: bool = False):
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._torn_records = 0
        self._last_seq = 0
        self._record_count = 0
        self._preloaded: Optional[list] = [] if keep_records else None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            self._scan_existing()
        self._file = self.path.open("a", encoding="utf-8")

    def _scan_existing(self) -> None:
        """Replay-on-open: find the last durable record and repair a torn tail.

        Only newline-terminated, parseable, sequence-contiguous records
        count.  A torn final record — the signature of a crash mid-append —
        is truncated away so the next append starts on a clean line; torn or
        corrupt bytes anywhere *before* the tail mean real corruption and
        raise.
        """
        data = self.path.read_bytes()
        position = 0
        valid_end = 0
        while position < len(data):
            newline = data.find(b"\n", position)
            complete = newline != -1
            next_position = (newline + 1) if complete else len(data)
            text = data[position:next_position].decode("utf-8", errors="replace").strip()
            if text:
                payload = None
                seq = None
                if complete:
                    try:
                        payload = json.loads(text)
                        seq = int(payload["seq"])
                    except (ValueError, KeyError, TypeError):
                        seq = None
                if seq is None:
                    if next_position >= len(data):
                        self._torn_records = 1
                        break
                    raise ParseError(
                        f"write-ahead log {self.path} is corrupt before its tail"
                    )
                # The first record anchors the numbering (a truncated log
                # legitimately starts past 1); later records must follow on.
                if self._record_count and seq != self._last_seq + 1:
                    raise ParseError(
                        f"write-ahead log {self.path} is not contiguous: record "
                        f"{seq} follows {self._last_seq}"
                    )
                self._last_seq = seq
                self._record_count += 1
                if self._preloaded is not None:
                    self._preloaded.append(payload)
            position = next_position
            valid_end = next_position
        if valid_end < len(data):
            with self.path.open("r+b") as handle:
                handle.truncate(valid_end)

    # -- appending ----------------------------------------------------------------------

    def append(self, triple: Triple, *, document_id: str | None = None) -> int:
        """Durably log one insert; returns its sequence number."""
        with self._lock:
            seq = self._last_seq + 1
            record = WalRecord(seq=seq, triple=triple, document_id=document_id)
            self._file.write(dump_json_line(record.to_dict()))
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._last_seq = seq
            self._record_count += 1
            if self._preloaded is not None:
                self._preloaded.append(record.to_dict())
            return seq

    def advance_to(self, seq: int) -> None:
        """Fast-forward the numbering so the next append gets at least ``seq + 1``.

        A checkpoint truncates the log to (possibly) empty while its snapshot
        records the sequence already applied; a recovered process must keep
        numbering *after* that point or the next checkpoint's tail replay
        would skip the records written since.  No-op when the log is already
        past ``seq``.
        """
        with self._lock:
            self._last_seq = max(self._last_seq, seq)

    # -- replaying ----------------------------------------------------------------------

    def preloaded_payloads(self) -> list:
        """The record payloads retained by ``keep_records`` (non-consuming).

        Boot-time vocabulary harvesting walks these instead of re-reading
        the file; empty when the log was opened without ``keep_records`` or
        the retained list was already consumed by :meth:`replay`.
        """
        return list(self._preloaded or ())

    def replay(self, *, after: int = 0) -> Iterator[WalRecord]:
        """Yield every durable record with ``seq > after``, in order.

        A log opened with ``keep_records`` serves its first replay from the
        payloads retained at open (and then drops them); records appended
        since the open are covered too, because appends also extend the
        retained list while it is alive.
        """
        if self._preloaded is not None:
            payloads, self._preloaded = self._preloaded, None
            for payload in payloads:
                record = WalRecord.from_dict(payload)
                if record.seq > after:
                    yield record
            return
        for _, payload in iter_json_lines(self.path, tolerate_torn_tail=True):
            record = WalRecord.from_dict(payload)
            if record.seq > after:
                yield record

    # -- truncation ---------------------------------------------------------------------

    def truncate_through(self, seq: int) -> int:
        """Drop every record with ``seq <= seq`` (they are covered by a snapshot).

        The survivors are rewritten to a temporary file which atomically
        replaces the log, so a crash mid-truncation leaves either the old or
        the new log — never a half-written one.  Returns how many records
        were dropped.
        """
        with self._lock:
            survivors = [record for record in self.replay() if record.seq > seq]
            dropped = self._record_count - len(survivors)
            replacement = self.path.with_suffix(self.path.suffix + ".compacting")
            with replacement.open("w", encoding="utf-8") as handle:
                for record in survivors:
                    handle.write(dump_json_line(record.to_dict()))
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            self._file.close()
            replacement.replace(self.path)
            self._file = self.path.open("a", encoding="utf-8")
            self._record_count = len(survivors)
            self._torn_records = 0
            return dropped

    # -- introspection ------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record (0 when empty)."""
        with self._lock:
            return self._last_seq

    @property
    def torn_records(self) -> int:
        """Unparseable trailing lines dropped at open (0 after a clean shutdown)."""
        return self._torn_records

    def __len__(self) -> int:
        with self._lock:
            return self._record_count

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(path={str(self.path)!r}, records={len(self)}, "
            f"last_seq={self.last_seq})"
        )
