"""Booting a server process from durable state on disk.

A checkpoint snapshot intentionally does **not** serialise the semantic
distance — it is a function (see :mod:`repro.service.snapshot`).  A server
process booting from ``--snapshot`` + ``--wal`` therefore has to rebuild an
equivalent :class:`~repro.semantics.triple_distance.TripleDistance` first.
For the requirements case study this is mechanical: the function taxonomy
and antinomy pairs are static (:mod:`repro.requirements.vocabulary`), and
the data-dependent parts — actor names and parameter values — come from one
of two places:

* **Persisted hints** (preferred): a checkpoint written by a process that
  knew its vocabulary carries a ``vocabulary`` section
  (``{"actors": [...], "parameters": {prefix: [...]}}``).  Rebuilding from
  it reproduces the previous process *exactly* — a term inserted at runtime
  that the previous vocabularies did not know keeps its string-distance
  fallback after the reboot, so rankings cannot shift.
* **Harvesting** (fallback, for snapshots without the section): every
  triple in the snapshot and WAL is walked and its actors/parameters feed
  fresh vocabularies.  This is equivalent for corpora whose terms were all
  known at build time; runtime-inserted novel terms gain taxonomy placement
  on reboot (rankings get better, not identical).

Boot parses each file exactly once: the snapshot payload is read through
:func:`repro.service.snapshot.read_snapshot_payload` and shared between
vocabulary derivation and index loading, and the write-ahead log is scanned
once at open (``keep_records=True``) with the retained records serving both
the harvest and the recovery replay.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.core.config import SemTreeConfig
from repro.core.distributed import subtree_point_count
from repro.core.node import Node
from repro.errors import ParseError, PartitionError
from repro.ingest.ingesting import DEFAULT_COMPACTION_THRESHOLD, IngestingIndex
from repro.ingest.wal import WriteAheadLog
from repro.io.serialization import iter_json_lines, node_from_dict, triple_from_dict
from repro.rdf.terms import Concept
from repro.rdf.triple import Triple
from repro.requirements.vocabulary import (PARAMETER_PREFIXES,
                                           build_requirement_distance,
                                           build_requirement_vocabularies)
from repro.semantics.triple_distance import TripleDistance
from repro.service.snapshot import (config_from_dict, load_index_payload,
                                    read_snapshot_payload, snapshot_vocabulary)

__all__ = [
    "harvest_triples",
    "vocabulary_hints",
    "derive_distance",
    "derive_distance_from_state",
    "recover_index",
    "ShardBoot",
    "load_shard",
    "wal_tail_seq",
]


def _walk_triples(payload: Any) -> Iterator[Triple]:
    """Yield every serialised triple found anywhere inside a JSON payload.

    A wire triple is a dictionary holding ``subject`` / ``predicate`` /
    ``object`` term dictionaries; the walk is generic so it finds them in
    the embedding space's object list, the tree's leaf buckets, the
    provenance map and the pending list alike — wherever the snapshot
    format puts them now or later.
    """
    if isinstance(payload, dict):
        keys = payload.keys()
        if {"subject", "predicate", "object"} <= set(keys) and all(
            isinstance(payload[position], dict)
            for position in ("subject", "predicate", "object")
        ):
            try:
                yield triple_from_dict(payload)
                return
            except (ParseError, KeyError, TypeError):
                pass  # not a triple after all (term dicts may be malformed
                      # or incomplete in arbitrary JSON); keep walking
        for value in payload.values():
            yield from _walk_triples(value)
    elif isinstance(payload, list):
        for value in payload:
            yield from _walk_triples(value)


def _harvest_state(snapshot_payload: Any,
                   wal_payloads: Iterable[Dict[str, Any]] = ()) -> List[Triple]:
    """Every distinct triple in a parsed snapshot + parsed WAL records."""
    triples = list(_walk_triples(snapshot_payload))
    for record in wal_payloads:
        triple_payload = record.get("triple")
        if isinstance(triple_payload, dict):
            triples.extend(_walk_triples(triple_payload))
    return list(dict.fromkeys(triples))


def _read_wal_payloads(wal_path: str | pathlib.Path | None) -> List[Dict[str, Any]]:
    if wal_path is None or not pathlib.Path(wal_path).exists():
        return []
    return [record for _, record in iter_json_lines(wal_path, tolerate_torn_tail=True)]


def harvest_triples(snapshot_path: str | pathlib.Path,
                    wal_path: str | pathlib.Path | None = None) -> List[Triple]:
    """Every distinct triple in a snapshot and (optionally) a WAL, in file order."""
    try:
        payload = json.loads(pathlib.Path(snapshot_path).read_text())
    except json.JSONDecodeError as error:
        raise ParseError(f"snapshot is not valid JSON: {error}") from error
    return _harvest_state(payload, _read_wal_payloads(wal_path))


def vocabulary_hints(triples: Iterable[Triple]) -> Tuple[List[str], Dict[str, List[str]]]:
    """Actor names and per-prefix parameter values mentioned by ``triples``.

    Subjects in the default (empty-prefix) vocabulary are actors; objects
    whose prefix is one of the case study's parameter prefixes contribute
    parameter values.  Both lists are deduplicated, first-seen order.
    """
    actors: Dict[str, None] = {}
    parameters: Dict[str, Dict[str, None]] = {}
    for triple in triples:
        subject = triple.subject
        if isinstance(subject, Concept) and subject.prefix == "":
            actors.setdefault(subject.name)
        obj = triple.object
        if isinstance(obj, Concept) and obj.prefix in PARAMETER_PREFIXES:
            parameters.setdefault(obj.prefix, {}).setdefault(obj.name)
    return list(actors), {prefix: list(values) for prefix, values in parameters.items()}


def derive_distance_from_state(snapshot_payload: Any,
                               wal_payloads: Iterable[Dict[str, Any]] = (), *,
                               extra_actors: Sequence[str] = (),
                               ) -> Tuple[TripleDistance, Dict[str, Any]]:
    """The case-study distance matching an already-parsed durable state.

    Returns ``(distance, hints)`` where ``hints`` is the persistable
    ``{"actors": [...], "parameters": {...}}`` description of the
    vocabularies the distance was actually built from — attach it to the
    :class:`IngestingIndex` so the next checkpoint records it.

    When the snapshot carries a ``vocabulary`` section, the distance is
    rebuilt from it verbatim (exact reproduction); otherwise the actors and
    parameters are harvested from the stored triples.
    """
    stored = snapshot_vocabulary(snapshot_payload) if isinstance(
        snapshot_payload, dict) else None
    if stored is not None:
        actors = [str(name) for name in stored.get("actors", [])]
        parameter_values = {
            str(prefix): [str(value) for value in values]
            for prefix, values in (stored.get("parameters") or {}).items()
        }
    else:
        actors, parameter_values = vocabulary_hints(
            _harvest_state(snapshot_payload, wal_payloads)
        )
    for name in extra_actors:
        if name and name not in actors:
            actors.append(name)
    distance = build_requirement_distance(
        build_requirement_vocabularies(actors, parameter_values)
    )
    hints = {"actors": list(actors), "parameters": dict(parameter_values)}
    return distance, hints


def derive_distance(snapshot_path: str | pathlib.Path,
                    wal_path: str | pathlib.Path | None = None, *,
                    extra_actors: Sequence[str] = ()) -> TripleDistance:
    """The requirement-case-study distance matching a durable state on disk.

    ``extra_actors`` lets the operator pre-register actors that future
    inserts will mention but the stored corpus does not yet (terms unknown to
    a vocabulary still work — the term distance falls back to a string
    distance — but taxonomy placement gives them real semantics).
    """
    try:
        payload = json.loads(pathlib.Path(snapshot_path).read_text())
    except json.JSONDecodeError as error:
        raise ParseError(f"snapshot is not valid JSON: {error}") from error
    distance, _ = derive_distance_from_state(
        payload, _read_wal_payloads(wal_path), extra_actors=extra_actors
    )
    return distance


def recover_index(snapshot_path: str | pathlib.Path,
                  wal_path: str | pathlib.Path, *,
                  extra_actors: Sequence[str] = (),
                  compaction_threshold: int = DEFAULT_COMPACTION_THRESHOLD,
                  ) -> IngestingIndex:
    """Checkpoint + WAL-tail recovery with a snapshot-derived distance.

    The convenience composition the CLI uses, in one pass over each file:
    the snapshot is parsed once (vocabulary + index load share the payload),
    and the WAL is read once (its open-time scan retains the records, which
    serve both the vocabulary harvest and the tail replay).
    """
    payload = read_snapshot_payload(snapshot_path)
    wal = WriteAheadLog(wal_path, keep_records=True)
    distance, hints = derive_distance_from_state(
        payload, wal.preloaded_payloads(), extra_actors=extra_actors
    )
    base = load_index_payload(payload, distance)
    return IngestingIndex(
        base, wal, applied_seq=int(payload.get("wal_seq", 0)),
        compaction_threshold=compaction_threshold,
        vocabulary_hints=hints,
    )


# -- shard boot ----------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ShardBoot:
    """Everything a shard server needs from a snapshot: one partition's subtree.

    A shard never embeds queries (the coordinator ships embedded
    coordinates) and never consults the semantic distance, so the boot is a
    fraction of a full recovery: config + the named partition's root node.
    ``partition_ids`` lists every partition of the snapshot so operators can
    check a topology covers them all.
    """

    partition_id: str
    root: Node
    config: SemTreeConfig
    points: int
    generation: int
    wal_seq: int
    partition_ids: Tuple[str, ...]


def load_shard(snapshot_path: str | pathlib.Path, partition_id: str) -> ShardBoot:
    """Load one partition's subtree from a checkpoint snapshot.

    Raises
    ------
    PartitionError
        If the snapshot does not contain ``partition_id``.
    """
    payload = read_snapshot_payload(snapshot_path)
    config = config_from_dict(payload["config"])
    tree_payload = payload["tree"]
    config = config.with_updates(dimensions=int(tree_payload["dimensions"]))
    entries = {entry["partition_id"]: entry for entry in tree_payload["partitions"]}
    if partition_id not in entries:
        known = ", ".join(sorted(entries))
        raise PartitionError(
            f"snapshot {snapshot_path} has no partition {partition_id!r} "
            f"(it holds: {known})"
        )
    root = node_from_dict(entries[partition_id]["root"], partition_id=partition_id)
    points = subtree_point_count(root)
    return ShardBoot(
        partition_id=partition_id,
        root=root,
        config=config,
        points=points,
        generation=int(payload.get("generation", 0)),
        wal_seq=int(payload.get("wal_seq", 0)),
        partition_ids=tuple(sorted(entries)),
    )


def wal_tail_seq(wal_path: str | pathlib.Path | None) -> int:
    """Highest sequence number present in a WAL file (0 when absent/empty).

    Shard boot uses this to refuse serving a stale view: a WAL tail past the
    snapshot's ``wal_seq`` holds inserts the partition subtree does not
    contain, and a shard has no delta segment to replay them into —
    checkpoint first, then boot the shards.
    """
    if wal_path is None or not pathlib.Path(wal_path).exists():
        return 0
    highest = 0
    for _, record in iter_json_lines(wal_path, tolerate_torn_tail=True):
        try:
            highest = max(highest, int(record.get("seq", 0)))
        except (AttributeError, TypeError, ValueError):
            continue
    return highest
