"""Triples and triple patterns.

A :class:`Triple` is the atomic unit of document semantics in the paper:
``(subject, predicate, object)``.  A :class:`TriplePattern` is a triple whose
positions may be variables or ``None`` (wildcards) and is used for pattern
queries against a :class:`~repro.rdf.store.TripleStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import TripleError
from repro.rdf.terms import Concept, Literal, Term, Variable, term_from_text

__all__ = ["Triple", "TriplePattern"]


@dataclass(frozen=True, slots=True)
class Triple:
    """An RDF-style statement relating a subject to an object via a predicate.

    All three positions must be concrete terms (:class:`Concept` or
    :class:`Literal`); variables are only allowed in
    :class:`TriplePattern`.
    """

    subject: Term
    predicate: Term
    object: Term

    def __post_init__(self) -> None:
        for position, term in (("subject", self.subject),
                               ("predicate", self.predicate),
                               ("object", self.object)):
            if isinstance(term, Variable):
                raise TripleError(
                    f"the {position} of a stored triple cannot be a variable: {term}"
                )
            if not isinstance(term, (Concept, Literal)):
                raise TripleError(
                    f"the {position} of a triple must be a Concept or Literal, "
                    f"got {type(term).__name__}"
                )

    # -- convenience constructors -------------------------------------------------

    @classmethod
    def of(cls, subject: str, predicate: str, obj: str) -> "Triple":
        """Build a triple from three textual terms (paper's Turtle-like syntax)."""
        return cls(term_from_text(subject), term_from_text(predicate), term_from_text(obj))

    # -- projections ---------------------------------------------------------------

    def projection(self, position: str) -> Term:
        """Return the projection of the triple on ``"subject"``, ``"predicate"``
        or ``"object"`` — the :math:`t^s_k`, :math:`t^p_k`, :math:`t^o_k` of Eq. (1)."""
        if position == "subject":
            return self.subject
        if position == "predicate":
            return self.predicate
        if position == "object":
            return self.object
        raise TripleError(f"unknown projection {position!r}")

    def as_tuple(self) -> tuple[Term, Term, Term]:
        """Return the triple as a plain ``(s, p, o)`` tuple."""
        return (self.subject, self.predicate, self.object)

    def replace(self, *, subject: Term | None = None, predicate: Term | None = None,
                object: Term | None = None) -> "Triple":
        """Return a copy of the triple with some positions replaced."""
        return Triple(
            subject if subject is not None else self.subject,
            predicate if predicate is not None else self.predicate,
            object if object is not None else self.object,
        )

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple with optional wildcard positions, used for pattern queries.

    ``None`` (or a :class:`Variable`) in a position matches any term.
    """

    subject: Optional[Term] = None
    predicate: Optional[Term] = None
    object: Optional[Term] = None

    def matches(self, triple: Triple) -> bool:
        """Return ``True`` when ``triple`` satisfies this pattern."""
        for wanted, actual in ((self.subject, triple.subject),
                               (self.predicate, triple.predicate),
                               (self.object, triple.object)):
            if wanted is None or isinstance(wanted, Variable):
                continue
            if wanted != actual:
                return False
        return True

    @property
    def is_fully_bound(self) -> bool:
        """``True`` when every position is a concrete term (no wildcards)."""
        return all(
            term is not None and not isinstance(term, Variable)
            for term in (self.subject, self.predicate, self.object)
        )

    @classmethod
    def of(cls, subject: str | None, predicate: str | None, obj: str | None) -> "TriplePattern":
        """Build a pattern from textual terms; ``None`` or ``"*"`` are wildcards."""

        def parse(text: str | None) -> Optional[Term]:
            if text is None or text == "*":
                return None
            return term_from_text(text)

        return cls(parse(subject), parse(predicate), parse(obj))

    def __str__(self) -> str:
        def show(term: Optional[Term]) -> str:
            return "*" if term is None else str(term)

        return f"({show(self.subject)}, {show(self.predicate)}, {show(self.object)})"
