"""Tests for the ground-truth oracle of the effectiveness experiment."""

import pytest

from repro.errors import EvaluationError
from repro.rdf import Triple
from repro.requirements import GroundTruthOracle, are_inconsistent


@pytest.fixture
def corpus_triples():
    return [
        Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
        Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up"),
        Triple.of("OBSW001", "Fun:block_cmd", "CmdType:startup"),       # spelling variant
        Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"),
        Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:start-up"),
        Triple.of("OBSW002", "Fun:enable_mode", "ModeType:safe-mode"),
    ]


class TestExpectedInconsistencies:
    def test_strict_definition_matches(self, corpus_triples, function_vocabulary):
        oracle = GroundTruthOracle(corpus_triples, function_vocabulary,
                                   match_object_variants=False)
        expected = oracle.expected_inconsistencies(corpus_triples[0])
        assert expected == {corpus_triples[1]}

    def test_spelling_variants_included_by_default(self, corpus_triples, function_vocabulary):
        oracle = GroundTruthOracle(corpus_triples, function_vocabulary)
        expected = oracle.expected_inconsistencies(corpus_triples[0])
        assert expected == {corpus_triples[1], corpus_triples[2]}

    def test_other_subjects_never_included(self, corpus_triples, function_vocabulary):
        oracle = GroundTruthOracle(corpus_triples, function_vocabulary)
        for expected in (oracle.expected_inconsistencies(t) for t in corpus_triples):
            for triple in expected:
                assert triple.subject in {t.subject for t in corpus_triples}

    def test_empty_corpus_rejected(self, function_vocabulary):
        with pytest.raises(EvaluationError):
            GroundTruthOracle([], function_vocabulary)

    def test_invalid_noise_rates_rejected(self, corpus_triples, function_vocabulary):
        with pytest.raises(EvaluationError):
            GroundTruthOracle(corpus_triples, function_vocabulary, omission_rate=1.5)


class TestCases:
    def test_case_for_builds_target_and_expected(self, corpus_triples, function_vocabulary):
        oracle = GroundTruthOracle(corpus_triples, function_vocabulary)
        case = oracle.case_for(corpus_triples[0])
        assert case.source_triple == corpus_triples[0]
        assert case.target_triple.predicate.name == "block_cmd"
        assert len(case.expected) == 2

    def test_build_cases_only_nonempty_by_default(self, corpus_triples, function_vocabulary):
        oracle = GroundTruthOracle(corpus_triples, function_vocabulary)
        cases = oracle.build_cases(3, seed=1)
        assert cases
        assert all(case.expected for case in cases)

    def test_build_cases_respects_count(self, small_corpus, function_vocabulary):
        oracle = GroundTruthOracle(small_corpus.all_triples(), function_vocabulary)
        cases = oracle.build_cases(10, seed=2)
        assert len(cases) == 10

    def test_build_cases_invalid_count(self, corpus_triples, function_vocabulary):
        oracle = GroundTruthOracle(corpus_triples, function_vocabulary)
        with pytest.raises(EvaluationError):
            oracle.build_cases(0)

    def test_build_cases_without_eligible_sources_raises(self, function_vocabulary):
        lonely = [Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
                  Triple.of("OBSW002", "Fun:send_msg", "MsgType:heartbeat")]
        oracle = GroundTruthOracle(lonely, function_vocabulary)
        with pytest.raises(EvaluationError):
            oracle.build_cases(5, seed=3)

    def test_expected_sets_satisfy_definition_on_synthetic_corpus(self, small_corpus,
                                                                  function_vocabulary):
        oracle = GroundTruthOracle(small_corpus.all_triples(), function_vocabulary,
                                   match_object_variants=False)
        cases = oracle.build_cases(5, seed=4)
        for case in cases:
            for expected in case.expected:
                assert are_inconsistent(case.source_triple, expected, function_vocabulary)


class TestAnnotatorNoise:
    def test_omission_removes_some_entries(self, small_corpus, function_vocabulary):
        triples = small_corpus.all_triples()
        perfect = GroundTruthOracle(triples, function_vocabulary, seed=5)
        noisy = GroundTruthOracle(triples, function_vocabulary, omission_rate=1.0, seed=5)
        source = small_corpus.injected_inconsistencies[0][0]
        assert perfect.expected_inconsistencies(source)
        assert noisy._with_noise(source, perfect.expected_inconsistencies(source)) == set()

    def test_addition_can_only_add_same_subject_triples(self, small_corpus,
                                                        function_vocabulary):
        triples = small_corpus.all_triples()
        noisy = GroundTruthOracle(triples, function_vocabulary, addition_rate=1.0, seed=6)
        source = small_corpus.injected_inconsistencies[0][0]
        case = noisy.case_for(source)
        assert all(triple.subject == source.subject for triple in case.expected)
