"""The documentation link checker: unit behaviour + the repo must pass it."""

from __future__ import annotations

import importlib.util
import pathlib
import subprocess
import sys

SPEC = importlib.util.spec_from_file_location(
    "check_doc_links",
    pathlib.Path(__file__).resolve().parents[2] / "tools" / "check_doc_links.py",
)
check_doc_links = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(check_doc_links)


class TestLinkExtraction:
    def test_markdown_links_found(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "See [the guide](guide.md#setup) and [api](https://example.org) "
            "and [anchor](#local).\n"
        )
        targets = list(check_doc_links.link_targets(page))
        assert targets == [(1, "link", "guide.md#setup")]

    def test_code_references_found(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("Run `benchmarks/bench_server_throughput.py` now.\n")
        assert list(check_doc_links.link_targets(page)) == [
            (1, "reference", "benchmarks/bench_server_throughput.py")
        ]

    def test_fenced_code_is_skipped(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```\n[not a link](missing.md)\n```\n[real](real.md)\n")
        assert list(check_doc_links.link_targets(page)) == [(4, "link", "real.md")]

    def test_fragment_stripped_on_resolve(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("x")
        (tmp_path / "guide.md").write_text("y")
        assert check_doc_links.resolve(page, "guide.md#section").exists()


class TestRepositoryDocs:
    def test_all_repo_doc_links_resolve(self):
        """The committed documentation has no broken intra-repo links."""
        result = subprocess.run(
            [sys.executable, str(pathlib.Path(check_doc_links.__file__))],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
