"""Tests for the metrics history ring buffer and the live top view."""

from __future__ import annotations

import http.server
import json
import threading

import pytest

from repro.obs.history import MetricsHistory
from repro.obs.registry import MetricsRegistry
from repro.obs.top import fetch_history, main, render_dashboard


@pytest.fixture
def serving_registry():
    """A registry shaped like a query server's: queries, latency, cache, cost."""
    registry = MetricsRegistry()
    queries = registry.counter("repro_queries_total", "help", ("kind",))
    latency = registry.histogram("repro_query_latency_seconds", "help",
                                 ("kind",), buckets=(0.001, 0.01, 0.1, 1.0))
    hits = registry.counter("repro_cache_hits_total", "help")
    misses = registry.counter("repro_cache_misses_total", "help")
    wait = registry.histogram("repro_queue_wait_seconds", "help",
                              buckets=(0.001, 0.01))
    cost = registry.counter("repro_query_cost_total", "help", ("counter",))
    return registry, {
        "queries": queries, "latency": latency, "hits": hits,
        "misses": misses, "wait": wait, "cost": cost,
    }


class TestMetricsHistory:
    def test_tick_derives_rates_from_registry_deltas(self, serving_registry):
        registry, m = serving_registry
        history = MetricsHistory(registry, interval=5.0)
        history.tick()  # baseline: no previous scrape, all-zero entry

        for _ in range(8):
            m["queries"].labels("knn").inc()
            m["latency"].labels("knn").observe(0.005)
        m["queries"].labels("knn").inc()
        m["latency"].labels("knn").observe(0.5)
        m["hits"].inc(3)
        m["misses"].inc(1)
        m["wait"].observe(0.004)
        m["cost"].labels("distance_computations").inc(123)
        m["cost"].labels("buckets_scanned").inc(9)

        entry = history.tick()
        assert entry["queries"] == 9
        assert entry["qps"] > 0
        assert entry["elapsed_seconds"] > 0
        # Quantiles are bucket upper bounds of the window's observations:
        # 8 of 9 landed in le=0.01, the slowest in le=1.0.
        assert entry["p50_ms"] == pytest.approx(10.0)
        assert entry["p99_ms"] == pytest.approx(1000.0)
        assert entry["cache_hit_rate"] == pytest.approx(0.75)
        assert entry["queue_wait_ms"] == pytest.approx(4.0)
        # Only the distance_computations label feeds the series.
        assert entry["distance_computations"] == 123
        assert entry["fan_out"] is None  # no scatter counters on a server

    def test_series_a_role_lacks_render_as_none(self):
        history = MetricsHistory(MetricsRegistry(), interval=1.0)
        entry = history.tick()
        assert entry["queries"] == 0
        assert entry["p50_ms"] is None
        assert entry["cache_hit_rate"] is None
        assert entry["fan_out"] is None

    def test_shard_scan_histogram_stands_in_for_queries(self):
        registry = MetricsRegistry()
        scans = registry.histogram("repro_shard_scan_seconds", "help",
                                   ("kind",), buckets=(0.01, 0.1))
        history = MetricsHistory(registry, interval=5.0)
        history.tick()
        for _ in range(4):
            scans.labels("knn").observe(0.005)
        entry = history.tick()
        assert entry["queries"] == 4
        assert entry["p50_ms"] == pytest.approx(10.0)

    def test_ring_buffer_is_bounded(self, serving_registry):
        registry, _ = serving_registry
        history = MetricsHistory(registry, interval=1.0, capacity=3)
        for _ in range(5):
            history.tick()
        assert len(history.entries()) == 3
        payload = history.payload()
        assert payload["capacity"] == 3
        assert payload["interval_seconds"] == 1.0
        assert len(payload["entries"]) == 3

    def test_start_stop_background_thread(self, serving_registry):
        registry, _ = serving_registry
        history = MetricsHistory(registry, interval=0.05).start()
        assert history.start() is history  # idempotent while running
        try:
            deadline = threading.Event()
            for _ in range(100):
                if history.entries():
                    break
                deadline.wait(0.05)
            assert history.entries()
        finally:
            history.stop()
            history.stop()  # idempotent

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsHistory(MetricsRegistry(), interval=0)


class TestTopView:
    def test_render_dashboard_shows_headlines_and_table(self):
        payload = {
            "interval_seconds": 5.0,
            "capacity": 360,
            "entries": [{
                "ts": 1700000000.0, "elapsed_seconds": 5.0,
                "queries": 50.0, "qps": 10.0, "p50_ms": 2.0, "p99_ms": 9.0,
                "cache_hit_rate": 0.5, "queue_wait_ms": 0.25,
                "fan_out": 3.0, "distance_computations": 4200.0,
            }],
        }
        frame = render_dashboard(payload, source="http://127.0.0.1:1")
        assert "repro top — http://127.0.0.1:1" in frame
        assert "qps 10.0" in frame
        assert "p99 9.0 ms" in frame
        assert "cache 50%" in frame
        assert "fan-out 3.0" in frame
        assert "4200" in frame

    def test_render_dashboard_empty_payload(self):
        frame = render_dashboard({"interval_seconds": 5.0, "entries": []})
        assert "no history entries yet" in frame

    def test_main_polls_a_live_history_endpoint(self, capsys):
        payload = {"interval_seconds": 5.0, "capacity": 360, "entries": []}

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                body = json.dumps(payload).encode("utf-8")
                self.send_response(200 if self.path == "/v1/history" else 404)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # keep the test output clean
                pass

        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            assert fetch_history(url)["capacity"] == 360
            assert main(["--url", url, "--iterations", "1", "--no-clear"]) == 0
        finally:
            server.shutdown()
            server.server_close()
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "no history entries yet" in out

    def test_main_reports_unreachable_endpoints(self, capsys):
        assert main(["--url", "http://127.0.0.1:1", "--iterations", "1",
                     "--no-clear"]) == 0
        assert "cannot fetch history" in capsys.readouterr().out
