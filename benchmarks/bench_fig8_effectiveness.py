"""Figure 8 — Effectiveness (average precision and recall vs K).

The paper's protocol (Section IV-B): for 100 requirements, select one triple
each, build the corresponding antinomic *target triple*, run a k-nearest
query with it, and compare the result set against a human-annotated ground
truth, averaging precision and recall over the 100 query cases while varying
K.  Qualitative finding: "the lower is K, the higher is P and the lower is
R; then, when K increases, R grows up and P decreases".

The reproduction uses the synthetic requirements corpus, the ground-truth
oracle (annotators replaced by the formal inconsistency definition with
spelling-variant matching — see DESIGN.md) and exactly the same protocol.
"""

from __future__ import annotations

import pytest

from repro.core import SemTreeConfig, SemTreeIndex
from repro.evaluation import Experiment, average_precision_recall, evaluate_retrieval
from repro.requirements import (
    GeneratorConfig,
    GroundTruthOracle,
    RequirementsGenerator,
    build_requirement_distance,
    build_requirement_vocabularies,
)

from .conftest import write_report

K_VALUES = (1, 2, 3, 5, 8, 12, 20)
QUERY_CASES = 100


def _build_case_study():
    """Generate the corpus, build the index and the 100 query cases."""
    generator_config = GeneratorConfig(
        documents=25, requirements_per_document=8, sentences_per_requirement=3,
        actors=40, inconsistency_rate=0.3, restatement_rate=0.15, seed=42,
    )
    corpus = RequirementsGenerator(generator_config).generate()
    vocabularies = build_requirement_vocabularies(
        corpus.actor_names, corpus.parameter_values
    )
    distance = build_requirement_distance(vocabularies)
    # 8 FastMap dimensions: the effectiveness experiment needs a faithful
    # embedding (see the FastMap-dimensionality ablation) because precision
    # at K = 1 is sensitive to neighbour-order inversions.
    index = SemTreeIndex(distance, SemTreeConfig(
        dimensions=8, bucket_size=16, max_partitions=5, partition_capacity=128,
    ))
    for document in corpus.documents:
        index.add_document(document.to_rdf_document())
    index.build()
    oracle = GroundTruthOracle(corpus.all_triples(), vocabularies["Fun"])
    cases = oracle.build_cases(QUERY_CASES, seed=7)
    return index, cases


@pytest.fixture(scope="module")
def case_study():
    return _build_case_study()


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.benchmark(group="fig8-effectiveness")
def test_query_throughput_k3(benchmark, case_study):
    index, cases = case_study

    def run():
        return sum(len(index.k_nearest(case.target_triple, 3)) for case in cases)

    assert benchmark(run) == 3 * len(cases)


@pytest.mark.benchmark(group="fig8-effectiveness")
def test_index_build_for_case_study(benchmark):
    def run():
        index, cases = _build_case_study()
        return len(index)

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 500


# -- the figure itself ----------------------------------------------------------------------

@pytest.mark.benchmark(group="fig8-effectiveness")
def test_report_fig8(benchmark, case_study, results_dir):
    index, cases = case_study

    def run_sweep() -> Experiment:
        experiment = Experiment(
            experiment_id="fig8_effectiveness",
            description=(
                f"Average precision/recall over {len(cases)} target-triple "
                "k-NN queries vs K (Fig. 8)"
            ),
            swept_parameter="K",
        )
        for k in K_VALUES:
            per_query = []
            for case in cases:
                retrieved = [match.triple for match in index.k_nearest(case.target_triple, k)]
                per_query.append(evaluate_retrieval(retrieved, case.expected))
            averaged = average_precision_recall(per_query)
            experiment.record("SemTree k-NN", k,
                              precision=averaged.precision,
                              recall=averaged.recall,
                              f1=averaged.f1)
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    series = experiment.series["SemTree k-NN"]

    # The paper's qualitative finding.  Recall is non-decreasing by
    # construction; average precision is allowed a tiny local wobble
    # (per-query precision |T ∩ T*| / K is not strictly monotone in K).
    assert series.is_non_increasing("precision", tolerance=0.02)
    assert series.is_non_decreasing("recall", tolerance=1e-9)
    assert series.values("precision")[0] > series.values("precision")[-1]
    assert series.values("recall")[-1] > series.values("recall")[0]
    # The curves cross: high precision at low K, high recall at large K.
    assert series.values("precision")[0] >= 0.4
    assert series.values("recall")[-1] >= 0.8

    write_report(results_dir, experiment, ["precision", "recall", "f1"])
