"""Per-query cost accounting: counters for the *work* a search performs.

Span trees (``repro.obs.tracing``) show where wall-clock time went;
:class:`SearchCost` shows what the search **did** — exact distance
computations, vectorized squared-distance rows, rows pruned by the radius
prefilter, kernel batches versus scalar fallbacks, buckets scanned.  The
paper's claim is about pruning work in a distributed metric tree, so work
done per query is the observable that matters.

A :class:`SearchCost` rides inside every search state
(:class:`~repro.core.knn.KSearchState`,
:class:`~repro.core.distributed.RangeSearchState`), crosses the shard wire
inside :class:`~repro.cluster.transport.PartitionScan` payloads, is summed
cluster-wide by the coordinator gather, and surfaces in
:class:`~repro.core.semtree.SearchOutcome` → the serving metrics, the
``debug.trace`` payload and the slow-query log.

The counters are deliberately plain integer attributes bumped inline (no
locks, no callables): a search state is single-threaded, and the hot-path
overhead must stay under the 5% warm-QPS budget the perf gate enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

__all__ = ["SearchCost"]

#: The wire/dict field names, in stable presentation order.
_FIELDS = (
    "distance_computations",
    "squared_distance_rows",
    "pruned_by_radius",
    "kernel_batches",
    "scalar_fallbacks",
    "buckets_scanned",
)


@dataclass(slots=True)
class SearchCost:
    """Mutable work counters for one search (or one aggregated gather).

    Attributes
    ----------
    distance_computations:
        Exact :func:`~repro.core.geometry.euclidean_distance` evaluations
        (the paper's *d(x, q)* count — the pruning claim's denominator).
    squared_distance_rows:
        Bucket rows pushed through the vectorized squared-distance pass.
    pruned_by_radius:
        Rows the squared-distance prefilter discarded without an exact
        distance computation.
    kernel_batches:
        Vectorized leaf-kernel invocations.
    scalar_fallbacks:
        Leaf scans that ran the scalar oracle (kernel ``scalar``, or a
        bucket under the vectorization cutoff).
    buckets_scanned:
        Leaf buckets visited (vectorized + scalar).
    """

    distance_computations: int = 0
    squared_distance_rows: int = 0
    pruned_by_radius: int = 0
    kernel_batches: int = 0
    scalar_fallbacks: int = 0
    buckets_scanned: int = 0

    def add(self, other: Optional["SearchCost"]) -> "SearchCost":
        """Accumulate ``other`` into self (``None`` is a no-op); returns self."""
        if other is not None:
            self.distance_computations += other.distance_computations
            self.squared_distance_rows += other.squared_distance_rows
            self.pruned_by_radius += other.pruned_by_radius
            self.kernel_batches += other.kernel_batches
            self.scalar_fallbacks += other.scalar_fallbacks
            self.buckets_scanned += other.buckets_scanned
        return self

    def to_dict(self) -> Dict[str, int]:
        """A plain JSON-ready mapping (stable key order)."""
        return {name: getattr(self, name) for name in _FIELDS}

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> "SearchCost":
        """Rebuild from a wire payload; missing keys read as 0.

        Tolerant by design: an older shard that does not emit ``cost`` yet
        (or a payload with a subset of counters) still parses, so mixed
        fleets keep working during a rolling upgrade.
        """
        cost = cls()
        if payload:
            for name in _FIELDS:
                value = payload.get(name)
                if value is not None:
                    setattr(cost, name, int(value))
        return cost

    def is_zero(self) -> bool:
        """True when no work has been recorded (renderers omit empty costs)."""
        return all(getattr(self, name) == 0 for name in _FIELDS)
