"""Configuration of the SemTree index.

Collects the knobs the paper mentions — bucket size ``Bs``, number of usable
partitions ``M``, the capacity condition that triggers the build-partition
procedure ("dynamically evaluated at run-time ... or statically fixed") —
plus the reproduction-specific cost-model parameters of the simulated
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.kernels import DEFAULT_SCAN_KERNEL, validate_scan_kernel
from repro.errors import IndexError_

__all__ = ["SplitStrategy", "CapacityPolicy", "SemTreeConfig"]


class SplitStrategy(Enum):
    """How a saturated leaf chooses its split dimension and value.

    ``MEDIAN``
        Cycle the split dimension with the depth and split at the median
        coordinate (the classic KD-tree rule; default).
    ``MIDPOINT``
        Cycle the dimension and split at the midpoint of the bucket's
        bounding interval.
    ``MAX_SPREAD``
        Split the dimension with the largest spread at its median.
    ``FIRST_POINT``
        Split at the first point's coordinate on the cycling dimension;
        with sorted insertions this degenerates into the paper's "totally
        unbalanced (chain)" tree, so it doubles as the worst-case
        configuration of Figures 3, 4 and 6.
    """

    MEDIAN = "median"
    MIDPOINT = "midpoint"
    MAX_SPREAD = "max-spread"
    FIRST_POINT = "first-point"


class CapacityPolicy(Enum):
    """When a partition is considered saturated (triggering build-partition).

    ``STATIC``
        A statically fixed maximum number of points per partition.
    ``NODE_FRACTION``
        A fraction of the hosting compute node's storage capacity — the
        paper's "percentage of the available storage resources".
    """

    STATIC = "static"
    NODE_FRACTION = "node-fraction"


@dataclass(frozen=True, slots=True)
class SemTreeConfig:
    """All tuning parameters of a SemTree instance.

    Parameters
    ----------
    dimensions:
        Dimensionality of the indexed points (= FastMap output dimensions).
    bucket_size:
        The paper's ``Bs``: maximum number of points a leaf holds before it
        is split.
    max_partitions:
        The paper's ``M``: the number of partitions the cluster can host
        (including the root partition).  1 means a purely sequential tree.
    partition_capacity:
        Maximum number of points a partition may store before the
        build-partition procedure spills its leaves (STATIC policy).
    capacity_policy:
        STATIC (use ``partition_capacity``) or NODE_FRACTION (use
        ``node_capacity_fraction`` of the hosting node's storage).
    node_capacity_fraction:
        Fraction of the hosting node's capacity a partition may use under
        the NODE_FRACTION policy.
    split_strategy:
        Leaf split rule (see :class:`SplitStrategy`).
    scan_kernel:
        How leaf buckets are scanned during searches: ``"numpy"`` (default)
        batches each bucket through the vectorized kernels of
        :mod:`repro.core.kernels`; ``"scalar"`` keeps the per-point Python
        loop alive as the correctness oracle.  Both produce
        tie-insensitive-identical results.
    point_visit_cost / point_insert_cost:
        Simulated work units charged per point examined / stored.
    node_visit_cost:
        Simulated work units charged per tree node traversed.
    """

    dimensions: int = 4
    bucket_size: int = 16
    max_partitions: int = 1
    partition_capacity: int = 2048
    capacity_policy: CapacityPolicy = CapacityPolicy.STATIC
    node_capacity_fraction: float = 0.8
    split_strategy: SplitStrategy = SplitStrategy.MEDIAN
    scan_kernel: str = DEFAULT_SCAN_KERNEL
    point_visit_cost: float = 0.1
    point_insert_cost: float = 0.1
    node_visit_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise IndexError_("dimensions must be >= 1")
        if self.bucket_size < 1:
            raise IndexError_("bucket_size must be >= 1")
        if self.max_partitions < 1:
            raise IndexError_("max_partitions must be >= 1")
        if self.partition_capacity < self.bucket_size:
            raise IndexError_(
                "partition_capacity must be at least bucket_size "
                f"({self.partition_capacity} < {self.bucket_size})"
            )
        if not 0.0 < self.node_capacity_fraction <= 1.0:
            raise IndexError_("node_capacity_fraction must be in (0, 1]")
        validate_scan_kernel(self.scan_kernel)
        for name in ("point_visit_cost", "point_insert_cost", "node_visit_cost"):
            if getattr(self, name) < 0:
                raise IndexError_(f"{name} must be non-negative")

    def with_updates(self, **changes) -> "SemTreeConfig":
        """Return a copy of the configuration with some fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)
