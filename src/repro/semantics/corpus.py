"""Corpus-based information-content statistics.

Resnik's measure [9] defines the information content of a concept as
``-log p(concept)`` where ``p`` is estimated from corpus frequencies,
propagated up the taxonomy (an occurrence of a concept counts as an
occurrence of every ancestor).  :class:`InformationContentCorpus` computes
those statistics from any stream of concept occurrences — in the
reproduction, from the triples of a document collection.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable

from repro.errors import VocabularyError
from repro.rdf.terms import Concept
from repro.rdf.triple import Triple
from repro.semantics.taxonomy import Taxonomy

__all__ = ["InformationContentCorpus"]


class InformationContentCorpus:
    """Frequency-based information content over a taxonomy.

    Counts are propagated to ancestors so the root accumulates the total
    mass; the IC of the root is therefore 0 and leaves that occur rarely get
    high IC values.
    """

    def __init__(self, taxonomy: Taxonomy, *, smoothing: float = 1.0):
        self.taxonomy = taxonomy
        self.smoothing = smoothing
        self._counts: Counter[str] = Counter()
        self._total = 0.0

    # -- counting ----------------------------------------------------------------

    def observe(self, concept: str | Concept, count: int = 1) -> None:
        """Record ``count`` occurrences of a concept (and of all its ancestors)."""
        name = concept.name if isinstance(concept, Concept) else concept
        if name not in self.taxonomy:
            raise VocabularyError(f"concept {name!r} is not in the taxonomy")
        for ancestor in self.taxonomy.ancestors(name, include_self=True):
            self._counts[ancestor] += count
        self._total += count

    def observe_triples(self, triples: Iterable[Triple]) -> int:
        """Observe every concept appearing in the triples; unknown concepts and
        literals are skipped.  Returns the number of observations recorded."""
        observed = 0
        for triple in triples:
            for term in triple:
                if isinstance(term, Concept) and term.name in self.taxonomy:
                    self.observe(term.name)
                    observed += 1
        return observed

    # -- probabilities and IC ------------------------------------------------------

    def count(self, concept: str) -> float:
        """Smoothed propagated count of a concept."""
        if concept not in self.taxonomy and concept != self.taxonomy.root:
            raise VocabularyError(f"concept {concept!r} is not in the taxonomy")
        return self._counts.get(concept, 0) + self.smoothing

    def probability(self, concept: str) -> float:
        """Smoothed relative frequency of a concept."""
        universe = len(self.taxonomy) + 1
        denominator = self._total + self.smoothing * universe
        if denominator <= 0:
            return 1.0
        return self.count(concept) / denominator

    def information_content(self, concept: str) -> float:
        """``-log p(concept)`` with add-one style smoothing."""
        return -math.log(self.probability(concept))

    def as_mapping(self) -> Dict[str, float]:
        """IC for every concept of the taxonomy, as a plain mapping.

        The mapping is suitable as the ``information_content`` argument of
        the Resnik/Lin/Jiang–Conrath measures.
        """
        values = {concept: self.information_content(concept) for concept in self.taxonomy}
        values[self.taxonomy.root] = self.information_content(self.taxonomy.root)
        return values

    @property
    def total_observations(self) -> float:
        """Total (unsmoothed) number of recorded observations."""
        return self._total

    def __repr__(self) -> str:
        return (
            f"InformationContentCorpus(observations={self._total:.0f}, "
            f"concepts={len(self.taxonomy)})"
        )
