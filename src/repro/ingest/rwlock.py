"""A writer-preferring readers–writer lock for the ingestion epoch scheme.

Queries and inserts of :class:`~repro.ingest.ingesting.IngestingIndex` are
*readers* of the distributed tree (inserts only touch the write-ahead log
and the delta segment), so any number of them proceed in parallel.  The
compactor and the checkpointer are the only *writers*: they mutate the tree
(and the generation), so they get exclusive access — but only for the
duration of one fold or snapshot, which is what replaces PR 1's "quiesce all
queries between batches" rule.

The lock prefers writers: once a compaction is waiting, new readers queue
behind it.  Compactions are rare and bounded (one ``insert_all`` of the
delta), so readers are never starved; without the preference a steady query
stream could delay a compaction indefinitely and let the delta — and every
query's linear-scan share — grow without bound.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Many concurrent readers, one exclusive writer, writers preferred.

    Not reentrant: a thread must not acquire the lock (either side) while
    already holding it.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- reader side --------------------------------------------------------------------

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    @contextmanager
    def read(self):
        """``with lock.read():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- writer side --------------------------------------------------------------------

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def write(self):
        """``with lock.write():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        with self._condition:
            return (
                f"ReadWriteLock(readers={self._active_readers}, "
                f"writer={self._writer_active}, waiting={self._writers_waiting})"
            )
