"""Tree nodes of SemTree.

The paper: "Each tree node can be either a routing or a leaf node" and
"we assume that our data can be stored only into the leaf nodes".  A routing
node carries the split index ``Sr`` and split value ``Sv`` used to navigate
"as in the standard Kd-Tree"; a leaf node carries a bucket of points.

Within a partition, the paper further distinguishes *internal* routing nodes
(all children on the same partition) from *edge* routing nodes (at least one
child is the root of a different partition).  Remote children are
represented by :class:`RemoteChild` pointers carrying the target partition
identifier, which is exactly the "direct link between different partitions"
instantiated by the build-partition algorithm.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.point import LabeledPoint
from repro.errors import IndexError_

__all__ = ["Node", "RemoteChild", "ChildRef"]

_node_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class RemoteChild:
    """A pointer to a subtree whose root lives in another partition."""

    partition_id: str

    def __repr__(self) -> str:
        return f"RemoteChild({self.partition_id!r})"


#: A child slot of a routing node: a local node or a remote pointer.
ChildRef = Union["Node", RemoteChild]


@dataclass
class Node:
    """A SemTree node: a leaf with a bucket of points, or a routing node.

    Attributes
    ----------
    node_id:
        Monotonic identifier (useful in traces and tests).
    partition_id:
        Identifier of the partition hosting this node (``None`` for nodes of
        a purely sequential tree).
    split_index:
        The paper's ``Sr`` — the coordinate compared during navigation
        (``None`` for leaves).
    split_value:
        The paper's ``Sv`` — the threshold on that coordinate (``None`` for
        leaves).
    left / right:
        Child references; points with ``point[Sr] <= Sv`` go left.
    bucket:
        The points stored in a leaf (empty for routing nodes).
    """

    partition_id: Optional[str] = None
    split_index: Optional[int] = None
    split_value: Optional[float] = None
    left: Optional[ChildRef] = None
    right: Optional[ChildRef] = None
    bucket: List[LabeledPoint] = field(default_factory=list)
    node_id: int = field(default_factory=lambda: next(_node_counter))
    # Lazily-built (n, d) matrix of the bucket's coordinates, shared by the
    # vectorized scan kernels; invalidated by every bucket mutation.
    _matrix: Optional[np.ndarray] = field(default=None, init=False, repr=False, compare=False)

    # -- kind predicates ---------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (data-bearing, no split)."""
        return self.split_index is None

    @property
    def is_routing(self) -> bool:
        """True for routing nodes (split-bearing, no data)."""
        return not self.is_leaf

    def is_edge(self) -> bool:
        """True when at least one child is the root of a different partition.

        Leaves are always edge nodes per the paper ("each leaf is an edge
        node"); routing nodes are edge nodes when a child is remote.
        """
        if self.is_leaf:
            return True
        return isinstance(self.left, RemoteChild) or isinstance(self.right, RemoteChild)

    def is_internal(self) -> bool:
        """True for routing nodes whose children are both on the same partition."""
        return self.is_routing and not self.is_edge()

    # -- navigation helpers ---------------------------------------------------------

    def child_for(self, point: LabeledPoint) -> ChildRef:
        """The child a point should descend into (``point[Sr] <= Sv`` → left)."""
        if self.is_leaf:
            raise IndexError_("leaf nodes have no children")
        assert self.split_index is not None and self.split_value is not None
        if point[self.split_index] <= self.split_value:
            child = self.left
        else:
            child = self.right
        if child is None:
            raise IndexError_("routing node with a missing child")
        return child

    def other_child(self, child: ChildRef) -> ChildRef:
        """The sibling of ``child`` (used by the backward visit of k-search)."""
        if self.is_leaf:
            raise IndexError_("leaf nodes have no children")
        if child is self.left:
            other = self.right
        elif child is self.right:
            other = self.left
        else:
            raise IndexError_("the given child does not belong to this node")
        if other is None:
            raise IndexError_("routing node with a missing child")
        return other

    # -- the cached coordinate matrix ---------------------------------------------------

    def bucket_matrix(self) -> np.ndarray:
        """The bucket's coordinates as one contiguous ``(n, d)`` float matrix.

        Built on first use and cached so repeated leaf scans pay the
        Python-to-NumPy conversion once per bucket, not once per query; every
        bucket mutation (:meth:`add_to_bucket`, :meth:`remove_from_bucket`,
        :meth:`convert_to_routing`, :meth:`set_bucket`) invalidates it.
        """
        if self._matrix is None:
            self._matrix = np.array(
                [point.coordinates for point in self.bucket], dtype=np.float64
            )
        return self._matrix

    def invalidate_matrix(self) -> None:
        """Drop the cached coordinate matrix (call after mutating ``bucket``)."""
        self._matrix = None

    # -- leaf mutation ------------------------------------------------------------------

    def add_to_bucket(self, point: LabeledPoint) -> None:
        """Append a point to a leaf's bucket."""
        if not self.is_leaf:
            raise IndexError_("only leaf nodes store points")
        self.bucket.append(point)
        self._matrix = None

    def remove_from_bucket(self, point: LabeledPoint) -> bool:
        """Remove one point from a leaf's bucket; returns True when it was present."""
        if not self.is_leaf:
            raise IndexError_("only leaf nodes store points")
        try:
            self.bucket.remove(point)
        except ValueError:
            return False
        self._matrix = None
        return True

    def set_bucket(self, points: List[LabeledPoint]) -> None:
        """Replace the whole bucket (deserialisation path), dropping the cache."""
        if not self.is_leaf:
            raise IndexError_("only leaf nodes store points")
        self.bucket = points
        self._matrix = None

    def convert_to_routing(self, split_index: int, split_value: float,
                           left: "Node", right: "Node") -> None:
        """Turn a saturated leaf into a routing node with two fresh children.

        This is the paper's leaf split: "when a leaf node saturates the
        bucket, two new child nodes are instantiated ... because it is no
        longer a leaf node, the related points are moved into the new child
        nodes".
        """
        if not self.is_leaf:
            raise IndexError_("only leaf nodes can be converted to routing nodes")
        self.split_index = split_index
        self.split_value = split_value
        self.left = left
        self.right = right
        self.bucket = []
        self._matrix = None

    def __repr__(self) -> str:
        if self.is_leaf:
            return (
                f"Node(leaf, id={self.node_id}, points={len(self.bucket)}, "
                f"partition={self.partition_id!r})"
            )
        return (
            f"Node(routing, id={self.node_id}, Sr={self.split_index}, "
            f"Sv={self.split_value:.3f}, partition={self.partition_id!r})"
        )
