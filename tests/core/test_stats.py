"""Tests for tree statistics (sequential and distributed)."""

import pytest

from repro.core import DistributedSemTree, KDTree, SemTreeConfig
from repro.core.stats import distributed_stats, expected_nodes, sequential_stats


class TestExpectedNodes:
    def test_paper_formula(self):
        # N = 2K / Bs (Section III-C)
        assert expected_nodes(points=1000, bucket_size=10) == 200
        assert expected_nodes(points=5, bucket_size=100) == 1

    def test_invalid_bucket_size(self):
        with pytest.raises(ValueError):
            expected_nodes(10, 0)


class TestSequentialStats:
    def test_balanced_tree_stats(self, uniform_points_2d):
        tree = KDTree.build_balanced(uniform_points_2d, bucket_size=8)
        stats = sequential_stats(tree)
        assert stats.points == len(uniform_points_2d)
        assert stats.nodes == stats.leaves + stats.routing_nodes
        assert stats.depth <= 2 * stats.optimal_depth + 1
        assert not stats.is_degenerate
        assert 0.0 < stats.mean_bucket_fill <= 1.0

    def test_chain_tree_is_degenerate(self, uniform_points_2d):
        tree = KDTree.build_chain(uniform_points_2d[:120])
        stats = sequential_stats(tree)
        assert stats.depth == 119
        assert stats.is_degenerate
        assert stats.balance_ratio > 10

    def test_empty_tree_stats(self):
        tree = KDTree(2)
        stats = sequential_stats(tree)
        assert stats.points == 0
        assert stats.leaves == 1
        assert stats.mean_bucket_fill == 0.0


class TestDistributedStats:
    def test_per_partition_breakdown(self, uniform_points_2d):
        tree = DistributedSemTree(SemTreeConfig(
            dimensions=2, bucket_size=8, max_partitions=4, partition_capacity=32))
        tree.insert_all(uniform_points_2d)
        stats = distributed_stats(tree)
        assert stats["points"] == len(uniform_points_2d)
        assert stats["partitions"] == tree.partition_count
        assert set(stats["per_partition"]) == {p.partition_id for p in tree.partitions}
        total = sum(entry["points"] for entry in stats["per_partition"].values())
        assert total == len(uniform_points_2d)
        assert stats["data_partition_imbalance"] >= 1.0
        assert stats["messages"] >= 0
