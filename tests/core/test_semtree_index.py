"""Tests for the SemTreeIndex facade (triples in, semantic retrieval out)."""

import pytest

from repro.baselines import SemanticLinearScan
from repro.core import SemanticMatch, SemTreeConfig, SemTreeIndex
from repro.errors import IndexError_, QueryError
from repro.rdf import Document, Triple


@pytest.fixture
def requirement_triples():
    return [
        Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up"),
        Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up"),
        Triple.of("OBSW001", "Fun:send_msg", "MsgType:heartbeat"),
        Triple.of("OBSW002", "Fun:accept_cmd", "CmdType:shutdown"),
        Triple.of("OBSW002", "Fun:enable_mode", "ModeType:safe-mode"),
        Triple.of("OBSW003", "Fun:transmit_tm", "TmType:voltage-frame"),
        Triple.of("OBSW003", "Fun:withhold_tm", "TmType:voltage-frame"),
        Triple.of("HWD001", "Fun:acquire_in", "InType:gps-fix"),
        Triple.of("HWD001", "Fun:ignore_in", "InType:gps-fix"),
        Triple.of("OBSW004", "Fun:start_proc", "ParType:watchdog"),
    ]


@pytest.fixture
def built_index(requirement_distance, requirement_triples):
    index = SemTreeIndex(requirement_distance, SemTreeConfig(
        dimensions=3, bucket_size=4, max_partitions=2, partition_capacity=8))
    index.add_triples(requirement_triples, document_id="doc-A")
    index.build()
    return index


class TestBuildLifecycle:
    def test_build_requires_two_distinct_triples(self, requirement_distance):
        index = SemTreeIndex(requirement_distance)
        index.add_triple(Triple.of("a", "b", "c"))
        index.add_triple(Triple.of("a", "b", "c"))
        with pytest.raises(IndexError_):
            index.build()

    def test_tree_access_before_build_raises(self, requirement_distance):
        index = SemTreeIndex(requirement_distance)
        with pytest.raises(IndexError_):
            _ = index.tree

    def test_pending_counter_and_build(self, requirement_distance, requirement_triples):
        index = SemTreeIndex(requirement_distance)
        index.add_triples(requirement_triples)
        assert index.pending_triples == len(requirement_triples)
        assert not index.is_built
        index.build()
        assert index.is_built
        assert index.pending_triples == 0
        assert len(index) == len(set(requirement_triples))

    def test_duplicate_triples_indexed_once(self, requirement_distance, requirement_triples):
        index = SemTreeIndex(requirement_distance)
        index.add_triples(requirement_triples)
        index.add_triples(requirement_triples)
        index.build()
        assert len(index) == len(set(requirement_triples))

    def test_add_document_records_provenance(self, requirement_distance, requirement_triples):
        index = SemTreeIndex(requirement_distance)
        index.add_document(Document("doc-X", requirement_triples[:5]))
        index.add_document(Document("doc-Y", requirement_triples[5:]))
        index.build()
        match = index.k_nearest(requirement_triples[0], 1)[0]
        assert match.documents == ("doc-X",)

    def test_build_returns_self_for_chaining(self, requirement_distance, requirement_triples):
        index = SemTreeIndex(requirement_distance)
        index.add_triples(requirement_triples)
        assert index.build() is index


class TestQueries:
    def test_exact_triple_is_its_own_nearest_neighbour(self, built_index, requirement_triples):
        for triple in requirement_triples[:5]:
            top = built_index.k_nearest(triple, 1)[0]
            assert top.triple == triple
            assert top.distance == pytest.approx(0.0, abs=1e-9)

    def test_antinomic_statement_ranks_before_unrelated_ones(self, built_index):
        target = Triple.of("OBSW001", "Fun:block_cmd", "CmdType:start-up")
        results = built_index.k_nearest(target, 3)
        returned = [match.triple for match in results]
        assert Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up") in returned

    def test_k_must_be_positive(self, built_index, requirement_triples):
        with pytest.raises(QueryError):
            built_index.k_nearest(requirement_triples[0], 0)

    def test_results_sorted_by_distance(self, built_index, requirement_triples):
        results = built_index.k_nearest(requirement_triples[0], 6)
        distances = [match.distance for match in results]
        assert distances == sorted(distances)

    def test_range_query_contains_the_exact_match(self, built_index, requirement_triples):
        results = built_index.range_query(requirement_triples[0], 0.05)
        assert any(match.triple == requirement_triples[0] for match in results)

    def test_out_of_sample_query_triple(self, built_index):
        query = Triple.of("OBSW009", "Fun:block_cmd", "CmdType:reset")
        results = built_index.k_nearest(query, 3)
        assert len(results) == 3

    def test_knn_ranking_close_to_semantic_scan(self, built_index, requirement_distance,
                                                requirement_triples):
        # FastMap is approximate, but the top-1 neighbour of a stored triple's
        # antinomic variant should coincide with the semantic scan's answer.
        scan = SemanticLinearScan(requirement_distance, requirement_triples)
        query = Triple.of("OBSW003", "Fun:withhold_tm", "TmType:voltage-frame")
        expected_top = scan.k_nearest(query, 1)[0][0]
        actual_top = built_index.k_nearest(query, 1)[0].triple
        assert actual_top == expected_top


class TestIncrementalInsertion:
    def test_insert_triple_after_build(self, built_index):
        new_triple = Triple.of("OBSW010", "Fun:suppress_msg", "MsgType:alarm")
        before = len(built_index)
        built_index.insert_triple(new_triple, document_id="doc-B")
        assert len(built_index) == before + 1
        top = built_index.k_nearest(new_triple, 1)[0]
        assert top.triple == new_triple
        assert top.documents == ("doc-B",)

    def test_insert_many_triples(self, built_index):
        new_triples = [
            Triple.of(f"OBSW{i:03d}", "Fun:raise_signal", "SigType:watchdog-alarm")
            for i in range(20, 25)
        ]
        built_index.insert_triples(new_triples)
        assert len(built_index) >= 14

    def test_statistics_reports_embedding_dimensions(self, built_index):
        stats = built_index.statistics()
        assert stats["embedding_dimensions"] >= 1
        assert stats["points"] == len(built_index)


class TestSemanticMatch:
    def test_equality(self):
        triple = Triple.of("a", "b", "c")
        assert SemanticMatch(triple, 0.5, ("d1",)) == SemanticMatch(triple, 0.5, ("d1",))
        assert SemanticMatch(triple, 0.5) != SemanticMatch(triple, 0.6)

    def test_hash_is_consistent_with_equality(self):
        triple = Triple.of("a", "b", "c")
        first = SemanticMatch(triple, 0.5, ("d1",))
        second = SemanticMatch(triple, 0.5, ("d1",))
        assert hash(first) == hash(second)
        # equal matches deduplicate in sets and collide in dicts
        assert len({first, second}) == 1
        assert {first: "x"}[second] == "x"

    def test_distinct_matches_stay_distinct_in_sets(self):
        triple = Triple.of("a", "b", "c")
        matches = {SemanticMatch(triple, 0.5), SemanticMatch(triple, 0.6),
                   SemanticMatch(triple, 0.5, ("d1",))}
        assert len(matches) == 3
