"""Tests for index snapshots: a save → load round-trip answers identically."""

import json

import pytest

from repro.errors import IndexError_, ParseError
from repro.rdf import Triple
from repro.service import QueryEngine, load_index, save_index
from repro.workloads import mixed_query_specs


class TestRoundTrip:
    def test_roundtrip_answers_knn_identically(self, built_requirements_index,
                                               requirement_distance, tmp_path):
        index, _, corpus = built_requirements_index
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path, requirement_distance)
        assert len(loaded) == len(index)
        for triple in list(dict.fromkeys(corpus.all_triples()))[:20]:
            assert loaded.k_nearest(triple, 5) == index.k_nearest(triple, 5)

    def test_roundtrip_answers_range_identically(self, built_requirements_index,
                                                 requirement_distance, tmp_path):
        index, _, corpus = built_requirements_index
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path, requirement_distance)
        for triple in list(dict.fromkeys(corpus.all_triples()))[:10]:
            assert loaded.range_query(triple, 0.25) == index.range_query(triple, 0.25)

    def test_roundtrip_preserves_structure_and_provenance(self, built_requirements_index,
                                                          requirement_distance, tmp_path):
        index, _, corpus = built_requirements_index
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path, requirement_distance)
        original = index.statistics()
        restored = loaded.statistics()
        for key in ("points", "partitions", "points_per_partition",
                    "embedding_dimensions", "routing_only_partitions"):
            assert restored[key] == original[key]
        assert loaded.generation == index.generation
        # provenance survives: matches still carry their document ids
        triple = corpus.all_triples()[0]
        assert loaded.k_nearest(triple, 1)[0].documents == \
            index.k_nearest(triple, 1)[0].documents

    def test_engine_over_loaded_index_equals_engine_over_original(
            self, built_requirements_index, requirement_distance, tmp_path):
        index, _, corpus = built_requirements_index
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path, requirement_distance)
        triples = list(dict.fromkeys(corpus.all_triples()))
        specs = mixed_query_specs(triples, 64, seed=21)
        with QueryEngine(index, workers=4) as original_engine, \
                QueryEngine(loaded, workers=4) as loaded_engine:
            original_results = original_engine.execute_batch(specs)
            loaded_results = loaded_engine.execute_batch(specs)
        for a, b in zip(original_results, loaded_results):
            assert a.matches == b.matches


class TestWarmStartMutability:
    def test_loaded_index_accepts_incremental_inserts(self, built_requirements_index,
                                                      requirement_distance, tmp_path):
        index, _, _ = built_requirements_index
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path, requirement_distance)
        before = len(loaded)
        generation_before = loaded.generation
        new_triple = Triple.of("ACTOR-NEW", "Fun:accept_cmd", "CmdType:warm-start")
        loaded.insert_triple(new_triple, document_id="post-load")
        assert len(loaded) == before + 1
        assert loaded.generation == generation_before + 1
        top = loaded.k_nearest(new_triple, 1)[0]
        assert top.triple == new_triple
        assert top.distance == pytest.approx(0.0, abs=1e-9)


class TestFormatValidation:
    def test_unbuilt_index_cannot_be_saved(self, requirement_distance, tmp_path):
        from repro.core import SemTreeIndex

        with pytest.raises(IndexError_):
            save_index(SemTreeIndex(requirement_distance), tmp_path / "x.json")

    def test_wrong_format_rejected(self, requirement_distance, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ParseError):
            load_index(path, requirement_distance)

    def test_wrong_version_rejected(self, requirement_distance, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format": "semtree-snapshot", "version": 99}))
        with pytest.raises(ParseError):
            load_index(path, requirement_distance)

    def test_truncated_file_rejected_as_parse_error(self, requirement_distance, tmp_path):
        path = tmp_path / "truncated.json"
        path.write_text('{"format": "semtree-snapshot", "ver')
        with pytest.raises(ParseError):
            load_index(path, requirement_distance)
