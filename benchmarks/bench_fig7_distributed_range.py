"""Figure 7 — Distributed range-query running time.

The paper plots the running time of the distributed range query while
varying the size of the tree, for 1, 3, 5 and 9 partitions.  As for Fig. 5,
the reproduction runs a batch of range queries against the simulated
cluster; the range search navigates both children (in parallel across
partitions) whenever the query ball straddles a splitting plane, which is
where the partitioned layouts gain most.  Expected shape: simulated cost
grows with the number of points and decreases as partitions are added.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.cluster import SimulatedCluster
from repro.core import DistributedSemTree, SemTreeConfig
from repro.evaluation import Experiment, measure
from repro.workloads import perturbed_queries, uniform_points

from .conftest import write_report

DIMENSIONS = 4
BUCKET_SIZE = 16
RADIUS = 0.15
POINT_COUNTS = (1_000, 2_000, 4_000, 8_000)
PARTITION_COUNTS = (1, 3, 5, 9)
QUERIES = 50
BENCH_POINTS = 4_000


def _build(count: int, partitions: int):
    points = uniform_points(count, DIMENSIONS, seed=1)
    cluster = SimulatedCluster(node_count=max(partitions, 1))
    config = SemTreeConfig(
        dimensions=DIMENSIONS, bucket_size=BUCKET_SIZE, max_partitions=partitions,
        partition_capacity=max(64, BUCKET_SIZE * partitions),
    )
    tree = DistributedSemTree(config, cluster=cluster)
    tree.insert_all(points)
    return points, tree, cluster


def _range_batch(tree: DistributedSemTree, cluster: SimulatedCluster,
                 points) -> Dict[str, float]:
    workload = perturbed_queries(points, QUERIES, radius=RADIUS, seed=5)
    found = 0

    def run():
        nonlocal found
        found = 0
        for query in workload:
            found += len(tree.range_query(query, RADIUS))

    sample = measure(run, cluster=cluster)
    return {
        "wall_ms_per_query": sample.wall_ms / QUERIES,
        "simulated_cost": sample.simulated_critical_path or 0.0,
        "messages": float(sample.messages or 0),
        "results_per_query": found / QUERIES,
    }


# -- pytest-benchmark cases ---------------------------------------------------------------

@pytest.mark.parametrize("partitions", PARTITION_COUNTS)
@pytest.mark.benchmark(group="fig7-distributed-range")
def test_distributed_range_batch(benchmark, partitions):
    points, tree, _ = _build(BENCH_POINTS, partitions)
    workload = perturbed_queries(points, QUERIES, radius=RADIUS, seed=5)

    def run():
        return sum(len(tree.range_query(query, RADIUS)) for query in workload)

    assert benchmark(run) > 0


# -- the figure itself ----------------------------------------------------------------------

@pytest.mark.benchmark(group="fig7-distributed-range")
def test_report_fig7(benchmark, results_dir):
    def run_sweep() -> Experiment:
        experiment = Experiment(
            experiment_id="fig7_distributed_range_time",
            description="Distributed range-query time vs number of points (Fig. 7)",
            swept_parameter="points",
        )
        for count in POINT_COUNTS:
            for partitions in PARTITION_COUNTS:
                points, tree, cluster = _build(count, partitions)
                label = "1 partition" if partitions == 1 else f"{partitions} partitions"
                experiment.record(label, count, **_range_batch(tree, cluster, points))
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # Every configuration returns the same number of results (correctness sanity).
    reference = experiment.series["1 partition"].values("results_per_query")
    for series in experiment.series.values():
        assert series.values("results_per_query") == pytest.approx(reference)
    # Simulated cost grows with N and shrinks with partitions at the largest size.
    for series in experiment.series.values():
        values = series.values("simulated_cost")
        assert series.is_non_decreasing("simulated_cost", tolerance=max(values) * 0.15)
    largest_costs = {
        name: series.values("simulated_cost")[-1]
        for name, series in experiment.series.items()
    }
    assert largest_costs["9 partitions"] < largest_costs["1 partition"]
    assert largest_costs["5 partitions"] < largest_costs["1 partition"]

    write_report(results_dir, experiment,
                 ["simulated_cost", "wall_ms_per_query", "messages", "results_per_query"])
