"""Persistence layer: JSON serialisation of triples, documents and corpora."""

from repro.io.serialization import (
    document_from_dict,
    document_to_dict,
    labeled_point_from_dict,
    labeled_point_to_dict,
    load_collection,
    load_corpus,
    node_from_dict,
    node_to_dict,
    save_collection,
    save_corpus,
    term_from_dict,
    term_to_dict,
    triple_from_dict,
    triple_to_dict,
)

__all__ = [
    "term_to_dict",
    "term_from_dict",
    "triple_to_dict",
    "triple_from_dict",
    "document_to_dict",
    "document_from_dict",
    "labeled_point_to_dict",
    "labeled_point_from_dict",
    "node_to_dict",
    "node_from_dict",
    "save_collection",
    "load_collection",
    "save_corpus",
    "load_corpus",
]
