"""Replica failover over real sockets: exactness survives a dead replica.

An in-process fleet runs *two* shard servers per partition (each serving
the identical subtree of the same index); the transport's retry loop,
circuit breakers, hedging and graceful-degradation paths are then driven
by actually killing servers.
"""

from __future__ import annotations

import pytest

from coordinator_corpus import assert_equivalent
from repro.coordinator import CoordinatorApp, ShardedIndex, ShardTopology
from repro.coordinator.transport import HttpShardTransport
from repro.errors import ServerError, ShardError
from repro.faults import FaultPlan, FaultSpec
from repro.server import create_server, ShardApp
from repro.service.engine import QueryEngine
from repro.service.planner import QuerySpec
from repro.workloads import ServerClient

NO_SLEEP = staticmethod(lambda seconds: None)


@pytest.fixture
def replica_fleet(corpus_index):
    """Two in-process shard servers per data partition.

    Yields ``(servers_by_partition, topology)`` where each partition maps
    to its [primary, secondary] server pair.
    """
    index, _, data_partitions = corpus_index
    servers = {}
    for partition_id in data_partitions:
        servers[partition_id] = [
            create_server(ShardApp.from_index(index, partition_id)).serve_background()
            for _ in range(2)
        ]
    topology = ShardTopology({
        partition_id: [server.url for server in pair]
        for partition_id, pair in servers.items()
    })
    yield servers, topology
    for pair in servers.values():
        for server in pair:
            if not server.app.closed:
                server.close()


def make_failover_transport(topology, **kwargs):
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("sleep", lambda seconds: None)  # no real backoff waits
    return HttpShardTransport(topology, **kwargs)


class TestReplicaFailover:
    def test_scan_fails_over_to_the_secondary(self, corpus_index, replica_fleet):
        index, triples, data_partitions = corpus_index
        servers, topology = replica_fleet
        victim = data_partitions[0]
        point = index.embed_query(triples[0])
        transport = make_failover_transport(topology)
        try:
            baseline = transport.scan_knn(victim, point, 4)
            servers[victim][0].close()  # kill the primary
            survived = transport.scan_knn(victim, point, 4)
            assert [n.distance for n in survived.neighbours] == \
                   [n.distance for n in baseline.neighbours]
            stats = transport.failover_stats()[victim]
            assert stats["retries"] >= 1
            assert stats["failovers"] >= 1
        finally:
            transport.close()

    def test_circuit_opens_and_sheds_after_threshold(self, corpus_index,
                                                     replica_fleet):
        index, triples, data_partitions = corpus_index
        servers, topology = replica_fleet
        victim = data_partitions[0]
        point = index.embed_query(triples[0])
        transport = make_failover_transport(topology, failure_threshold=2,
                                            reset_timeout=300.0)
        try:
            servers[victim][0].close()
            for _ in range(3):
                transport.scan_knn(victim, point, 3)
            stats = transport.failover_stats()[victim]
            assert stats["circuit_opens"] == 1
            health = transport.replica_health()[victim]
            assert health == {
                "replicas": 2, "healthy": 1, "open": 1, "half_open": 0,
                "detail": health["detail"],
            }
            # With the circuit open the dead primary is demoted: scans go
            # straight to the secondary, burning no failed attempt.
            retries_before = stats["retries"]
            for _ in range(3):
                transport.scan_knn(victim, point, 3)
            assert transport.failover_stats()[victim]["retries"] == retries_before
        finally:
            transport.close()

    def test_half_open_probe_recloses_on_recovery(self, corpus_index,
                                                  replica_fleet):
        import itertools

        index, triples, data_partitions = corpus_index
        servers, topology = replica_fleet
        victim = data_partitions[0]
        point = index.embed_query(triples[0])
        # A controllable clock: each call advances far past reset_timeout,
        # so the breaker's open window elapses between scans.
        ticks = itertools.count(step=1000.0)
        transport = make_failover_transport(
            topology, failure_threshold=1, reset_timeout=1.0,
            clock=lambda: float(next(ticks)))
        try:
            primary_app = servers[victim][0].app
            servers[victim][0].close()
            transport.scan_knn(victim, point, 3)  # trips the primary's circuit
            assert transport.replica_health()[victim]["open"] in (0, 1)
            # Reboot a server on a fresh port and repoint the client? The
            # transport pins URLs, so instead drive recovery through the
            # *secondary* outage direction: the probe against the dead
            # primary fails again (breaker re-opens) while answers keep
            # coming from the secondary — exactness never wavers.
            baseline = transport.scan_knn(victim, point, 3)
            again = transport.scan_knn(victim, point, 3)
            assert [n.distance for n in again.neighbours] == \
                   [n.distance for n in baseline.neighbours]
            assert primary_app.closed
        finally:
            transport.close()

    def test_exhausted_replicas_raise_structured_shard_error(self, corpus_index,
                                                             replica_fleet):
        index, triples, data_partitions = corpus_index
        servers, topology = replica_fleet
        victim = data_partitions[0]
        point = index.embed_query(triples[0])
        transport = make_failover_transport(topology)
        try:
            for server in servers[victim]:
                server.close()
            with pytest.raises(ShardError) as excinfo:
                transport.scan_knn(victim, point, 3)
            failed = excinfo.value.details["failed"]
            assert victim in failed
            for url in topology.replicas_of(victim):
                assert url in failed[victim], "every replica's failure is named"
            assert transport.failover_stats()[victim]["exhausted"] == 1
        finally:
            transport.close()

    def test_sharded_search_stays_oracle_exact_after_failover(self, corpus_index,
                                                              replica_fleet):
        index, triples, data_partitions = corpus_index
        servers, topology = replica_fleet
        transport = make_failover_transport(topology)
        view = ShardedIndex(index, transport, scatter_workers=4)
        oracle = QueryEngine(index, workers=1)
        try:
            servers[data_partitions[0]][0].close()
            servers[data_partitions[-1]][1].close()  # a secondary, for variety
            for triple in triples[:5]:
                point = index.embed_query(triple)
                outcome = view.search_k_nearest(point, 4)
                want = oracle.execute_sequential([QuerySpec.k_nearest(triple, 4)])[0]
                assert_equivalent(outcome.matches, want.matches, truncated=True)
                assert outcome.degraded is None
        finally:
            oracle.close()
            view.close()


class TestHedging:
    def test_hedge_fires_on_a_slow_replica_and_stays_exact(self, corpus_index,
                                                           replica_fleet):
        index, triples, data_partitions = corpus_index
        servers, topology = replica_fleet
        slow = data_partitions[0]
        point = index.embed_query(triples[0])
        primary_url = topology.replicas_of(slow)[0]
        # The fault plan stalls only the primary replica's scans; the hedge
        # races the secondary and wins.
        plan = FaultPlan([FaultSpec(operation="scan", target=f"{slow}@{primary_url}",
                                    kind="latency", latency=0.5)])
        # A real sleep, not the no-op: the injected latency must actually
        # stall the primary for the hedge timer to expire.
        import time
        transport = make_failover_transport(topology, hedge_delay=0.02,
                                            fault_plan=plan, sleep=time.sleep)
        try:
            baseline_transport = make_failover_transport(topology)
            baseline = baseline_transport.scan_knn(slow, point, 4)
            baseline_transport.close()
            hedged = transport.scan_knn(slow, point, 4)
            assert [n.distance for n in hedged.neighbours] == \
                   [n.distance for n in baseline.neighbours]
            stats = transport.failover_stats()[slow]
            assert stats["hedges"] >= 1
            assert stats["hedge_wins"] >= 1
        finally:
            transport.close()

    def test_hedge_not_fired_when_primary_is_fast(self, corpus_index,
                                                  replica_fleet):
        index, triples, data_partitions = corpus_index
        _, topology = replica_fleet
        point = index.embed_query(triples[0])
        transport = make_failover_transport(topology, hedge_delay=30.0)
        try:
            transport.scan_knn(data_partitions[0], point, 3)
            assert transport.failover_stats()[data_partitions[0]]["hedges"] == 0
        finally:
            transport.close()


class TestInjectedTransportFaults:
    def test_transient_faults_are_retried_through(self, corpus_index,
                                                  replica_fleet):
        index, triples, data_partitions = corpus_index
        _, topology = replica_fleet
        victim = data_partitions[0]
        point = index.embed_query(triples[0])
        plan = FaultPlan([FaultSpec(operation="scan", target=victim,
                                    kind="error", max_fires=1)])
        transport = make_failover_transport(topology, failure_threshold=5,
                                            fault_plan=plan)
        try:
            # First attempt eats the injected reset, the failover retry on
            # the secondary answers; the plan's budget is then spent, so a
            # second scan sails through untouched.
            scan = transport.scan_knn(victim, point, 3)
            assert scan.neighbours
            assert plan.fired() == 1
            assert transport.failover_stats()[victim]["retries"] >= 1
            assert transport.scan_knn(victim, point, 3).neighbours
        finally:
            transport.close()


class TestGracefulDegradation:
    @pytest.fixture
    def degraded_view(self, corpus_index, replica_fleet):
        """A sharded view whose *first* partition has lost every replica."""
        index, triples, data_partitions = corpus_index
        servers, topology = replica_fleet
        for server in servers[data_partitions[0]]:
            server.close()
        transport = make_failover_transport(topology)
        view = ShardedIndex(index, transport, scatter_workers=4)
        yield view, index, triples, data_partitions[0]
        view.close()

    def test_default_remains_fail_loud(self, degraded_view):
        view, index, triples, _ = degraded_view
        with pytest.raises(ShardError):
            view.search_k_nearest(index.embed_query(triples[0]), 4)

    def test_allow_partial_returns_survivors_with_a_marker(self, degraded_view):
        view, index, triples, lost = degraded_view
        point = index.embed_query(triples[0])
        outcome = view.search_k_nearest(point, 4, allow_partial=True)
        assert outcome.degraded is not None
        assert lost in outcome.degraded["missed"]
        assert lost not in outcome.degraded["answered"]
        assert outcome.degraded["answered"], "surviving partitions answered"
        assert lost not in outcome.visited_partitions
        # Range queries degrade the same way.
        ranged = view.search_range(point, 0.3, allow_partial=True)
        assert ranged.degraded is not None and lost in ranged.degraded["missed"]
        assert view.statistics()["degraded_queries"] >= 2

    def test_all_partitions_lost_still_raises(self, corpus_index, replica_fleet):
        index, triples, _ = corpus_index
        servers, topology = replica_fleet
        for pair in servers.values():
            for server in pair:
                server.close()
        transport = make_failover_transport(topology)
        view = ShardedIndex(index, transport, scatter_workers=4)
        try:
            with pytest.raises(ShardError):
                view.search_k_nearest(index.embed_query(triples[0]), 3,
                                      allow_partial=True)
        finally:
            view.close()


class TestCoordinatorEndToEnd:
    @pytest.fixture
    def coordinator(self, corpus_index, replica_fleet):
        index, triples, data_partitions = corpus_index
        servers, topology = replica_fleet
        transport = make_failover_transport(topology)
        view = ShardedIndex(index, transport, scatter_workers=4)
        app = CoordinatorApp(view, workers=2)
        server = create_server(app).serve_background()
        client = ServerClient(server.url)
        yield server, client, servers, index, triples, data_partitions
        if not app.closed:
            server.close()

    def test_queries_survive_a_replica_kill_over_http(self, coordinator):
        server, client, servers, index, triples, data_partitions = coordinator
        baseline = client.knn(triples[1], 4)
        servers[data_partitions[0]][0].close()
        survived = client.request("POST", "/v1/knn",
                                  ServerClient.knn_payload(triples[2], 4))
        assert survived["matches"]
        again = client.knn(triples[1], 4)
        # Cached from before the kill — and identical either way.
        assert [m["distance"] for m in again["matches"]] == \
               [m["distance"] for m in baseline["matches"]]

    def test_healthz_reports_replica_health_and_degrades(self, coordinator):
        server, client, servers, index, triples, data_partitions = coordinator
        health = client.health()
        assert health["status"] == "ok"
        victim = data_partitions[0]
        assert health["partitions"][victim]["healthy"] == 2
        # Lose every replica of one partition, trip its breakers.
        for shard_server in servers[victim]:
            shard_server.close()
        for _ in range(3):
            try:
                client.knn(triples[3], 3)
            except ServerError:
                pass
        health = client.health()
        assert health["status"] == "degraded"
        assert health["partitions"][victim]["healthy"] == 0
        assert health["partitions"][victim]["open"] == 2

    def test_topology_reports_replica_sets(self, coordinator):
        _, client, _, _, _, data_partitions = coordinator
        topology = client.request("GET", "/v1/topology")
        for partition_id in data_partitions:
            assert len(topology["shards"][partition_id]) == 2
            assert topology["replicas_per_partition"][partition_id] == 2

    def test_allow_partial_over_the_wire(self, coordinator):
        server, client, servers, index, triples, data_partitions = coordinator
        victim = data_partitions[0]
        for shard_server in servers[victim]:
            shard_server.close()
        payload = ServerClient.knn_payload(triples[4], 4, allow_partial=True)
        result = client.request("POST", "/v1/knn", payload)
        assert result["degraded"]["missed"].keys() == {victim}
        assert victim not in result["degraded"]["answered"]
        # A degraded answer is never cached: the retry re-executes.
        again = client.request("POST", "/v1/knn", payload)
        assert again["cached"] is False
        # Without allow_partial the same query stays a loud 502.
        with pytest.raises(ServerError) as excinfo:
            client.knn(triples[4], 4)
        assert excinfo.value.status == 502
        metrics = client.metrics()
        assert metrics["serving"]["degraded"] >= 2
        assert metrics["shards"]["failover"][victim]["exhausted"] >= 1
