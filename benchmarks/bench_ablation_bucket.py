"""Ablation — leaf bucket size and split strategy.

The bucket size ``Bs`` governs the trade-off between tree depth (routing
cost) and per-leaf scan cost; the paper's complexity analysis is expressed
directly in terms of ``Bs`` (``N = 2K/Bs`` nodes).  This ablation sweeps the
bucket size and the split strategy on a fixed workload and reports build
time, tree depth, and k-NN cost, confirming that

* larger buckets make shallower trees but examine more points per query;
* the median and max-spread strategies produce comparable trees, while the
  degenerate first-point strategy is much deeper on sorted input.
"""

from __future__ import annotations

import pytest

from repro.core import KDTree, SplitStrategy
from repro.core.stats import sequential_stats
from repro.evaluation import Experiment, measure
from repro.workloads import perturbed_queries, sorted_points, uniform_points

from .conftest import write_report

DIMENSIONS = 4
POINTS = 6_000
QUERIES = 40
K = 3
BUCKET_SIZES = (4, 16, 64, 256)


def _knn_cost(tree: KDTree, points) -> dict:
    workload = perturbed_queries(points, QUERIES, k=K, seed=6)
    nodes = 0
    examined = 0

    def run():
        nonlocal nodes, examined
        nodes = 0
        examined = 0
        for query in workload:
            state = tree.k_nearest_state(query, K)
            nodes += state.nodes_visited
            examined += state.points_examined

    sample = measure(run)
    return {
        "knn_wall_ms_per_query": sample.wall_ms / QUERIES,
        "nodes_per_query": nodes / QUERIES,
        "points_examined_per_query": examined / QUERIES,
    }


@pytest.mark.benchmark(group="ablation-bucket")
def test_report_ablation_bucket_size(benchmark, results_dir):
    def run_sweep() -> Experiment:
        points = uniform_points(POINTS, DIMENSIONS, seed=2)
        experiment = Experiment(
            experiment_id="ablation_bucket_size",
            description="Bucket size Bs vs build cost, depth and k-NN cost",
            swept_parameter="bucket_size",
        )
        for bucket_size in BUCKET_SIZES:
            tree = KDTree(DIMENSIONS, bucket_size=bucket_size)
            build = measure(lambda: tree.insert_all(points))
            stats = sequential_stats(tree)
            metrics = {
                "build_wall_ms": build.wall_ms,
                "depth": float(stats.depth),
                "leaves": float(stats.leaves),
                **_knn_cost(tree, points),
            }
            experiment.record("dynamic insertion (median split)", bucket_size, **metrics)
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    series = experiment.series["dynamic insertion (median split)"]
    # Larger buckets → shallower trees but more points examined per query.
    assert series.is_non_increasing("depth", tolerance=1e-9)
    assert series.values("points_examined_per_query")[-1] > series.values(
        "points_examined_per_query")[0]
    write_report(results_dir, experiment,
                 ["build_wall_ms", "depth", "leaves", "nodes_per_query",
                  "points_examined_per_query", "knn_wall_ms_per_query"])


@pytest.mark.benchmark(group="ablation-split-strategy")
def test_report_ablation_split_strategy(benchmark, results_dir):
    def run_sweep() -> Experiment:
        uniform = uniform_points(POINTS // 2, DIMENSIONS, seed=2)
        ordered = sorted_points(POINTS // 2, DIMENSIONS, seed=2)
        experiment = Experiment(
            experiment_id="ablation_split_strategy",
            description="Split strategy vs tree depth and balance on uniform and sorted input",
            swept_parameter="strategy_index",
        )
        strategies = (SplitStrategy.MEDIAN, SplitStrategy.MIDPOINT,
                      SplitStrategy.MAX_SPREAD, SplitStrategy.FIRST_POINT)
        for position, strategy in enumerate(strategies):
            for label, workload in (("uniform input", uniform), ("sorted input", ordered)):
                tree = KDTree(DIMENSIONS, bucket_size=8, split_strategy=strategy)
                # FIRST_POINT on sorted input is quadratic; cap its size.
                data = workload if strategy is not SplitStrategy.FIRST_POINT else workload[:1500]
                tree.insert_all(data)
                stats = sequential_stats(tree)
                experiment.record(f"{strategy.value} / {label}", position,
                                  depth=float(stats.depth),
                                  balance_ratio=stats.balance_ratio,
                                  points=float(stats.points))
        return experiment

    experiment = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    median_sorted = experiment.series["median / sorted input"].values("balance_ratio")[0]
    first_sorted = experiment.series["first-point / sorted input"].values("balance_ratio")[0]
    # The degenerate strategy is much worse balanced than the median split on sorted input.
    assert first_sorted > 4 * median_sorted
    write_report(results_dir, experiment, ["depth", "balance_ratio", "points"])
