"""Query workloads for the efficiency experiments.

The paper times k-nearest queries (K = 3) and range queries while varying
the number of indexed points and partitions.  These helpers generate
reproducible batches of query points, either uniformly over the data space
or by perturbing existing data points (so queries land in populated
regions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.point import LabeledPoint
from repro.errors import WorkloadError

__all__ = ["QueryWorkload", "uniform_queries", "perturbed_queries"]


@dataclass(frozen=True, slots=True)
class QueryWorkload:
    """A reproducible batch of query points plus the query parameters.

    Attributes
    ----------
    queries:
        The query points.
    k:
        ``K`` for k-nearest batches (the paper's default is 3).
    radius:
        ``D`` for range batches.
    """

    queries: tuple[LabeledPoint, ...]
    k: int = 3
    radius: float = 0.1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise WorkloadError("k must be >= 1")
        if self.radius < 0:
            raise WorkloadError("radius must be non-negative")
        if not self.queries:
            raise WorkloadError("a query workload needs at least one query point")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def uniform_queries(count: int, dimensions: int, *, k: int = 3, radius: float = 0.1,
                    seed: int = 1) -> QueryWorkload:
    """Query points drawn uniformly from the unit cube."""
    if count < 1:
        raise WorkloadError("count must be >= 1")
    rng = random.Random(seed)
    queries = tuple(
        LabeledPoint.of([rng.random() for _ in range(dimensions)], label=f"q{index}")
        for index in range(count)
    )
    return QueryWorkload(queries=queries, k=k, radius=radius)


def perturbed_queries(data: Sequence[LabeledPoint], count: int, *, jitter: float = 0.02,
                      k: int = 3, radius: float = 0.1, seed: int = 1) -> QueryWorkload:
    """Query points obtained by jittering randomly chosen data points.

    Guarantees that queries fall inside populated regions, which is the
    regime of the paper's case study (query triples are perturbations of
    stored triples).
    """
    if not data:
        raise WorkloadError("cannot derive queries from an empty data set")
    if count < 1:
        raise WorkloadError("count must be >= 1")
    rng = random.Random(seed)
    queries = []
    for index in range(count):
        base = data[rng.randrange(len(data))]
        coordinates = [value + rng.uniform(-jitter, jitter) for value in base.coordinates]
        queries.append(LabeledPoint.of(coordinates, label=f"q{index}"))
    return QueryWorkload(queries=tuple(queries), k=k, radius=radius)
