"""Tests for the JSON persistence layer."""

import json

import pytest

from repro.errors import ParseError
from repro.io import (
    document_from_dict,
    document_to_dict,
    load_collection,
    load_corpus,
    save_collection,
    save_corpus,
    term_from_dict,
    term_to_dict,
    triple_from_dict,
    triple_to_dict,
)
from repro.rdf import Concept, Document, DocumentCollection, Literal, Triple, Variable


class TestTermAndTripleRoundTrip:
    @pytest.mark.parametrize("term", [
        Concept("accept_cmd", "Fun"),
        Concept("OBSW001"),
        Literal("start-up"),
        Literal("42", "integer"),
    ])
    def test_term_roundtrip(self, term):
        assert term_from_dict(term_to_dict(term)) == term

    def test_variable_not_serialisable(self):
        with pytest.raises(ParseError):
            term_to_dict(Variable("x"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParseError):
            term_from_dict({"kind": "blank-node", "name": "b0"})

    def test_triple_roundtrip(self):
        triple = Triple.of("OBSW001", "Fun:accept_cmd", "'power amplifier'")
        assert triple_from_dict(triple_to_dict(triple)) == triple

    def test_dicts_are_json_compatible(self):
        triple = Triple.of("OBSW001", "Fun:accept_cmd", "CmdType:start-up")
        assert triple_from_dict(json.loads(json.dumps(triple_to_dict(triple)))) == triple


class TestDocumentRoundTrip:
    def test_document_roundtrip(self):
        document = Document(
            "doc-1",
            [Triple.of("a", "b", "c"), Triple.of("d", "e", "'f'")],
            text="two statements",
            metadata={"title": "spec"},
        )
        restored = document_from_dict(document_to_dict(document))
        assert restored.document_id == document.document_id
        assert restored.triples == document.triples
        assert restored.text == document.text
        assert restored.metadata == document.metadata

    def test_collection_roundtrip_via_file(self, tmp_path):
        collection = DocumentCollection([
            Document("doc-1", [Triple.of("a", "b", "c")], text="first"),
            Document("doc-2", [Triple.of("x", "y", "z")], text="second"),
        ])
        path = tmp_path / "collection.json"
        save_collection(collection, path)
        restored = load_collection(path)
        assert len(restored) == 2
        assert restored.get("doc-1").triples == collection.get("doc-1").triples
        assert restored.get("doc-2").text == "second"


class TestCorpusRoundTrip:
    def test_corpus_roundtrip_via_file(self, tmp_path, small_corpus):
        path = tmp_path / "corpus.json"
        save_corpus(small_corpus, path)
        restored = load_corpus(path)
        assert restored.actor_names == small_corpus.actor_names
        assert restored.parameter_values == small_corpus.parameter_values
        assert restored.all_triples() == small_corpus.all_triples()
        assert restored.injected_inconsistencies == small_corpus.injected_inconsistencies
        # sentences survive too (needed to re-run the NLP pipeline)
        original_first = small_corpus.all_requirements()[0]
        restored_first = restored.all_requirements()[0]
        assert restored_first.sentences == original_first.sentences

    def test_restored_corpus_supports_the_effectiveness_protocol(self, tmp_path, small_corpus,
                                                                 function_vocabulary):
        from repro.requirements import GroundTruthOracle

        path = tmp_path / "corpus.json"
        save_corpus(small_corpus, path)
        restored = load_corpus(path)
        oracle = GroundTruthOracle(restored.all_triples(), function_vocabulary)
        cases = oracle.build_cases(5, seed=1)
        assert len(cases) == 5
