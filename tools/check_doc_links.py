#!/usr/bin/env python3
"""Fail on broken intra-repository links in the documentation.

Scans ``README.md`` and ``docs/**/*.md`` for Markdown links and inline
references and checks that every *local* target exists:

* ``[text](target)`` Markdown links — ``http(s)://`` and ``mailto:`` targets
  are skipped, ``#fragment`` suffixes are stripped, and targets are resolved
  relative to the file that mentions them;
* `` `path` `` inline-code references that look like repository paths
  (``docs/*.md``, ``examples/*.py``, ``benchmarks/*.py``, ``tools/*.py``) —
  the documentation's habitual way of pointing at code.

Exit status 0 when everything resolves, 1 with one line per broken link —
which is what the CI docs job keys off.  Stdlib only; run from anywhere::

    python tools/check_doc_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterator, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: [text](target) — target captured lazily up to the first unescaped ')'.
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: `some/path.ext` inline-code references that name repository files.
CODE_REFERENCE = re.compile(
    r"`((?:docs|examples|benchmarks|tools|src|tests)/[A-Za-z0-9_./-]+"
    r"\.(?:md|py|json|txt|yml))`"
)

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def documentation_files() -> List[pathlib.Path]:
    files = sorted((REPO_ROOT / "docs").rglob("*.md"))
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def link_targets(path: pathlib.Path) -> Iterator[Tuple[int, str, str]]:
    """Yield ``(line_number, kind, target)`` for every checkable reference."""
    inside_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            inside_fence = not inside_fence
            continue
        if inside_fence:
            continue
        for match in MARKDOWN_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            yield number, "link", target
        for match in CODE_REFERENCE.finditer(line):
            yield number, "reference", match.group(1)


def resolve(path: pathlib.Path, target: str) -> pathlib.Path:
    target = target.split("#", 1)[0]
    if target.startswith("/"):
        return REPO_ROOT / target.lstrip("/")
    base = path.parent if target.startswith(".") else None
    if base is not None:
        return (base / target).resolve()
    # Bare targets: try relative to the mentioning file first, then the root
    # (inline-code references are written repo-root-relative by convention).
    candidate = (path.parent / target).resolve()
    return candidate if candidate.exists() else REPO_ROOT / target


def main() -> int:
    broken: List[str] = []
    checked = 0
    for path in documentation_files():
        for number, kind, target in link_targets(path):
            checked += 1
            if not resolve(path, target).exists():
                where = path.relative_to(REPO_ROOT)
                broken.append(f"{where}:{number}: broken {kind} -> {target}")
    if broken:
        print(f"{len(broken)} broken documentation link(s):")
        for line in broken:
            print(f"  {line}")
        return 1
    print(f"docs link check: {checked} links/references across "
          f"{len(documentation_files())} files, all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
