"""The concurrent query-serving engine above :class:`SemTreeIndex`.

:class:`QueryEngine` is the runtime the ROADMAP's "serve heavy traffic"
north star asks for: it accepts single and batched k-NN / range /
pattern-filtered queries, deduplicates and caches them, executes distinct
cache misses concurrently over a thread pool, and enforces per-query
deadlines.

Design notes
------------
* **Planning is single-threaded.**  Embedding a query triple exercises the
  semantic-distance caches (taxonomy depth/ancestor memos), so the planner
  runs on the calling thread; worker threads only traverse the tree, which
  is read-only at query time.
* **Batches are deterministic.**  A batch's results are guaranteed
  identical to sequential execution: the tree search is deterministic, each
  distinct query runs exactly once, and results are fanned back out in
  input order (:meth:`QueryEngine.execute_sequential` exists as the
  verification baseline).
* **Deadlines bound waiting, not work.**  Python threads cannot be killed,
  so a query that misses its deadline is reported as timed out immediately
  while the worker finishes in the background; its late result is still
  cached for subsequent queries (tagged with the generation the search
  observed, so it can never go stale unnoticed).  In-batch duplicates share
  one execution but keep their own deadlines: each is judged against the
  worker's completion timestamp.
* **The engine serves the search protocol, not the tree.**  Searches go
  through :meth:`ServableIndex.search_k_nearest` / ``search_range`` and the
  cache stores their *raw* (unfiltered, cache-stable) matches; every result
  — fresh or cached — is passed through ``overlay_matches`` before the
  pattern filter and truncation.  For a plain :class:`SemTreeIndex` the
  overlay is the identity and mutations must still be externally serialised
  (every ``insert_triple`` bumps the generation and invalidates the cache).
  For an :class:`~repro.ingest.ingesting.IngestingIndex` the overlay merges
  the live delta segment, so inserts interleave with queries with no
  quiescing and cached tree-side entries stay valid until a compaction.
"""

from __future__ import annotations

import functools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.cost import SearchCost
from repro.core.semtree import SemanticMatch
from repro.errors import QueryError
from repro.obs.tracing import (annotate_span, capture_context, record_span,
                               resume_context, span)
from repro.service.cache import ResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.planner import (PlannedQuery, QueryKind, QueryPlanner, QuerySpec,
                                   ServableIndex)

__all__ = ["QueryEngine", "QueryResult"]

#: How many extra candidates a pattern-filtered k-NN query fetches, so the
#: pattern filter still leaves ``k`` results in the common case.
PATTERN_OVERSAMPLE = 4


@dataclass(frozen=True, slots=True)
class QueryResult:
    """The outcome of one served query, in batch input order.

    ``cached`` is True when the result was served without running a tree
    search for this spec — a result-cache hit or an in-batch duplicate of
    another query.  ``exception`` carries the original exception behind a
    non-empty ``error`` string (when the failure was an exception rather
    than a deadline), so front ends can map typed failures — e.g. a
    coordinator's :class:`~repro.errors.ShardError` — onto transport
    semantics instead of parsing the message.
    """

    spec: QuerySpec
    matches: Tuple[SemanticMatch, ...]
    cached: bool
    latency_seconds: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None
    exception: Optional[BaseException] = field(default=None, compare=False,
                                               repr=False)
    visited_partitions: Tuple[str, ...] = field(default=(), compare=False,
                                                repr=False)
    #: Work counters of the search behind this result (``None`` when no
    #: search ran for this spec — a cache hit or an in-batch duplicate).
    cost: Optional[SearchCost] = field(default=None, compare=False, repr=False)
    #: ``None`` for a complete answer; the structured partial-answer marker
    #: (``{"answered": [...], "missed": {...}}``) when an ``allow_partial``
    #: query lost partitions.  Degraded results are never cached.
    degraded: Optional[Dict[str, object]] = field(default=None, compare=False,
                                                  repr=False)

    @property
    def ok(self) -> bool:
        """True when the query produced a result (no timeout, no error)."""
        return not self.timed_out and self.error is None


@dataclass(frozen=True, slots=True)
class _Execution:
    """Internal: one search's *raw* matches plus its observability counters.

    ``matches`` are the cache-stable, pre-filter matches the index's search
    protocol returned (``generation`` is the epoch it observed); the overlay
    and the pattern/k post-processing happen at serving time per spec.
    ``completed_at`` is stamped by the worker the moment the search finishes
    so the collector can judge deadlines against the true completion time,
    not against when it happened to read the future.
    """

    matches: Tuple[SemanticMatch, ...]
    visited_partitions: Tuple[str, ...]
    nodes_visited: int
    points_examined: int
    elapsed: float
    completed_at: float
    generation: int
    cost: SearchCost = field(default_factory=SearchCost)
    degraded: Optional[Dict[str, object]] = None


class QueryEngine:
    """Concurrent serving engine over one built :class:`SemTreeIndex`.

    Parameters
    ----------
    index:
        The built index to serve (building it is the caller's job).
    workers:
        Worker-thread count for batch execution.
    cache_capacity / cache_ttl / cache_segmented:
        Result-cache sizing; ``cache_ttl`` in seconds (``None`` = no expiry);
        ``cache_segmented`` turns on the probationary/protected admission
        policy (see :class:`~repro.service.cache.ResultCache`).
    default_deadline:
        Per-query time budget in seconds applied when a spec carries none
        (``None`` = wait for completion).
    metrics:
        Optional externally-owned :class:`ServiceMetrics` (one is created
        otherwise).
    """

    def __init__(self, index: ServableIndex, *, workers: int = 4,
                 cache_capacity: int = 1024, cache_ttl: float | None = None,
                 cache_segmented: bool = False,
                 default_deadline: float | None = None,
                 metrics: ServiceMetrics | None = None):
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        self.index = index
        self.planner = QueryPlanner(index)
        self.cache = ResultCache(cache_capacity, ttl=cache_ttl,
                                 segmented=cache_segmented)
        self.metrics = metrics or ServiceMetrics()
        self.default_deadline = default_deadline
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="semtree-query"
        )
        # Admission control reads these: searches submitted but not yet
        # finished (queue depth + in-flight), and a smoothed execution time
        # to predict how long a newly queued search would wait.
        self._outstanding_lock = threading.Lock()
        self._outstanding = 0
        self._execution_ewma = 0.0
        self._closed = False

    # -- serving ------------------------------------------------------------------------

    def execute(self, spec: QuerySpec) -> QueryResult:
        """Serve one query (a batch of one)."""
        return self.execute_batch([spec])[0]

    def execute_batch(self, specs: Sequence[QuerySpec]) -> List[QueryResult]:
        """Serve a batch: dedupe, consult the cache, run misses concurrently.

        Results come back in input order and are identical to what
        :meth:`execute_sequential` produces for the same specs.
        """
        specs = list(specs)
        if not specs:
            return []
        if self._closed:
            raise QueryError("the engine has been closed")
        # One umbrella span for the whole serve path: its children (plan,
        # cache_lookup, queue_wait, execute, finalise) account for the
        # stages, while the umbrella itself guarantees the engine's share
        # of a request is fully covered in the trace even between stages.
        with span("serve_batch", queries=len(specs)):
            return self._serve_batch(specs)

    def _serve_batch(self, specs: List[QuerySpec]) -> List[QueryResult]:
        with span("plan", queries=len(specs)):
            unique, assignment = self.planner.plan_batch(specs)
        generation = self.index.generation

        # Deduplicated queries run once but every duplicate keeps its own
        # deadline: the collector waits out the most generous budget among
        # the duplicates, then judges each input spec against the worker's
        # completion timestamp.
        budgets: Dict[int, List[Optional[float]]] = {}
        for spec, position in zip(specs, assignment):
            budgets.setdefault(position, []).append(spec.deadline or self.default_deadline)

        def wait_budget(position: int) -> Optional[float]:
            deadlines = budgets[position]
            return None if any(d is None for d in deadlines) else max(deadlines)

        # Phase 1: resolve each distinct query against the cache; submit the
        # misses to the pool so they run while we collect in order.
        outcomes: List[Optional[Tuple[str, object]]] = []
        pending: Dict[int, Tuple[Future, float]] = {}
        trace_context = capture_context()
        # One span for the whole lookup/submit phase, not one per query:
        # span() is cheap when untraced, but not per-query-on-the-warm-path
        # cheap (a cache hit serves in single-digit microseconds).
        with span("cache_lookup", queries=len(unique)):
            for position, planned in enumerate(unique):
                cached_matches = self.cache.get(planned.cache_key, generation)
                if cached_matches is not None:
                    outcomes.append(("hit", cached_matches))
                else:
                    outcomes.append(None)
                    submitted_at = time.perf_counter()
                    with self._outstanding_lock:
                        self._outstanding += 1
                    pending[position] = (
                        self._executor.submit(self._traced_run, planned,
                                              trace_context, submitted_at),
                        submitted_at,
                    )

        # Phase 2: gather the in-flight searches, enforcing deadlines.
        for position, (future, submitted_at) in pending.items():
            planned = unique[position]
            budget = wait_budget(position)
            try:
                if budget is None:
                    execution = future.result()
                else:
                    remaining = budget - (time.perf_counter() - submitted_at)
                    execution = future.result(timeout=max(remaining, 0.0))
            except FutureTimeoutError:
                outcomes[position] = ("timeout", None)
                # The worker cannot be killed; let its (still valid) late
                # result warm the cache for subsequent queries.
                future.add_done_callback(functools.partial(
                    self._cache_late, planned.cache_key
                ))
                continue
            except Exception as error:  # noqa: BLE001 - surfaced per query
                outcomes[position] = ("error", error)
                continue
            if execution.degraded is None:
                # A degraded answer is exact only over the partitions that
                # survived — caching it would serve the gap to every later
                # (possibly fail-loud) query under the shared cache key.
                self.cache.put(planned.cache_key, execution.matches,
                               execution.generation)
            outcomes[position] = ("executed", (execution,
                                               execution.completed_at - submitted_at))

        # Phase 3: fan the distinct outcomes back out to input order.
        first_input_of: Dict[int, int] = {}
        for input_index, position in enumerate(assignment):
            first_input_of.setdefault(position, input_index)

        served: Dict[int, Tuple[SemanticMatch, ...]] = {}

        def serve(position: int, raw: Tuple[SemanticMatch, ...],
                  raw_generation: int) -> Tuple[SemanticMatch, ...]:
            # Overlay + post-processing once per distinct query; duplicates
            # share the cache key, hence the pattern and parameters too.
            if position not in served:
                served[position] = self._finalise(unique[position], raw,
                                                  raw_generation)
            return served[position]

        # One span for the whole fan-out/finalise phase — like the lookup
        # phase, per-query spans would dominate the cost of serving a hit.
        results: List[QueryResult] = []
        with span("finalise", queries=len(specs)):
            for input_index, (spec, position) in enumerate(zip(specs, assignment)):
                outcome = outcomes[position]
                assert outcome is not None
                tag, value = outcome
                is_first = first_input_of[position] == input_index
                if tag == "hit":
                    result = QueryResult(spec=spec,
                                         matches=serve(position, tuple(value), generation),
                                         cached=True)
                    self._record(result)
                elif tag == "executed":
                    execution, completion_seconds = value
                    own_deadline = spec.deadline or self.default_deadline
                    if own_deadline is not None and completion_seconds > own_deadline:
                        # The shared execution finished, but not within THIS
                        # duplicate's budget.
                        result = QueryResult(spec=spec, matches=(), cached=False,
                                             timed_out=True, error="deadline exceeded")
                        self._record(result)
                    else:
                        result = QueryResult(
                            spec=spec,
                            matches=serve(position, execution.matches, execution.generation),
                            cached=not is_first,
                            latency_seconds=execution.elapsed if is_first else 0.0,
                            visited_partitions=execution.visited_partitions,
                            cost=execution.cost if is_first else None,
                            degraded=execution.degraded,
                        )
                        self._record(
                            result,
                            visited_partitions=execution.visited_partitions if is_first else (),
                        )
                elif tag == "timeout":
                    result = QueryResult(spec=spec, matches=(), cached=False,
                                         timed_out=True, error="deadline exceeded")
                    self._record(result)
                else:
                    result = QueryResult(spec=spec, matches=(), cached=False,
                                         error=f"{type(value).__name__}: {value}",
                                         exception=value)
                    self._record(result)
                results.append(result)
        return results

    def execute_sequential(self, specs: Sequence[QuerySpec]) -> List[QueryResult]:
        """The verification/benchmark baseline: one query at a time, no cache.

        Batch execution is required to produce exactly these matches for the
        same specs (deadlines aside).
        """
        results: List[QueryResult] = []
        for spec in specs:
            planned = self.planner.plan(spec)
            execution = self._run(planned)
            results.append(QueryResult(
                spec=spec,
                matches=self._finalise(planned, execution.matches, execution.generation),
                cached=False,
                latency_seconds=execution.elapsed,
                visited_partitions=execution.visited_partitions,
                cost=execution.cost,
                degraded=execution.degraded,
            ))
        return results

    # -- execution ----------------------------------------------------------------------

    @staticmethod
    def _fetch_size(spec: QuerySpec) -> int:
        """How many k-NN candidates to retrieve before the pattern filter."""
        return spec.k if spec.pattern is None else spec.k * PATTERN_OVERSAMPLE

    def _traced_run(self, planned: PlannedQuery,
                    trace_context, submitted_at: float) -> _Execution:
        """Worker-thread wrapper around :meth:`_run` with observability.

        Records the queue wait (submission until a worker picked the task
        up) as a metric and — when the submitter carried a trace — as a
        span, then runs the search inside an ``execute`` span attached to
        the submitter's span tree.
        """
        started = time.perf_counter()
        self.metrics.record_queue_wait(started - submitted_at)
        try:
            with resume_context(trace_context):
                record_span("queue_wait", submitted_at, started)
                with span("execute", kind=planned.spec.kind.value):
                    execution = self._run(planned)
                    # The cost counters only exist once the search ran, so they
                    # are merged into the execute span post-hoc.
                    annotate_span(cost=execution.cost.to_dict())
                    return execution
        finally:
            elapsed = time.perf_counter() - started
            with self._outstanding_lock:
                self._outstanding -= 1
                # EWMA, not a window: O(1), and 0.2 weights the last ~10
                # searches — fresh enough to track a load shift, smooth
                # enough that one outlier does not whipsaw admission.
                if self._execution_ewma == 0.0:
                    self._execution_ewma = elapsed
                else:
                    self._execution_ewma += 0.2 * (elapsed - self._execution_ewma)

    def _run(self, planned: PlannedQuery) -> _Execution:
        """One index search (worker-thread body); deterministic per planned query.

        Returns the raw, cache-stable matches; :meth:`_finalise` applies the
        live overlay and the per-spec post-processing.
        """
        spec = planned.spec
        started = time.perf_counter()
        # allow_partial only reaches indexes that declare they can honour it
        # (the sharded coordinator); a local index has no partitions to lose
        # and keeps its unchanged two-argument search signature.
        partial = spec.allow_partial and getattr(self.index, "supports_partial", False)
        if spec.kind is QueryKind.KNN:
            if partial:
                outcome = self.index.search_k_nearest(
                    planned.point, self._fetch_size(spec), allow_partial=True)
            else:
                outcome = self.index.search_k_nearest(planned.point,
                                                      self._fetch_size(spec))
        else:
            if partial:
                outcome = self.index.search_range(planned.point, spec.radius,
                                                  allow_partial=True)
            else:
                outcome = self.index.search_range(planned.point, spec.radius)
        completed_at = time.perf_counter()
        return _Execution(
            matches=outcome.matches,
            visited_partitions=outcome.visited_partitions,
            nodes_visited=outcome.nodes_visited,
            points_examined=outcome.points_examined,
            elapsed=completed_at - started,
            completed_at=completed_at,
            generation=outcome.generation,
            cost=outcome.cost,
            degraded=getattr(outcome, "degraded", None),
        )

    def _finalise(self, planned: PlannedQuery, raw: Tuple[SemanticMatch, ...],
                  generation: int) -> Tuple[SemanticMatch, ...]:
        """Overlay live writes onto raw matches, then filter and truncate.

        The overlay can report the matches unsalvageable (``None``) when a
        compaction moved the index past ``generation``; the search is then
        re-run under the new epoch.  Compactions are threshold-driven, so
        consecutive collisions peter out after a retry or two.
        """
        spec = planned.spec
        if spec.kind is QueryKind.KNN:
            parameter: float = self._fetch_size(spec)
        else:
            parameter = spec.radius
        while True:
            merged = self.index.overlay_matches(
                spec.kind.value, planned.point, parameter, raw, generation
            )
            if merged is not None:
                break
            # A compaction raced the read: the cached tree-side matches are
            # unsalvageable and the search re-runs under the new epoch.
            self.metrics.record_overlay_retry()
            execution = self._run(planned)
            raw, generation = execution.matches, execution.generation
            self.cache.put(planned.cache_key, raw, generation)
        matches = list(merged)
        if spec.pattern is not None:
            matches = [match for match in matches if spec.pattern.matches(match.triple)]
        if spec.kind is QueryKind.KNN:
            matches = matches[:spec.k]
        return tuple(matches)

    def _cache_late(self, key: Tuple[Hashable, ...], future: Future) -> None:
        if future.cancelled() or future.exception() is not None:
            return
        execution = future.result()
        if execution.degraded is not None:
            return
        self.cache.put(key, execution.matches, execution.generation)

    def _record(self, result: QueryResult,
                visited_partitions: Tuple[str, ...] = ()) -> None:
        self.metrics.record(
            result.spec.kind.value, result.latency_seconds, cached=result.cached,
            timed_out=result.timed_out,
            failed=result.error is not None and not result.timed_out,
            visited_partitions=visited_partitions,
            cost=result.cost if not result.cached else None,
            degraded=result.degraded is not None,
        )

    # -- admission read surface ---------------------------------------------------------

    def outstanding(self) -> int:
        """Searches submitted to the pool but not yet finished (queued + running)."""
        with self._outstanding_lock:
            return self._outstanding

    def mean_execution_seconds(self) -> float:
        """Smoothed (EWMA) search execution time; 0.0 until a search has run."""
        with self._outstanding_lock:
            return self._execution_ewma

    def predicted_wait_seconds(self) -> float:
        """Expected queue wait for a search submitted right now.

        Work-conserving estimate: everything outstanding, spread over the
        worker pool, at the smoothed per-search execution time.  Crude on
        purpose — admission control needs a stable signal that grows
        linearly with backlog, not an exact schedule.
        """
        with self._outstanding_lock:
            queued_ahead = max(0, self._outstanding - self.workers)
            return (queued_ahead / self.workers) * self._execution_ewma

    # -- observability ------------------------------------------------------------------

    def statistics(self) -> Dict[str, object]:
        """Serving metrics merged with the result-cache counters.

        The ``"cache"`` section is :meth:`CacheStats.to_dict` verbatim —
        the same dictionary the server's ``/v1/metrics`` payload publishes.
        """
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.stats.to_dict()
        snapshot["workers"] = self.workers
        return snapshot

    # -- lifecycle ----------------------------------------------------------------------

    def close(self, *, wait: bool = True) -> None:
        """Shut the worker pool down; the engine refuses queries afterwards."""
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryEngine(index={self.index!r}, workers={self.workers}, "
            f"cache={self.cache!r})"
        )
